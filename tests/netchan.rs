//! End-to-end exercise of the `pbio-serv` event-channel daemon over
//! loopback TCP: a heterogeneous publisher, subscribers on other
//! architectures (one with a source-side filter), and the zero-copy
//! guarantee for a homogeneous subscriber.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pbio_chan::Predicate;
use pbio_serv::{ServClient, ServConfig, ServDaemon, ServError, TraceConfig};
use pbio_types::arch::ArchProfile;
use pbio_types::schema::{AtomType, FieldDecl, Schema};
use pbio_types::value::{RecordValue, Value};

fn telemetry_schema() -> Schema {
    Schema::new(
        "telemetry",
        vec![
            FieldDecl::atom("seq", AtomType::CInt),
            FieldDecl::atom("temp", AtomType::CDouble),
            FieldDecl::atom("alarm", AtomType::Bool),
        ],
    )
    .unwrap()
}

fn reading(seq: i32, temp: f64, alarm: bool) -> RecordValue {
    RecordValue::new()
        .with("seq", seq)
        .with("temp", temp)
        .with("alarm", alarm)
}

/// Poll `client` until `n` events arrive (bounded), returning
/// `(seq, temp, zero_copy)` per event.
fn collect(client: &mut ServClient, n: usize) -> Vec<(i64, f64, bool)> {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut out = Vec::new();
    while out.len() < n && Instant::now() < deadline {
        let Some(event) = client.poll(Duration::from_millis(200)).unwrap() else {
            continue;
        };
        let Some(Value::I64(seq)) = event.view.get("seq") else {
            panic!("seq missing or mistyped")
        };
        let Some(Value::F64(temp)) = event.view.get("temp") else {
            panic!("temp missing or mistyped")
        };
        out.push((seq, temp, event.view.is_zero_copy()));
    }
    out
}

#[test]
fn cross_architecture_pubsub_with_source_side_filter() {
    let daemon = ServDaemon::bind("127.0.0.1:0").unwrap();
    let addr = daemon.local_addr();
    let schema = telemetry_schema();

    // Publisher compiled for big-endian SPARC; subscribers on two
    // little-endian x86 flavors. All conversion happens at the receivers.
    let mut publisher = ServClient::connect(addr, &ArchProfile::SPARC_V8).unwrap();
    let fmt = publisher.register_format(&schema).unwrap();
    let chan = publisher.open_channel("telemetry").unwrap();

    let mut plain = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let plain_chan = plain.open_channel("telemetry").unwrap();
    assert_eq!(plain_chan, chan, "channels are shared by name");
    plain.subscribe(plain_chan, &schema, None).unwrap();

    let mut filtered = ServClient::connect(addr, &ArchProfile::X86).unwrap();
    let filtered_chan = filtered.open_channel("telemetry").unwrap();
    let hot = Predicate::gt("temp", 30.0);
    filtered
        .subscribe(filtered_chan, &schema, Some(&hot))
        .unwrap();

    let readings = [
        reading(1, 25.0, false),
        reading(2, 35.5, false),
        reading(3, 10.0, true),
        reading(4, 40.25, false),
    ];
    for r in &readings {
        publisher.publish_value(chan, fmt, r).unwrap();
    }

    // The unfiltered x86-64 subscriber sees everything, converted.
    let got = collect(&mut plain, 4);
    assert_eq!(
        got,
        vec![
            (1, 25.0, false),
            (2, 35.5, false),
            (3, 10.0, false),
            (4, 40.25, false),
        ],
        "sparc-v8 records must convert exactly on x86-64"
    );
    assert!(!plain.is_zero_copy(fmt));
    assert_eq!(plain.stats().converted_events, 4);
    assert_eq!(plain.stats().zero_copy_events, 0);

    // The filtered x86 subscriber sees only the hot readings; the cold
    // ones were suppressed on the daemon, before transmission.
    let got = collect(&mut filtered, 2);
    assert_eq!(got, vec![(2, 35.5, false), (4, 40.25, false)]);
    assert!(
        filtered.poll(Duration::from_millis(200)).unwrap().is_none(),
        "no extra events"
    );

    let stats = daemon.stats();
    assert_eq!(stats.events_in, 4);
    assert_eq!(
        stats.filtered_at_source, 2,
        "two cold readings filtered at the source"
    );
    assert_eq!(stats.dropped, 0);
    assert_eq!(
        stats.events_out, 6,
        "4 to the plain subscriber + 2 to the filtered one"
    );
    assert_eq!(stats.active_connections, 3);

    publisher.disconnect().unwrap();
    plain.disconnect().unwrap();
    filtered.disconnect().unwrap();
    daemon.shutdown();
}

#[test]
fn homogeneous_subscriber_stays_zero_copy() {
    let daemon = ServDaemon::bind("127.0.0.1:0").unwrap();
    let addr = daemon.local_addr();
    let schema = telemetry_schema();

    let mut publisher = ServClient::connect(addr, &ArchProfile::SPARC_V9_64).unwrap();
    let fmt = publisher.register_format(&schema).unwrap();
    let chan = publisher.open_channel("telemetry").unwrap();

    let mut same_arch = ServClient::connect(addr, &ArchProfile::SPARC_V9_64).unwrap();
    let sub_chan = same_arch.open_channel("telemetry").unwrap();
    same_arch.subscribe(sub_chan, &schema, None).unwrap();

    for i in 0..3 {
        publisher
            .publish_value(chan, fmt, &reading(i, f64::from(i) * 1.5, false))
            .unwrap();
    }

    let got = collect(&mut same_arch, 3);
    assert_eq!(
        got,
        vec![(0, 0.0, true), (1, 1.5, true), (2, 3.0, true)],
        "same-architecture records are used straight from the receive buffer"
    );
    assert!(same_arch.is_zero_copy(fmt));
    assert!(
        same_arch.dcg_stats(fmt).is_none(),
        "no conversion plan may be compiled for the homogeneous path"
    );
    assert_eq!(same_arch.stats().zero_copy_events, 3);
    assert_eq!(same_arch.stats().converted_events, 0);

    publisher.disconnect().unwrap();
    same_arch.disconnect().unwrap();
    daemon.shutdown();
}

#[test]
fn format_metadata_is_registered_once_across_publishers() {
    let daemon = ServDaemon::bind("127.0.0.1:0").unwrap();
    let addr = daemon.local_addr();
    let schema = telemetry_schema();

    let mut p1 = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let mut p2 = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let mut p3 = ServClient::connect(addr, &ArchProfile::MIPS_64).unwrap();
    let f1 = p1.register_format(&schema).unwrap();
    let f2 = p2.register_format(&schema).unwrap();
    let f3 = p3.register_format(&schema).unwrap();
    assert_eq!(
        f1, f2,
        "identical layouts from different sessions share one id"
    );
    assert_ne!(
        f1, f3,
        "a different architecture is a different wire format"
    );
    assert_eq!(daemon.formats().len(), 2);

    p1.disconnect().unwrap();
    p2.disconnect().unwrap();
    p3.disconnect().unwrap();
    daemon.shutdown();
}

#[test]
fn daemon_rejects_bad_requests_with_typed_errors() {
    let daemon = ServDaemon::bind("127.0.0.1:0").unwrap();
    let addr = daemon.local_addr();
    let schema = telemetry_schema();

    let mut client = ServClient::connect(addr, &ArchProfile::X86).unwrap();

    // Subscribing to a channel nobody opened.
    let err = client.subscribe(42, &schema, None).unwrap_err();
    assert!(
        matches!(err, ServError::Remote { code, .. } if code == pbio_serv::protocol::E_CHANNEL),
        "{err}"
    );

    // Publishing with a format id this client never registered fails
    // locally, before any bytes hit the wire.
    let chan = client.open_channel("telemetry").unwrap();
    let err = client.publish(chan, 7, &[0u8; 64]).unwrap_err();
    assert!(matches!(err, ServError::UnknownFormat(7)), "{err}");

    // A payload shorter than the registered layout is refused locally too.
    let fmt = client.register_format(&schema).unwrap();
    let err = client.publish(chan, fmt, &[0u8; 2]).unwrap_err();
    assert!(matches!(err, ServError::Protocol(_)), "{err}");

    // The session is still healthy after the rejections.
    client.subscribe(chan, &schema, None).unwrap();
    client
        .publish_value(chan, fmt, &reading(9, 1.0, false))
        .unwrap();
    let got = collect(&mut client, 1);
    assert_eq!(got, vec![(9, 1.0, true)]);

    client.disconnect().unwrap();
    daemon.shutdown();
}

#[test]
fn slow_subscriber_backpressure_drops_oldest_not_newest() {
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            queue_capacity: 8,
            stats_interval: None,
            trace: TraceConfig::default(),
            ..ServConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();
    let schema = telemetry_schema();

    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let fmt = publisher.register_format(&schema).unwrap();
    let chan = publisher.open_channel("firehose").unwrap();

    let mut slow = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let sub_chan = slow.open_channel("firehose").unwrap();
    slow.subscribe(sub_chan, &schema, None).unwrap();

    // Flood far past the queue capacity without the subscriber draining.
    let total = 500;
    for i in 0..total {
        publisher
            .publish_value(chan, fmt, &reading(i, 0.0, false))
            .unwrap();
    }

    // Wait for the daemon to ingest the whole flood.
    let deadline = Instant::now() + Duration::from_secs(10);
    while daemon.stats().events_in < u64::from(total as u32) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(daemon.stats().events_in, 500);

    // Drain: the subscriber must observe a suffix-biased subset ending in
    // the *newest* event — drop-oldest never sacrifices fresh data.
    let mut seqs = Vec::new();
    let drain_deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < drain_deadline {
        match slow.poll(Duration::from_millis(300)).unwrap() {
            Some(event) => {
                let Some(Value::I64(seq)) = event.view.get("seq") else {
                    panic!()
                };
                seqs.push(seq);
            }
            None => break,
        }
    }
    assert!(!seqs.is_empty());
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "delivery preserves publish order"
    );
    assert_eq!(
        *seqs.last().unwrap(),
        499,
        "the newest event always survives"
    );
    let stats = daemon.stats();
    assert_eq!(
        stats.dropped + stats.events_out,
        500,
        "every event was either delivered or counted as dropped"
    );

    publisher.disconnect().unwrap();
    slow.disconnect().unwrap();
    daemon.shutdown();
}

#[test]
fn drop_oldest_accounting_is_exact_across_many_slow_subscribers() {
    // Several subscribers behind tiny queues, flooded while none of them
    // drain: the batched writer and the drop-oldest policy together must
    // keep the global ledger exact — every (subscriber, event) pair is
    // either written to a socket or counted as dropped, never both, never
    // neither — and each subscriber still sees an ordered, newest-ending
    // suffix of the flood.
    const SUBS: usize = 3;
    const TOTAL: i32 = 400;

    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            queue_capacity: 8,
            stats_interval: None,
            trace: TraceConfig::default(),
            ..ServConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();
    let schema = telemetry_schema();

    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let fmt = publisher.register_format(&schema).unwrap();
    let chan = publisher.open_channel("firehose").unwrap();

    let mut subs = Vec::new();
    for _ in 0..SUBS {
        let mut s = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
        let c = s.open_channel("firehose").unwrap();
        s.subscribe(c, &schema, None).unwrap();
        subs.push(s);
    }

    for i in 0..TOTAL {
        publisher
            .publish_value(chan, fmt, &reading(i, 0.0, false))
            .unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while daemon.stats().events_in < TOTAL as u64 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(daemon.stats().events_in, TOTAL as u64);

    // Drain every subscriber to exhaustion; the flood has fully landed, so
    // once a poll times out that subscriber's stream is finished.
    let mut received_total = 0u64;
    for (n, sub) in subs.iter_mut().enumerate() {
        let mut seqs = Vec::new();
        let drain_deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < drain_deadline {
            match sub.poll(Duration::from_millis(300)).unwrap() {
                Some(event) => {
                    let Some(Value::I64(seq)) = event.view.get("seq") else {
                        panic!()
                    };
                    seqs.push(seq);
                }
                None => break,
            }
        }
        assert!(!seqs.is_empty(), "subscriber {n} starved");
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "subscriber {n} saw out-of-order delivery"
        );
        assert_eq!(
            *seqs.last().unwrap(),
            i64::from(TOTAL - 1),
            "subscriber {n} lost the newest event"
        );
        received_total += seqs.len() as u64;
    }

    let stats = daemon.stats();
    assert_eq!(
        stats.events_out + stats.dropped,
        TOTAL as u64 * SUBS as u64,
        "ledger must balance: {stats:?}"
    );
    assert_eq!(
        stats.events_out, received_total,
        "every written event was received exactly once"
    );
    assert_eq!(stats.filtered_at_source, 0);
    assert!(stats.dropped > 0, "the flood must overrun a queue of 8");
    assert!(stats.writes > 0 && stats.bytes_out > 0);
    // Per-connection ledgers sum to the global one (plus control traffic:
    // acks and the one ANNOUNCE per subscriber are frames too).
    let conn_frames: u64 = daemon.conn_stats().iter().map(|c| c.frames_sent).sum();
    assert!(
        conn_frames >= received_total,
        "per-connection frame counts ({conn_frames}) must cover all \
         delivered events ({received_total})"
    );

    publisher.disconnect().unwrap();
    for s in subs {
        s.disconnect().unwrap();
    }
    daemon.shutdown();
}

/// High-connection smoke for the reactor core: 512 concurrent
/// subscribers on a handful of shards, every one of them receiving every
/// event exactly once and in order, while the daemon's thread count
/// stays O(shards) — the property the event-driven rewrite exists for.
#[test]
fn five_hundred_twelve_subscribers_exact_delivery() {
    const SUBS: usize = 512;
    const EVENTS: i64 = 16;

    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            queue_capacity: 64,
            stats_interval: None,
            // No background stats/trace publisher: the thread-count
            // assertion below is exact.
            trace: TraceConfig {
                sample_mod: 0,
                publish_interval: None,
                sink_capacity: 16,
            },
            shards: 4,
            ..ServConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();
    let schema = telemetry_schema();

    let ready = Arc::new(AtomicUsize::new(0));
    let mut threads = Vec::with_capacity(SUBS);
    for n in 0..SUBS {
        let schema = schema.clone();
        let ready = ready.clone();
        // The subscribers are load, not the system under test: small
        // stacks keep 512 of them cheap.
        let t = std::thread::Builder::new()
            .stack_size(128 * 1024)
            .spawn(move || {
                let mut client = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
                let chan = client.open_channel("smoke").unwrap();
                client.subscribe(chan, &schema, None).unwrap();
                ready.fetch_add(1, Ordering::Release);
                let mut seqs = Vec::new();
                let deadline = Instant::now() + Duration::from_secs(60);
                while (seqs.len() as i64) < EVENTS && Instant::now() < deadline {
                    if let Some(ev) = client.poll(Duration::from_millis(200)).unwrap() {
                        let Some(Value::I64(seq)) = ev.view.get("seq") else {
                            panic!("subscriber {n}: seq missing")
                        };
                        seqs.push(seq);
                    }
                }
                assert_eq!(
                    seqs,
                    (0..EVENTS).collect::<Vec<_>>(),
                    "subscriber {n} must see every event exactly once, in order"
                );
                client.disconnect().unwrap();
            })
            .unwrap();
        threads.push(t);
    }

    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let fmt = publisher.register_format(&schema).unwrap();
    let chan = publisher.open_channel("smoke").unwrap();
    let setup = Instant::now();
    while ready.load(Ordering::Acquire) < SUBS {
        assert!(
            setup.elapsed() < Duration::from_secs(60),
            "subscribers stalled at {}/{SUBS}",
            ready.load(Ordering::Acquire)
        );
        std::thread::yield_now();
    }

    // All 513 connections live on a fixed reactor pool: one accept
    // thread plus four shards, nothing per-connection.
    assert_eq!(
        daemon.thread_count(),
        5,
        "daemon threads must be O(shards), not O(connections)"
    );

    for seq in 0..EVENTS {
        publisher
            .publish_value(chan, fmt, &reading(seq as i32, 0.0, false))
            .unwrap();
    }
    for t in threads {
        t.join().expect("subscriber thread");
    }
    let stats = daemon.stats();
    assert_eq!(stats.dropped, 0, "deep queues: nothing may drop: {stats:?}");
    assert_eq!(stats.events_in, EVENTS as u64);
    assert_eq!(stats.events_out, EVENTS as u64 * SUBS as u64);

    publisher.disconnect().unwrap();
    daemon.shutdown();
}

/// Publish ordering across shard boundaries: the publisher's connection
/// lives on one reactor shard, the subscribers on others, and the
/// cross-shard handoff (publish under the fan-out lock → per-connection
/// queue → owning shard's flush) must preserve publish order for every
/// subscriber with no event lost or duplicated.
#[test]
fn cross_shard_publish_ordering_is_exact() {
    const SUBS: usize = 6;
    const EVENTS: i64 = 300;

    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            queue_capacity: EVENTS as usize + 16,
            stats_interval: None,
            trace: TraceConfig::default(),
            // More connections than shards, so publisher and subscribers
            // are spread round-robin across distinct reactors.
            shards: 3,
            ..ServConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();
    let schema = telemetry_schema();

    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let fmt = publisher.register_format(&schema).unwrap();
    let chan = publisher.open_channel("ordered").unwrap();

    let mut subs = Vec::new();
    for _ in 0..SUBS {
        let mut s = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
        let c = s.open_channel("ordered").unwrap();
        s.subscribe(c, &schema, None).unwrap();
        subs.push(s);
    }

    for seq in 0..EVENTS {
        publisher
            .publish_value(chan, fmt, &reading(seq as i32, 0.0, false))
            .unwrap();
    }

    for (n, sub) in subs.iter_mut().enumerate() {
        let mut seqs = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(20);
        while (seqs.len() as i64) < EVENTS && Instant::now() < deadline {
            if let Some(ev) = sub.poll(Duration::from_millis(200)).unwrap() {
                let Some(Value::I64(seq)) = ev.view.get("seq") else {
                    panic!()
                };
                seqs.push(seq);
            }
        }
        assert_eq!(
            seqs,
            (0..EVENTS).collect::<Vec<_>>(),
            "subscriber {n} must see the exact publish order across shards"
        );
    }
    assert_eq!(daemon.stats().dropped, 0);

    publisher.disconnect().unwrap();
    for s in subs {
        s.disconnect().unwrap();
    }
    daemon.shutdown();
}
