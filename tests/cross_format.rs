//! Cross-format integration: the same records through all four wire
//! formats; wire-size and flexibility comparisons from the paper's
//! qualitative claims.

use pbio_bench::workloads::{workload, MsgSize};
use pbio_bench::{prepare, WireFormat};
use pbio_cdr::CdrCodec;
use pbio_mpi::{mpi_pack, mpi_unpack, Datatype};
use pbio_types::layout::Layout;
use pbio_types::value::{decode_native, encode_native};
use pbio_types::ArchProfile;
use pbio_xml::{emit_record, XmlDecoder};

/// Every wire format delivers the exact same record values for every
/// workload size on the paper's testbed pair.
#[test]
fn all_formats_deliver_identical_values() {
    let sp = &ArchProfile::SPARC_V8;
    let dp = &ArchProfile::X86;
    for size in [MsgSize::B100, MsgSize::K1, MsgSize::K10] {
        let w = workload(size);
        let slay = Layout::of(&w.schema, sp).unwrap();
        let dlay = Layout::of(&w.schema, dp).unwrap();
        let native = encode_native(&w.value, &slay).unwrap();

        // PBIO: NDR + DCG conversion.
        let plan = std::sync::Arc::new(pbio::Plan::build(
            std::sync::Arc::new(slay.clone()),
            std::sync::Arc::new(dlay.clone()),
        ));
        let out = pbio::DcgConverter::compile(plan, pbio::CodegenMode::Optimized)
            .unwrap()
            .convert(&native)
            .unwrap();
        assert_eq!(
            decode_native(&out, &dlay).unwrap(),
            w.value,
            "pbio {}",
            size.label()
        );

        // MPI.
        let sdt = Datatype::from_schema(&w.schema, sp).unwrap();
        let ddt = Datatype::from_schema(&w.schema, dp).unwrap();
        let wire = mpi_pack(&sdt, sp, &native).unwrap();
        let out = mpi_unpack(&ddt, dp, &wire).unwrap();
        assert_eq!(
            decode_native(&out, &dlay).unwrap(),
            w.value,
            "mpi {}",
            size.label()
        );

        // CDR.
        let sc = CdrCodec::new(&w.schema, sp).unwrap();
        let dc = CdrCodec::new(&w.schema, dp).unwrap();
        let out = dc.unmarshal(&sc.marshal(&native).unwrap()).unwrap();
        assert_eq!(
            decode_native(&out, &dlay).unwrap(),
            w.value,
            "cdr {}",
            size.label()
        );

        // XML.
        let xml = emit_record(&slay, &native).unwrap();
        let out = XmlDecoder::new(&dlay).decode(&xml).unwrap();
        assert_eq!(
            decode_native(&out, &dlay).unwrap(),
            w.value,
            "xml {}",
            size.label()
        );
    }
}

/// Wire-size claims from the paper: the XML encoding is several times the
/// binary size; the binary formats are all within a modest factor of the
/// native record.
#[test]
fn wire_size_relationships() {
    let sp = &ArchProfile::SPARC_V8;
    let dp = &ArchProfile::X86;
    for size in [MsgSize::K1, MsgSize::K10] {
        let w = workload(size);
        let native_size = Layout::of(&w.schema, sp).unwrap().size();
        let sizes: Vec<(WireFormat, usize)> = [
            WireFormat::PbioDcg,
            WireFormat::Mpi,
            WireFormat::Cdr,
            WireFormat::Xml,
        ]
        .into_iter()
        .map(|f| {
            (
                f,
                prepare(f, &w.schema, &w.schema, sp, dp, &w.value)
                    .wire
                    .len(),
            )
        })
        .collect();

        for (f, s) in &sizes {
            match f {
                WireFormat::Xml => {
                    assert!(
                        *s > 2 * native_size,
                        "XML expansion at {}: {s} vs {native_size}",
                        size.label()
                    )
                }
                _ => assert!(
                    *s < native_size + native_size / 4 + 64,
                    "{f:?} wire {s} should be close to native {native_size}"
                ),
            }
        }
    }
}

/// Flexibility matrix (§2, §4.4): what happens when the sender's format has
/// an extra leading field the receiver doesn't know about.
#[test]
fn format_evolution_flexibility_matrix() {
    let p = &ArchProfile::X86;
    let w = workload(MsgSize::B100);
    let ext = pbio_bench::workloads::extended_schema_prepended(&w.schema);
    let v = pbio_bench::workloads::extended_value(&w.value);
    let slay = Layout::of(&ext, p).unwrap();
    let dlay = Layout::of(&w.schema, p).unwrap();
    let native = encode_native(&v, &slay).unwrap();

    // PBIO: handles it, by design (field match by name).
    let plan = std::sync::Arc::new(pbio::Plan::build(
        std::sync::Arc::new(slay.clone()),
        std::sync::Arc::new(dlay.clone()),
    ));
    let out = pbio::InterpConverter::new(plan).convert(&native).unwrap();
    assert_eq!(decode_native(&out, &dlay).unwrap(), w.value);

    // XML: also handles it (robust by self-description).
    let xml = emit_record(&slay, &native).unwrap();
    let out = XmlDecoder::new(&dlay).decode(&xml).unwrap();
    assert_eq!(decode_native(&out, &dlay).unwrap(), w.value);

    // MPI: silently corrupts — no metadata to detect the disagreement.
    let sdt = Datatype::from_schema(&ext, p).unwrap();
    let rdt = Datatype::from_schema(&w.schema, p).unwrap();
    let wire = mpi_pack(&sdt, p, &native).unwrap();
    let out = mpi_unpack(&rdt, p, &wire).unwrap();
    assert_ne!(
        decode_native(&out, &dlay).unwrap(),
        w.value,
        "MPI silently corrupts"
    );

    // CDR: same story — stubs must agree a priori.
    let sc = CdrCodec::new(&ext, p).unwrap();
    let dc = CdrCodec::new(&w.schema, p).unwrap();
    let marshalled = sc.marshal(&native).unwrap();
    // A detected truncation/mis-framing error is also "not correct data".
    if let Ok(out) = dc.unmarshal(&marshalled) {
        assert_ne!(decode_native(&out, &dlay).unwrap(), w.value);
    }
}

/// The particle workload (nested records + var arrays + strings) through
/// the formats that can express it; MPI must reject it at datatype-build
/// time — a-priori-agreement systems cannot describe runtime-sized records.
#[test]
fn particle_records_across_formats() {
    use pbio_bench::workloads::{particle_schema, particle_value};
    let schema = particle_schema();
    let sp = &ArchProfile::SPARC_V8;
    let dp = &ArchProfile::X86_64;
    let slay = Layout::of(&schema, sp).unwrap();
    let dlay = Layout::of(&schema, dp).unwrap();

    for neighbors in [0usize, 5, 100] {
        let value = particle_value(7 + neighbors as u64, neighbors);
        let native = encode_native(&value, &slay).unwrap();

        // PBIO (hybrid DCG + var interpretation).
        let plan = std::sync::Arc::new(pbio::Plan::build(
            std::sync::Arc::new(slay.clone()),
            std::sync::Arc::new(dlay.clone()),
        ));
        let out = pbio::DcgConverter::compile(plan, pbio::CodegenMode::Optimized)
            .unwrap()
            .convert(&native)
            .unwrap();
        assert_eq!(
            decode_native(&out, &dlay).unwrap(),
            value,
            "pbio n={neighbors}"
        );

        // CDR sequences.
        let sc = CdrCodec::new(&schema, sp).unwrap();
        let dc = CdrCodec::new(&schema, dp).unwrap();
        let out = dc.unmarshal(&sc.marshal(&native).unwrap()).unwrap();
        assert_eq!(
            decode_native(&out, &dlay).unwrap(),
            value,
            "cdr n={neighbors}"
        );

        // XML.
        let xml = emit_record(&slay, &native).unwrap();
        let out = XmlDecoder::new(&dlay).decode(&xml).unwrap();
        assert_eq!(
            decode_native(&out, &dlay).unwrap(),
            value,
            "xml n={neighbors}"
        );
    }

    // MPI: no datatype for runtime-sized members.
    assert!(matches!(
        Datatype::from_schema(&schema, sp),
        Err(pbio_mpi::MpiError::VariableLength(_))
    ));
}

/// Variable-length arrays of *record* elements (fixed-size structs inside a
/// runtime-sized list) — the deepest composite the type system allows.
#[test]
fn var_arrays_of_records() {
    use pbio_types::schema::{AtomType, FieldDecl, Schema, TypeDesc};
    use pbio_types::value::{RecordValue, Value};

    let pair = std::sync::Arc::new(
        Schema::new(
            "pair",
            vec![
                FieldDecl::atom("k", AtomType::CInt),
                FieldDecl::atom("w", AtomType::CDouble),
            ],
        )
        .unwrap(),
    );
    let schema = Schema::new(
        "sparse_row",
        vec![
            FieldDecl::atom("nnz", AtomType::CUInt),
            FieldDecl::new(
                "entries",
                TypeDesc::Var(Box::new(TypeDesc::Record(pair)), "nnz".into()),
            ),
        ],
    )
    .unwrap();

    let entry = |k: i32, w: f64| Value::Record(RecordValue::new().with("k", k).with("w", w));
    let value = RecordValue::new().with("nnz", 3u32).with(
        "entries",
        Value::Array(vec![entry(2, 0.5), entry(17, -1.25), entry(40, 3.0)]),
    );

    for (sp, dp) in [
        (&ArchProfile::SPARC_V8, &ArchProfile::X86_64),
        (&ArchProfile::X86, &ArchProfile::MIPS_N32),
    ] {
        let slay = Layout::of(&schema, sp).unwrap();
        let dlay = Layout::of(&schema, dp).unwrap();
        let native = encode_native(&value, &slay).unwrap();

        // PBIO interpreted and DCG (hybrid).
        let plan = std::sync::Arc::new(pbio::Plan::build(
            std::sync::Arc::new(slay.clone()),
            std::sync::Arc::new(dlay.clone()),
        ));
        let a = pbio::InterpConverter::new(plan.clone())
            .convert(&native)
            .unwrap();
        let b = pbio::DcgConverter::compile(plan, pbio::CodegenMode::Optimized)
            .unwrap()
            .convert(&native)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(
            decode_native(&a, &dlay).unwrap(),
            value,
            "{} -> {}",
            sp.name,
            dp.name
        );

        // CDR and XML.
        let sc = CdrCodec::new(&schema, sp).unwrap();
        let dc = CdrCodec::new(&schema, dp).unwrap();
        let out = dc.unmarshal(&sc.marshal(&native).unwrap()).unwrap();
        assert_eq!(decode_native(&out, &dlay).unwrap(), value);
        let xml = emit_record(&slay, &native).unwrap();
        let out = XmlDecoder::new(&dlay).decode(&xml).unwrap();
        assert_eq!(decode_native(&out, &dlay).unwrap(), value);
    }
}

/// The 100KB workload through every format — a smoke test that nothing
/// degrades at the paper's largest size.
#[test]
fn large_records_survive_every_format() {
    let sp = &ArchProfile::SPARC_V9_64;
    let dp = &ArchProfile::X86;
    let w = workload(MsgSize::K100);
    for fmt in [
        WireFormat::PbioDcg,
        WireFormat::PbioInterp,
        WireFormat::PbioDcgNaive,
        WireFormat::Mpi,
        WireFormat::Cdr,
        WireFormat::Xml,
    ] {
        let mut pb = prepare(fmt, &w.schema, &w.schema, sp, dp, &w.value);
        assert!((pb.encode)() > 90_000, "{fmt:?}");
        (pb.decode)();
    }
}
