//! Property-based tests: random schemas × random values × random
//! architecture pairs, through every data path in the workspace.

use std::sync::Arc;

use proptest::prelude::*;

use pbio::{BufPool, CodegenMode, DcgConverter, InterpConverter, Plan};
use pbio_cdr::CdrCodec;
use pbio_integration::{profile_strategy, schema_and_value, var_schema_and_value};
use pbio_mpi::{mpi_pack, mpi_unpack, packed_size, Datatype};
use pbio_types::layout::Layout;
use pbio_types::meta::{deserialize_layout, serialize_layout};
use pbio_types::value::{decode_native, encode_native};
use pbio_xml::{emit_record, XmlDecoder};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Native image encode/decode is the identity on every profile.
    #[test]
    fn native_round_trip((schema, value) in var_schema_and_value(), p in profile_strategy()) {
        let layout = Layout::of(&schema, p).unwrap();
        let img = encode_native(&value, &layout).unwrap();
        let back = decode_native(&img, &layout).unwrap();
        prop_assert_eq!(back, value);
    }

    /// Format metadata serialization round-trips for any schema/profile.
    #[test]
    fn meta_round_trip((schema, _) in var_schema_and_value(), p in profile_strategy()) {
        let layout = Layout::of(&schema, p).unwrap();
        let bytes = serialize_layout(&layout);
        prop_assert_eq!(deserialize_layout(&bytes).unwrap(), layout);
    }

    /// The three PBIO conversion backends agree bit-for-bit and reproduce
    /// the original value across any (sender, receiver) profile pair.
    #[test]
    fn conversion_backends_agree(
        (schema, value) in var_schema_and_value(),
        sp in profile_strategy(),
        dp in profile_strategy(),
    ) {
        let slay = Arc::new(Layout::of(&schema, sp).unwrap());
        let dlay = Arc::new(Layout::of(&schema, dp).unwrap());
        let wire = encode_native(&value, &slay).unwrap();
        let plan = Arc::new(Plan::build(slay, dlay.clone()));

        let a = InterpConverter::new(plan.clone()).convert(&wire).unwrap();
        let b = DcgConverter::compile(plan.clone(), CodegenMode::Naive).unwrap().convert(&wire).unwrap();
        let c = DcgConverter::compile(plan, CodegenMode::Optimized).unwrap().convert(&wire).unwrap();
        prop_assert_eq!(&a, &b, "interp vs naive DCG");
        prop_assert_eq!(&a, &c, "interp vs optimized DCG");
        prop_assert_eq!(decode_native(&a, &dlay).unwrap(), value);
    }

    /// Converting through a pooled buffer — including one recycled from an
    /// earlier conversion of a *different* record, so stale bytes and stale
    /// capacity are both in play — is byte-identical to a fresh allocation.
    #[test]
    fn pooled_conversion_matches_fresh(
        (schema, value) in var_schema_and_value(),
        (schema2, value2) in var_schema_and_value(),
        sp in profile_strategy(),
        dp in profile_strategy(),
    ) {
        let pool = BufPool::new();
        // Dirty the pool with a conversion of an unrelated layout.
        {
            let slay = Arc::new(Layout::of(&schema2, dp).unwrap());
            let dlay = Arc::new(Layout::of(&schema2, sp).unwrap());
            let wire = encode_native(&value2, &slay).unwrap();
            let plan = Arc::new(Plan::build(slay, dlay));
            let _ = InterpConverter::new(plan).convert_pooled(&wire, &pool).unwrap();
        }
        let slay = Arc::new(Layout::of(&schema, sp).unwrap());
        let dlay = Arc::new(Layout::of(&schema, dp).unwrap());
        let wire = encode_native(&value, &slay).unwrap();
        let plan = Arc::new(Plan::build(slay, dlay.clone()));

        let interp = InterpConverter::new(plan.clone());
        let dcg = DcgConverter::compile(plan, CodegenMode::Optimized).unwrap();
        let fresh_i = interp.convert(&wire).unwrap();
        let fresh_d = dcg.convert(&wire).unwrap();
        // Two pooled conversions back to back: the second reuses the
        // buffer the first returned.
        for _ in 0..2 {
            let pi = interp.convert_pooled(&wire, &pool).unwrap();
            prop_assert_eq!(&fresh_i[..], &pi[..], "interp pooled vs fresh");
        }
        for _ in 0..2 {
            let pd = dcg.convert_pooled(&wire, &pool).unwrap();
            prop_assert_eq!(&fresh_d[..], &pd[..], "dcg pooled vs fresh");
        }
        // Every pooled conversion drew from the pool (hit or miss; a buffer
        // grown past its class by a variable region may re-file higher and
        // miss the next same-size get, so hits alone aren't deterministic).
        let s = pool.stats();
        prop_assert_eq!(s.hits + s.misses, 5);
        prop_assert_eq!(decode_native(&fresh_i, &dlay).unwrap(), value);
    }

    /// Receiver-side type extension: the receiver expects a subset of the
    /// sender's fields (we drop the last field); all surviving fields
    /// convert correctly and nothing crashes.
    #[test]
    fn subset_receiver_gets_matching_fields(
        (schema, value) in schema_and_value(),
        sp in profile_strategy(),
        dp in profile_strategy(),
    ) {
        prop_assume!(schema.fields().len() >= 2);
        let last = schema.fields().last().unwrap().name.clone();
        let receiver = schema.without_field(&last).unwrap();
        let slay = Arc::new(Layout::of(&schema, sp).unwrap());
        let dlay = Arc::new(Layout::of(&receiver, dp).unwrap());
        let wire = encode_native(&value, &slay).unwrap();
        let plan = Arc::new(Plan::build(slay, dlay.clone()));
        let out = DcgConverter::compile(plan, CodegenMode::Optimized).unwrap().convert(&wire).unwrap();
        let got = decode_native(&out, &dlay).unwrap();
        prop_assert!(got.subset_of(&value), "got {} from {}", got, value);
    }

    /// MPI pack/unpack reproduces the value across any profile pair, and the
    /// wire size is architecture-independent.
    #[test]
    fn mpi_round_trip(
        (schema, value) in schema_and_value(),
        sp in profile_strategy(),
        dp in profile_strategy(),
    ) {
        let sdt = Datatype::from_schema(&schema, sp).unwrap();
        let ddt = Datatype::from_schema(&schema, dp).unwrap();
        prop_assert_eq!(packed_size(&sdt), packed_size(&ddt));
        let slay = Layout::of(&schema, sp).unwrap();
        let dlay = Layout::of(&schema, dp).unwrap();
        let native = encode_native(&value, &slay).unwrap();
        let wire = mpi_pack(&sdt, sp, &native).unwrap();
        prop_assert_eq!(wire.len(), packed_size(&sdt));
        let out = mpi_unpack(&ddt, dp, &wire).unwrap();
        prop_assert_eq!(decode_native(&out, &dlay).unwrap(), value);
    }

    /// CDR marshal/unmarshal reproduces the value across any profile pair.
    #[test]
    fn cdr_round_trip(
        (schema, value) in var_schema_and_value(),
        sp in profile_strategy(),
        dp in profile_strategy(),
    ) {
        let sc = CdrCodec::new(&schema, sp).unwrap();
        let dc = CdrCodec::new(&schema, dp).unwrap();
        let native = encode_native(&value, sc.layout()).unwrap();
        let wire = sc.marshal(&native).unwrap();
        let out = dc.unmarshal(&wire).unwrap();
        prop_assert_eq!(decode_native(&out, dc.layout()).unwrap(), value);
    }

    /// XML emit/parse reproduces the value across any profile pair.
    #[test]
    fn xml_round_trip(
        (schema, value) in var_schema_and_value(),
        sp in profile_strategy(),
        dp in profile_strategy(),
    ) {
        let slay = Layout::of(&schema, sp).unwrap();
        let dlay = Layout::of(&schema, dp).unwrap();
        let native = encode_native(&value, &slay).unwrap();
        let xml = emit_record(&slay, &native).unwrap();
        let out = XmlDecoder::new(&dlay).decode(&xml).unwrap();
        prop_assert_eq!(decode_native(&out, &dlay).unwrap(), value);
    }

    /// Truncating a wire record never panics any converter — it errors.
    #[test]
    fn truncation_never_panics(
        (schema, value) in schema_and_value(),
        sp in profile_strategy(),
        dp in profile_strategy(),
        cut_ppm in 0u32..1_000_000,
    ) {
        let slay = Arc::new(Layout::of(&schema, sp).unwrap());
        let dlay = Arc::new(Layout::of(&schema, dp).unwrap());
        let wire = encode_native(&value, &slay).unwrap();
        let cut = (wire.len() as u64 * cut_ppm as u64 / 1_000_000) as usize;
        prop_assume!(cut < wire.len());
        let plan = Arc::new(Plan::build(slay, dlay));
        // Any result is fine as long as it is an Err, not a panic — unless
        // the truncated prefix still covers every byte the plan reads.
        let _ = InterpConverter::new(plan.clone()).convert(&wire[..cut]);
        let _ = DcgConverter::compile(plan, CodegenMode::Optimized).unwrap().convert(&wire[..cut]);
    }

    /// Corrupting arbitrary wire bytes never panics the PBIO receive path
    /// (values may of course differ).
    #[test]
    fn corruption_never_panics(
        (schema, value) in var_schema_and_value(),
        sp in profile_strategy(),
        dp in profile_strategy(),
        idx_ppm in 0u32..1_000_000,
        byte in 0u8..=255,
    ) {
        let slay = Arc::new(Layout::of(&schema, sp).unwrap());
        let dlay = Arc::new(Layout::of(&schema, dp).unwrap());
        let mut wire = encode_native(&value, &slay).unwrap();
        let idx = (wire.len() as u64 * idx_ppm as u64 / 1_000_000) as usize;
        prop_assume!(idx < wire.len());
        wire[idx] = byte;
        let plan = Arc::new(Plan::build(slay, dlay));
        let _ = InterpConverter::new(plan.clone()).convert(&wire);
        let _ = DcgConverter::compile(plan, CodegenMode::Optimized).unwrap().convert(&wire);
    }
}
