//! Distributed tracing end to end: wire-propagated trace context,
//! six-hop timeline reconstruction over the `$trace` channel, trailer
//! negotiation interop in both directions (old client ↔ new daemon,
//! new client ↔ old daemon), malformed-trailer rejection with the
//! session intact, and the runtime sampling toggle.

use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use pbio_net::frame::{read_frame, write_frame, Frame};
use pbio_obs::export::hop_from_value;
use pbio_obs::{TraceCtx, TraceHop, FLAG_SAMPLED, HOP_DECODE, HOP_PUBLISH, HOP_REQUIRED};
use pbio_serv::protocol::PROTOCOL_VERSION;
use pbio_serv::protocol::{
    E_CHANNEL, E_PROTOCOL, K_BYE, K_BYE_ACK, K_CHANNEL, K_CHANNEL_ACK, K_EVENT, K_FORMAT,
    K_FORMAT_ACK, K_HELLO, K_HELLO_ACK, K_PUBLISH, K_SUBSCRIBE, K_SUBSCRIBE_ACK, TRACE_FLAG,
};
use pbio_serv::{
    ServClient, ServConfig, ServDaemon, ServError, TraceConfig, CAP_TRACE, TRACE_CHANNEL,
};
use pbio_types::arch::ArchProfile;
use pbio_types::layout::Layout;
use pbio_types::meta::serialize_layout;
use pbio_types::schema::{AtomType, FieldDecl, Schema};
use pbio_types::value::{decode_native, RecordValue};

fn sample_schema() -> Schema {
    Schema::new(
        "trace-e2e",
        vec![
            FieldDecl::atom("seq", AtomType::U32),
            FieldDecl::atom("load", AtomType::CDouble),
        ],
    )
    .unwrap()
}

fn traced_daemon(sample_mod: u32) -> ServDaemon {
    ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            queue_capacity: 1024,
            stats_interval: None,
            trace: TraceConfig {
                sample_mod,
                publish_interval: Some(Duration::from_millis(50)),
                sink_capacity: 4096,
            },
            ..ServConfig::default()
        },
    )
    .unwrap()
}

/// The tentpole acceptance: a traced publish crosses the wire, every
/// stage stamps a hop, and a monitor on `$trace` reconstructs the full
/// publish → ingress → filter → enqueue → flush → decode timeline in
/// causal order on one time axis.
#[test]
fn traced_publish_reconstructs_six_hop_timeline() {
    let daemon = traced_daemon(1); // sample every publish
    let addr = daemon.local_addr();
    let schema = sample_schema();

    let mut monitor = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let trace_chan = monitor.open_channel(TRACE_CHANNEL).unwrap();
    monitor.subscribe_raw(trace_chan, None).unwrap();

    let mut subscriber = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let chan = subscriber.open_channel("trace-e2e").unwrap();
    let sub_trace_chan = subscriber.open_channel(TRACE_CHANNEL).unwrap();
    subscriber.subscribe(chan, &schema, None).unwrap();

    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    assert!(publisher.trace_negotiated());
    assert_eq!(publisher.trace_sampling(), 1, "modulus adopted from HELLO");
    let fmt = publisher.register_format(&schema).unwrap();
    let pub_chan = publisher.open_channel("trace-e2e").unwrap();

    for seq in 0..10u32 {
        let value = RecordValue::new().with("seq", seq).with("load", 0.5f64);
        publisher.publish_value(pub_chan, fmt, &value).unwrap();
    }

    // Drain the events at the subscriber (stamping decode hops), then
    // export those hops onto $trace.
    let mut received = 0;
    let deadline = Instant::now() + Duration::from_secs(10);
    while received < 10 && Instant::now() < deadline {
        if subscriber
            .poll(Duration::from_millis(100))
            .unwrap()
            .is_some()
        {
            received += 1;
        }
    }
    assert_eq!(received, 10);
    assert!(subscriber.publish_trace(sub_trace_chan).unwrap() > 0);

    // Collect hop records until some trace id has all six stages.
    let mut hops: Vec<TraceHop> = Vec::new();
    let complete = 'collect: loop {
        assert!(
            Instant::now() < deadline,
            "no complete timeline after {} hops: {hops:?}",
            hops.len()
        );
        let Some(ev) = monitor.poll_raw(Duration::from_millis(200)).unwrap() else {
            continue;
        };
        let value = decode_native(ev.bytes, &ev.layout).unwrap();
        if let Some(hop) = hop_from_value(&value) {
            hops.push(hop);
        }
        let Some(last) = hops.last() else { continue };
        let id = last.trace_id;
        let mut seen = [false; HOP_REQUIRED];
        for h in hops.iter().filter(|h| h.trace_id == id) {
            seen[h.hop as usize] = true;
        }
        if seen.iter().all(|&s| s) {
            break 'collect id;
        }
    };

    let timeline: Vec<&TraceHop> = hops.iter().filter(|h| h.trace_id == complete).collect();
    // Earliest stamp per stage must be causally ordered (one shared
    // daemon timebase; allow a little cross-process correction residue).
    let mut earliest = [u64::MAX; HOP_REQUIRED];
    for h in &timeline {
        earliest[h.hop as usize] = earliest[h.hop as usize].min(h.t_ns);
    }
    const SLACK_NS: u64 = 2_000_000;
    for stage in 1..HOP_REQUIRED {
        assert!(
            earliest[stage] + SLACK_NS >= earliest[stage - 1],
            "stage {stage} out of causal order: {timeline:?}"
        );
    }

    let publish = timeline.iter().find(|h| h.hop == HOP_PUBLISH).unwrap();
    assert_eq!(publish.dur_ns, 0, "publish is the origin");
    assert_eq!(publish.channel, pub_chan);
    let decode = timeline.iter().find(|h| h.hop == HOP_DECODE).unwrap();
    assert_eq!(decode.conn, subscriber.conn_id());
    assert!(
        decode.dur_ns < 10_000_000_000,
        "decode latency implausible: {decode:?}"
    );

    // The subscriber recorded the per-channel decode histogram under the
    // channel's *name*, resolved without touching the untraced path.
    let snap = subscriber.registry().snapshot();
    let decode_hist = snap.histogram("hop_decode_ns{chan=\"trace-e2e\"}").unwrap();
    assert!(decode_hist.count >= 10);

    daemon.shutdown();
}

/// Minimal frame-level peer: what a pre-tracing client looks like on
/// the wire (or a misbehaving one, when we want to hand-craft frames).
struct RawPeer {
    stream: TcpStream,
}

impl RawPeer {
    fn connect(addr: std::net::SocketAddr, caps: u32) -> RawPeer {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame(
            &mut stream,
            &Frame::with_body(K_HELLO, PROTOCOL_VERSION, caps, b"x86-64".as_slice()),
        )
        .unwrap();
        let ack = read_frame(&mut stream).unwrap();
        assert_eq!(ack.kind, K_HELLO_ACK);
        RawPeer { stream }
    }

    fn send(&mut self, frame: &Frame) {
        write_frame(&mut self.stream, frame).unwrap();
    }

    fn recv(&mut self) -> Frame {
        read_frame(&mut self.stream).unwrap()
    }

    fn roundtrip(&mut self, frame: &Frame) -> Frame {
        self.send(frame);
        self.recv()
    }

    fn register(&mut self, layout: &Layout) -> u32 {
        let ack = self.roundtrip(&Frame::with_body(K_FORMAT, 1, 0, serialize_layout(layout)));
        assert_eq!(ack.kind, K_FORMAT_ACK);
        ack.b
    }

    fn open(&mut self, name: &str) -> u32 {
        let ack = self.roundtrip(&Frame::with_body(K_CHANNEL, 2, 0, name.as_bytes()));
        assert_eq!(ack.kind, K_CHANNEL_ACK);
        ack.b
    }

    fn bye(mut self) {
        let ack = self.roundtrip(&Frame::control(K_BYE, 0, 0));
        assert_eq!(ack.kind, K_BYE_ACK, "session must still be serviceable");
    }
}

/// Interop, old client → new daemon: a subscriber that never offered
/// `CAP_TRACE` receives plain events — no `TRACE_FLAG`, no trailer —
/// even while the publisher's events are sampled and traced.
#[test]
fn old_subscriber_receives_untraced_frames() {
    let daemon = traced_daemon(1);
    let addr = daemon.local_addr();
    let schema = sample_schema();
    let layout = Layout::of(&schema, &ArchProfile::X86_64).unwrap();

    let mut old = RawPeer::connect(addr, 0); // offers no capabilities
    let chan = old.open("trace-e2e");
    let ack = old.roundtrip(&Frame::control(K_SUBSCRIBE, chan, 0));
    assert_eq!(ack.kind, K_SUBSCRIBE_ACK);

    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    assert!(publisher.trace_negotiated());
    let fmt = publisher.register_format(&schema).unwrap();
    let pub_chan = publisher.open_channel("trace-e2e").unwrap();
    let value = RecordValue::new().with("seq", 7u32).with("load", 1.0f64);
    publisher.publish_value(pub_chan, fmt, &value).unwrap();

    // ANNOUNCE precedes the event; the event must be pre-tracing clean.
    let mut event = old.recv();
    while event.kind != K_EVENT {
        event = old.recv();
    }
    assert_eq!(event.a, chan);
    assert_eq!(
        event.b & TRACE_FLAG,
        0,
        "no trailer flag without negotiation"
    );
    assert_eq!(
        event.body.len(),
        layout.size(),
        "no trailer bytes without negotiation"
    );
    old.bye();
    daemon.shutdown();
}

/// Interop, new client → old daemon: a daemon that answers HELLO with
/// an empty ack body (no capability grant) gets trailer-free publishes
/// from a tracing-capable client.
#[test]
fn new_client_sends_no_trailer_to_old_daemon() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (tx, rx) = mpsc::channel();
    let server = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        loop {
            let f = read_frame(&mut s).unwrap();
            match f.kind {
                // Empty ack body — the pre-tracing daemon's handshake.
                K_HELLO => {
                    write_frame(&mut s, &Frame::control(K_HELLO_ACK, PROTOCOL_VERSION, 9)).unwrap()
                }
                K_FORMAT => write_frame(&mut s, &Frame::control(K_FORMAT_ACK, f.a, 4)).unwrap(),
                K_CHANNEL => write_frame(&mut s, &Frame::control(K_CHANNEL_ACK, f.a, 2)).unwrap(),
                K_PUBLISH => {
                    tx.send((f.b, f.body.len())).unwrap();
                    break;
                }
                other => panic!("old daemon got unexpected frame kind {other:#04x}"),
            }
        }
    });

    let schema = sample_schema();
    let layout = Layout::of(&schema, &ArchProfile::X86_64).unwrap();
    let mut client = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    assert!(!client.trace_negotiated(), "empty ack body grants nothing");
    assert_eq!(client.trace_sampling(), 0, "sampler stays off");
    let fmt = client.register_format(&schema).unwrap();
    let chan = client.open_channel("trace-e2e").unwrap();
    let value = RecordValue::new().with("seq", 1u32).with("load", 2.0f64);
    client.publish_value(chan, fmt, &value).unwrap();

    let (b, body_len) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(b & TRACE_FLAG, 0, "publish must not be flagged");
    assert_eq!(b, fmt);
    assert_eq!(body_len, layout.size(), "no trailer appended");
    server.join().unwrap();
}

/// A peer that never negotiated `CAP_TRACE` but flags a publish anyway
/// is answered with `E_PROTOCOL` — and the session survives the error.
#[test]
fn unnegotiated_trailer_is_rejected_session_survives() {
    let daemon = traced_daemon(1);
    let addr = daemon.local_addr();
    let layout = Layout::of(&sample_schema(), &ArchProfile::X86_64).unwrap();

    let mut peer = RawPeer::connect(addr, 0);
    let fmt = peer.register(&layout);
    let chan = peer.open("trace-e2e");
    let ctx = TraceCtx {
        trace_id: 9,
        span_id: 0,
        origin_ns: 1,
        flags: FLAG_SAMPLED,
    };
    let mut body = vec![0u8; layout.size()];
    body.extend_from_slice(&ctx.encode());
    let err = peer.roundtrip(&Frame::with_body(K_PUBLISH, chan, fmt | TRACE_FLAG, body));
    assert_eq!(err.kind, pbio_serv::protocol::K_ERROR);
    assert_eq!(err.a, E_PROTOCOL);
    assert!(
        String::from_utf8_lossy(&err.body).contains("capability"),
        "error should name the negotiation failure"
    );
    peer.bye();
    daemon.shutdown();
}

/// A flagged publish whose trailer fails to parse (bad reserved bytes,
/// short body) is `E_PROTOCOL`; well-formed publishes on the same
/// session keep flowing afterwards.
#[test]
fn malformed_trailer_is_rejected_session_survives() {
    let daemon = traced_daemon(1);
    let addr = daemon.local_addr();
    let layout = Layout::of(&sample_schema(), &ArchProfile::X86_64).unwrap();

    let mut peer = RawPeer::connect(addr, CAP_TRACE);
    let fmt = peer.register(&layout);
    let chan = peer.open("trace-e2e");

    // Valid length, corrupt reserved byte.
    let ctx = TraceCtx {
        trace_id: 3,
        span_id: 0,
        origin_ns: 1,
        flags: FLAG_SAMPLED,
    };
    let mut trailer = ctx.encode();
    trailer[23] = 0xff;
    let mut body = vec![0u8; layout.size()];
    body.extend_from_slice(&trailer);
    let err = peer.roundtrip(&Frame::with_body(K_PUBLISH, chan, fmt | TRACE_FLAG, body));
    assert_eq!(
        (err.kind, err.a),
        (pbio_serv::protocol::K_ERROR, E_PROTOCOL)
    );
    assert!(String::from_utf8_lossy(&err.body).contains("trailer"));

    // A flagged body too short to hold any trailer at all.
    let err = peer.roundtrip(&Frame::with_body(
        K_PUBLISH,
        chan,
        fmt | TRACE_FLAG,
        vec![0u8; 3],
    ));
    assert_eq!(
        (err.kind, err.a),
        (pbio_serv::protocol::K_ERROR, E_PROTOCOL)
    );

    // The session still publishes: a well-formed traced publish lands.
    let mut body = vec![0u8; layout.size()];
    body.extend_from_slice(&ctx.encode());
    peer.send(&Frame::with_body(K_PUBLISH, chan, fmt | TRACE_FLAG, body));
    let deadline = Instant::now() + Duration::from_secs(5);
    while daemon.stats().events_in == 0 {
        assert!(Instant::now() < deadline, "good publish never landed");
        std::thread::sleep(Duration::from_millis(10));
    }
    peer.bye();
    daemon.shutdown();
}

/// `subscribe_raw` against a channel id the daemon never allocated is a
/// remote `E_CHANNEL` error, and the client object remains usable.
#[test]
fn subscribe_raw_unknown_channel_is_remote_error() {
    let daemon = traced_daemon(0);
    let addr = daemon.local_addr();
    let mut client = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    match client.subscribe_raw(0xdead, None) {
        Err(ServError::Remote { code, .. }) => assert_eq!(code, E_CHANNEL),
        other => panic!("expected remote E_CHANNEL, got {other:?}"),
    }
    // The same session recovers: a real subscription still works.
    let chan = client.open_channel("recover").unwrap();
    client.subscribe_raw(chan, None).unwrap();
    daemon.shutdown();
}

/// Client-side event decoding error paths, driven by a hand-rolled
/// daemon: an event for a format never announced, a flagged event with
/// a malformed (or impossible) trailer — each surfaces `E_PROTOCOL`-
/// class [`ServError::Protocol`] without poisoning the session, and a
/// well-formed traced event afterwards still delivers with its trailer
/// stripped.
#[test]
fn poll_raw_error_paths_leave_session_alive() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let schema = sample_schema();
    let layout = Layout::of(&schema, &ArchProfile::X86_64).unwrap();
    let record = vec![0u8; layout.size()];

    let meta = serialize_layout(&layout);
    let good_ctx = TraceCtx {
        trace_id: 11,
        span_id: 0,
        origin_ns: 1,
        flags: FLAG_SAMPLED,
    };
    let record_size = record.len();
    let server = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let hello = read_frame(&mut s).unwrap();
        assert_eq!(hello.kind, K_HELLO);
        write_frame(&mut s, &Frame::control(K_HELLO_ACK, PROTOCOL_VERSION, 5)).unwrap();

        // 1. Event for a format that was never announced.
        write_frame(&mut s, &Frame::with_body(K_EVENT, 1, 4, record.clone())).unwrap();
        // 2. Announce, then a flagged event with a corrupt trailer.
        write_frame(
            &mut s,
            &Frame::with_body(pbio_serv::protocol::K_ANNOUNCE, 4, 0, meta),
        )
        .unwrap();
        let mut bad = record.clone();
        let mut trailer = good_ctx.encode();
        trailer[21] = 0xee; // nonzero reserved byte
        bad.extend_from_slice(&trailer);
        write_frame(&mut s, &Frame::with_body(K_EVENT, 1, 4 | TRACE_FLAG, bad)).unwrap();
        // 3. A flagged event physically too short for any trailer.
        write_frame(
            &mut s,
            &Frame::with_body(K_EVENT, 1, 4 | TRACE_FLAG, vec![1u8, 2, 3]),
        )
        .unwrap();
        // 4. A well-formed traced event.
        let mut good = record.clone();
        good.extend_from_slice(&good_ctx.encode());
        write_frame(&mut s, &Frame::with_body(K_EVENT, 1, 4 | TRACE_FLAG, good)).unwrap();
        // Keep the socket open until the client is done reading.
        let _ = read_frame(&mut s);
    });

    let mut client = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let timeout = Duration::from_secs(5);

    match client.poll_raw(timeout) {
        Err(ServError::Protocol(msg)) => assert!(msg.contains("unannounced"), "{msg}"),
        other => panic!("expected unannounced-format error, got {other:?}"),
    }
    match client.poll_raw(timeout) {
        Err(ServError::Protocol(msg)) => assert!(msg.contains("malformed"), "{msg}"),
        other => panic!("expected malformed-trailer error, got {other:?}"),
    }
    match client.poll_raw(timeout) {
        Err(ServError::Protocol(msg)) => assert!(msg.contains("shorter"), "{msg}"),
        other => panic!("expected short-body error, got {other:?}"),
    }
    let ev = client.poll_raw(timeout).unwrap().expect("good event");
    assert_eq!(ev.channel, 1);
    assert_eq!(ev.format, 4, "flag bit stripped from the format id");
    assert_eq!(ev.bytes.len(), record_size, "trailer stripped from body");
    assert_eq!(client.take_trace_hops().len(), 1, "decode hop stamped");

    drop(client);
    server.join().unwrap();
}

/// The runtime toggle: `K_TRACE_CTL` swaps the daemon-wide sampling
/// modulus, reports the previous value, and new sessions adopt the
/// updated modulus at handshake.
#[test]
fn runtime_sampling_toggle_round_trips() {
    let daemon = traced_daemon(64);
    let addr = daemon.local_addr();

    let mut ctl = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    assert_eq!(ctl.trace_sampling(), 64, "handshake adopted the default");
    assert_eq!(ctl.set_daemon_trace(8).unwrap(), 64, "previous modulus");
    assert_eq!(daemon.trace_sampling(), 8);

    // Sessions opened after the toggle adopt the new modulus; the local
    // sampler can still be overridden independently.
    let late = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    assert_eq!(late.trace_sampling(), 8);
    late.set_trace_sampling(0);
    assert_eq!(late.trace_sampling(), 0);

    assert_eq!(
        ctl.set_daemon_trace(0).unwrap(),
        8,
        "0 disables daemon-wide"
    );
    assert_eq!(daemon.trace_sampling(), 0);
    let off = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    assert_eq!(off.trace_sampling(), 0);
    daemon.shutdown();
}
