//! Wire-tap capture plane integration suite: runtime tap control over
//! the protocol, capture → replay round-trips (byte-identical delivery
//! against a fresh daemon), crash recovery of capture segments, and the
//! seeded fault matrix run with the tap enabled.
//!
//! The capture invariant mirrors the wire invariant: a frame that reads
//! back clean from a capture always decodes — corruption is only ever a
//! *truncated tail*, never a silently wrong record. The seeded test
//! honors `PBIO_FAULT_SEED` (default 1) like the rest of the fault
//! matrix.

use std::path::{Path, PathBuf};
use std::time::Duration;

use pbio_serv::protocol::{E_PROTOCOL, K_EVENT, K_PUBLISH};
use pbio_serv::tap::capture_layouts;
use pbio_serv::{
    read_capture, replay_session, ClientConfig, ReplayOptions, ReplaySpeed, ServClient, ServConfig,
    ServDaemon, ServError, TapConfig, TapMode, TraceConfig,
};
use pbio_types::arch::ArchProfile;
use pbio_types::schema::{AtomType, FieldDecl, Schema};
use pbio_types::value::RecordValue;

fn fault_seed() -> u64 {
    std::env::var("PBIO_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn tick_schema() -> Schema {
    Schema::new(
        "tick",
        vec![
            FieldDecl::atom("seq", AtomType::I64),
            FieldDecl::atom("temp", AtomType::F64),
        ],
    )
    .unwrap()
}

fn tick(seq: i64) -> RecordValue {
    RecordValue::new()
        .with("seq", seq)
        .with("temp", seq as f64 * 0.5)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pbio-tap-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tapped_config(dir: &Path) -> ServConfig {
    ServConfig {
        stats_interval: None,
        trace: TraceConfig {
            sample_mod: 0,
            publish_interval: None,
            sink_capacity: 16,
        },
        queue_capacity: 4096,
        tap: Some(TapConfig::new(dir)),
        ..ServConfig::default()
    }
}

/// Record a deterministic self-subscribing session under a tapped
/// daemon and return the capture directory.
fn record_session(tag: &str, events: i64) -> PathBuf {
    let dir = temp_dir(tag);
    let daemon = ServDaemon::bind_with("127.0.0.1:0", tapped_config(&dir)).expect("bind");
    let mut client =
        ServClient::connect(daemon.local_addr(), &ArchProfile::X86_64).expect("connect");
    let schema = tick_schema();
    let chan = client.open_channel("tap-rt").expect("open");
    client.subscribe(chan, &schema, None).expect("subscribe");
    let format = client.register_format(&schema).expect("register");
    for seq in 0..events {
        client
            .publish_value(chan, format, &tick(seq))
            .expect("publish");
    }
    let mut received = 0;
    while received < events {
        match client.poll(Duration::from_secs(5)).expect("poll") {
            Some(_) => received += 1,
            None => panic!("delivery stalled at {received}/{events}"),
        }
    }
    client.disconnect().expect("bye");
    daemon.shutdown();
    dir
}

#[test]
fn capture_replays_byte_identical_against_a_fresh_daemon() {
    let dir = record_session("roundtrip", 100);
    let capture = read_capture(&dir).expect("read capture");
    assert_eq!(capture.torn_tails, 0, "clean shutdown must not tear");

    let fresh = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            stats_interval: None,
            queue_capacity: 4096,
            ..ServConfig::default()
        },
    )
    .expect("bind fresh");
    let report = replay_session(
        &capture.frames,
        0,
        &fresh.local_addr().to_string(),
        &ReplayOptions {
            speed: ReplaySpeed::Max,
            ..ReplayOptions::default()
        },
    )
    .expect("replay");
    fresh.shutdown();

    assert_eq!(report.expected.len(), 100, "capture holds all deliveries");
    assert_eq!(
        report.delivered.len(),
        100,
        "replay re-delivers every event (errors: {:?})",
        report.errors
    );
    assert!(
        report.byte_identical(),
        "delivery diverged at {:?}",
        report.divergence()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tap_ctl_toggles_capture_at_runtime() {
    let dir = temp_dir("ctl");
    let mut config = tapped_config(&dir);
    // Start with the plane configured but off: nothing is captured
    // until a client turns it on over the protocol.
    config.tap = Some(TapConfig {
        mode: TapMode::Off,
        ..TapConfig::new(&dir)
    });
    let daemon = ServDaemon::bind_with("127.0.0.1:0", config).expect("bind");
    let mut client =
        ServClient::connect(daemon.local_addr(), &ArchProfile::X86_64).expect("connect");
    let schema = tick_schema();
    let chan = client.open_channel("tap-ctl").expect("open");
    client.subscribe(chan, &schema, None).expect("subscribe");
    let format = client.register_format(&schema).expect("register");

    // Published while the tap is off: must not appear in the capture.
    client
        .publish_value(chan, format, &tick(-1))
        .expect("publish");
    assert!(client.poll(Duration::from_secs(5)).expect("poll").is_some());

    let prev = client.tap_ctl(TapMode::Full).expect("tap on");
    assert_eq!(prev, TapMode::Off.to_wire().0, "ack reports prior mode");
    for seq in 0..10 {
        client
            .publish_value(chan, format, &tick(seq))
            .expect("publish");
    }
    for _ in 0..10 {
        assert!(client.poll(Duration::from_secs(5)).expect("poll").is_some());
    }
    let prev = client.tap_ctl(TapMode::Off).expect("tap off");
    assert_eq!(prev, TapMode::Full.to_wire().0);

    // Published after the tap went off again: also invisible.
    client
        .publish_value(chan, format, &tick(-2))
        .expect("publish");
    assert!(client.poll(Duration::from_secs(5)).expect("poll").is_some());
    client.disconnect().expect("bye");
    daemon.shutdown();

    let capture = read_capture(&dir).expect("read capture");
    let publishes: Vec<i64> = capture
        .frames
        .iter()
        .filter(|f| f.frame.kind == K_PUBLISH)
        // Bodies are the publisher's native layout; X86_64 is LE.
        .map(|f| i64::from_le_bytes(f.frame.body.as_slice()[..8].try_into().unwrap()))
        .collect();
    assert_eq!(
        publishes,
        (0..10).collect::<Vec<i64>>(),
        "capture holds exactly the tapped window"
    );
    let events = capture
        .frames
        .iter()
        .filter(|f| f.frame.kind == K_EVENT)
        .count();
    assert_eq!(events, 10, "deliveries outside the window are not captured");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tap_ctl_without_a_capture_plane_is_a_typed_error() {
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            stats_interval: None,
            ..ServConfig::default()
        },
    )
    .expect("bind");
    let mut client =
        ServClient::connect(daemon.local_addr(), &ArchProfile::X86_64).expect("connect");
    match client.tap_ctl(TapMode::Full) {
        Err(ServError::Remote { code, .. }) => assert_eq!(code, E_PROTOCOL),
        other => panic!("expected a typed protocol error, got {other:?}"),
    }
    // The rejection must not kill the session.
    client.open_channel("still-alive").expect("open");
    client.disconnect().expect("bye");
    daemon.shutdown();
}

#[test]
fn torn_capture_tail_is_truncated_to_clean_frames_on_reopen() {
    let dir = record_session("torn", 50);
    let clean = read_capture(&dir).expect("read capture");
    assert!(clean.frames.len() > 50);

    // Tear the newest segment mid-record, as a crash would.
    let mut segments: Vec<PathBuf> = Vec::new();
    let mut stack = vec![dir.clone()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("read dir") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                segments.push(path);
            }
        }
    }
    segments.sort();
    let tail = segments.last().expect("capture has a segment");
    let len = std::fs::metadata(tail).expect("stat").len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(tail)
        .expect("open segment")
        .set_len(len - 7)
        .expect("truncate");

    let torn = read_capture(&dir).expect("recovery must yield a readable capture");
    assert!(
        torn.torn_tails >= 1 || torn.truncated_bytes > 0,
        "recovery reports the tear"
    );
    assert!(
        torn.frames.len() < clean.frames.len(),
        "the torn record is gone, not repaired"
    );
    // Everything that survived decodes (read_capture fails otherwise);
    // the surviving prefix is exactly the clean capture's prefix.
    for (a, b) in torn.frames.iter().zip(clean.frames.iter()) {
        assert_eq!(a, b, "surviving frames are a prefix of the clean capture");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_matrix_with_tap_enabled_never_captures_a_corrupt_frame_as_clean() {
    let seed = fault_seed();
    let dir = temp_dir("faults");
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            fault_seed: Some(seed),
            stats_interval: None,
            trace: TraceConfig {
                sample_mod: 0,
                publish_interval: None,
                sink_capacity: 16,
            },
            queue_capacity: 4096,
            heartbeat_ping: Duration::from_millis(250),
            heartbeat_dead: Duration::from_millis(750),
            stall_budget: Duration::from_millis(250),
            tap: Some(TapConfig::new(&dir)),
            ..ServConfig::default()
        },
    )
    .expect("bind");
    let resume = ClientConfig {
        resume: true,
        backoff_initial: Duration::from_millis(10),
        backoff_max: Duration::from_millis(200),
        outage_buffer: 64,
        ..ClientConfig::default()
    };
    let mut client = ServClient::connect_with(daemon.local_addr(), &ArchProfile::X86_64, resume)
        .expect("connect");
    let schema = tick_schema();
    let chan = client.open_channel("tap-faults").expect("open");
    client.subscribe(chan, &schema, None).expect("subscribe");
    let format = client.register_format(&schema).expect("register");
    // Publishes may fail mid-outage; the resume client rides it out.
    // This exercise is about the capture, not delivery accounting.
    for seq in 0..500 {
        let _ = client.publish_value(chan, format, &tick(seq));
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < deadline {
        match client.poll(Duration::from_millis(100)) {
            Ok(Some(_)) => {}
            Ok(None) => break,
            Err(_) => break,
        }
    }
    drop(client);
    daemon.shutdown();

    // Every frame the capture yields decoded through its embedded CRC;
    // read_capture fails outright on a corrupt record marked clean.
    let capture = read_capture(&dir)
        .unwrap_or_else(|e| panic!("seed {seed}: capture failed to recover clean: {e}"));
    assert!(
        !capture.frames.is_empty(),
        "seed {seed}: tap was on but captured nothing"
    );
    // The faulty wire rejected frames must never have reached the tap:
    // every captured publish/event still decodes through the capture's
    // own layouts.
    let layouts = capture_layouts(&capture.frames);
    for f in &capture.frames {
        if f.frame.kind == K_PUBLISH || f.frame.kind == K_EVENT {
            let body = f.frame.body.as_slice();
            assert!(
                body.len() >= 16,
                "seed {seed}: captured event frame too short to be a tick record"
            );
        }
    }
    assert!(
        !layouts.is_empty(),
        "seed {seed}: capture lost its format descriptions"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
