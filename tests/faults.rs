//! Fault-tolerance suite for the serv layer: deterministic fault
//! injection, oversized/corrupt frame rejection, heartbeat and
//! stalled-writer eviction, and the daemon kill/restart resume storm.
//!
//! The seeded tests honor `PBIO_FAULT_SEED` (default 1) so CI can run the
//! same workload across a matrix of seeds; every seed must pass with the
//! invariant that a delivered event is byte-identical to a published one
//! — corruption is only ever a *counted, rejected* frame, never a
//! silently wrong record.

use std::io::{Cursor, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use pbio_net::fault::{FaultLog, FaultPlan, FaultyStream};
use pbio_net::frame::{
    crc32, read_frame, write_frame_raw, FrameError, FRAME_HEADER_SIZE, MAX_FRAME_BODY,
};
use pbio_serv::protocol::{
    E_PROTOCOL, K_CHANNEL, K_CHANNEL_ACK, K_ERROR, K_HELLO, K_HELLO_ACK, K_PUBLISH, K_SUBSCRIBE,
    K_SUBSCRIBE_ACK, PROTOCOL_VERSION,
};
use pbio_serv::{ClientConfig, ServClient, ServConfig, ServDaemon, TraceConfig};
use pbio_types::arch::ArchProfile;
use pbio_types::schema::{AtomType, FieldDecl, Schema, TypeDesc};
use pbio_types::value::{RecordValue, Value};

/// The CI fault-matrix seeds (mirrored in `.github/workflows/ci.yml`).
const MATRIX_SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 0xDEAD_BEEF];

/// Seed under test: `PBIO_FAULT_SEED` from the environment (the CI
/// matrix sets it), defaulting to 1 — an odd seed, so the generated
/// plans include a mid-stream disconnect.
fn fault_seed() -> u64 {
    std::env::var("PBIO_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn quiet_config() -> ServConfig {
    ServConfig {
        stats_interval: None,
        trace: TraceConfig {
            sample_mod: 0,
            publish_interval: None,
            sink_capacity: 16,
        },
        ..ServConfig::default()
    }
}

fn resume_client() -> ClientConfig {
    ClientConfig {
        resume: true,
        backoff_initial: Duration::from_millis(10),
        backoff_max: Duration::from_millis(200),
        outage_buffer: 64,
        ..ClientConfig::default()
    }
}

fn tick_schema() -> Schema {
    Schema::new(
        "tick",
        vec![
            FieldDecl::atom("seq", AtomType::I64),
            FieldDecl::atom("temp", AtomType::F64),
        ],
    )
    .unwrap()
}

fn tick(seq: i64) -> RecordValue {
    RecordValue::new()
        .with("seq", seq)
        .with("temp", seq as f64 * 0.5)
}

/// The plan generator is a pure function of the seed: the property the
/// whole CI matrix rests on. (Byte-level reproducibility of a wrapped
/// stream is asserted in `pbio-net`'s own fault tests.)
#[test]
fn seeded_fault_plans_are_deterministic() {
    for seed in MATRIX_SEEDS {
        assert_eq!(
            FaultPlan::from_seed(seed),
            FaultPlan::from_seed(seed),
            "seed {seed}: plan not reproducible"
        );
        for conn in 0..4 {
            assert_eq!(
                FaultPlan::for_conn(seed, conn),
                FaultPlan::for_conn(seed, conn),
                "seed {seed} conn {conn}: per-connection plan not reproducible"
            );
        }
        assert!(
            !FaultPlan::from_seed(seed).is_empty(),
            "seed {seed}: plan injects nothing"
        );
    }
    assert_ne!(FaultPlan::from_seed(1), FaultPlan::from_seed(2));
}

/// Handcraft one frame with full control over the length and checksum
/// fields (the client library would never emit these).
fn raw_frame(kind: u8, a: u32, b: u32, len: u32, crc: u32) -> [u8; FRAME_HEADER_SIZE] {
    let mut h = [0u8; FRAME_HEADER_SIZE];
    h[0] = kind;
    h[1..5].copy_from_slice(&a.to_be_bytes());
    h[5..9].copy_from_slice(&b.to_be_bytes());
    h[9..13].copy_from_slice(&len.to_be_bytes());
    h[13..17].copy_from_slice(&crc.to_be_bytes());
    h
}

fn raw_hello(stream: &mut TcpStream) {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write_frame_raw(
        stream,
        K_HELLO,
        PROTOCOL_VERSION,
        0,
        ArchProfile::X86_64.name.as_bytes(),
    )
    .unwrap();
    let ack = read_frame(stream).unwrap();
    assert_eq!(ack.kind, K_HELLO_ACK);
}

/// Regression for the oversized-length bugfix: a header announcing a
/// body over [`MAX_FRAME_BODY`] must not drive a proportional
/// allocation; the daemon drains the announced bytes, answers
/// `ERROR(E_PROTOCOL)`, counts the reject, and keeps the session.
#[test]
fn oversized_frame_is_rejected_without_killing_the_session() {
    let daemon = ServDaemon::bind_with("127.0.0.1:0", quiet_config()).unwrap();
    let mut stream = TcpStream::connect(daemon.local_addr()).unwrap();
    raw_hello(&mut stream);

    let hostile = (MAX_FRAME_BODY + 1) as u32;
    stream
        .write_all(&raw_frame(K_PUBLISH, 0, 0, hostile, 0))
        .unwrap();
    // Stream the announced body so the connection stays in sync; the
    // daemon discards it in bounded chunks.
    let chunk = vec![0u8; 64 * 1024];
    let mut remaining = hostile as usize;
    while remaining > 0 {
        let n = remaining.min(chunk.len());
        stream.write_all(&chunk[..n]).unwrap();
        remaining -= n;
    }

    let err = read_frame(&mut stream).unwrap();
    assert_eq!(err.kind, K_ERROR);
    assert_eq!(err.a, E_PROTOCOL);
    assert!(
        String::from_utf8_lossy(&err.body).contains("exceeds"),
        "error names the length violation"
    );

    // Session still alive: a channel round trip works.
    write_frame_raw(&mut stream, K_CHANNEL, 9, 0, b"survivor").unwrap();
    let ack = read_frame(&mut stream).unwrap();
    assert_eq!(ack.kind, K_CHANNEL_ACK);
    assert_eq!(ack.a, 9);
    assert_eq!(daemon.stats().frames_rejected, 1);
    daemon.shutdown();
}

/// A frame whose checksum does not cover its bytes is rejected and
/// counted, and — because the body was fully consumed — the session
/// survives in sync.
#[test]
fn corrupt_checksum_is_rejected_without_killing_the_session() {
    let daemon = ServDaemon::bind_with("127.0.0.1:0", quiet_config()).unwrap();
    let mut stream = TcpStream::connect(daemon.local_addr()).unwrap();
    raw_hello(&mut stream);

    // A structurally valid CHANNEL frame with a flipped checksum.
    let body = b"not-a-channel";
    let mut prefix = [0u8; FRAME_HEADER_SIZE - 4];
    prefix[0] = K_CHANNEL;
    prefix[1..5].copy_from_slice(&7u32.to_be_bytes());
    prefix[9..13].copy_from_slice(&(body.len() as u32).to_be_bytes());
    let mut checksummed = prefix.to_vec();
    checksummed.extend_from_slice(body);
    let good = crc32(&checksummed);
    stream
        .write_all(&raw_frame(K_CHANNEL, 7, 0, body.len() as u32, good ^ 0x1))
        .unwrap();
    stream.write_all(body).unwrap();

    let err = read_frame(&mut stream).unwrap();
    assert_eq!(err.kind, K_ERROR);
    assert_eq!(err.a, E_PROTOCOL);
    assert!(
        String::from_utf8_lossy(&err.body).contains("checksum"),
        "error names the checksum mismatch"
    );

    // The same frame with the correct checksum now succeeds.
    stream
        .write_all(&raw_frame(K_CHANNEL, 7, 0, body.len() as u32, good))
        .unwrap();
    stream.write_all(body).unwrap();
    let ack = read_frame(&mut stream).unwrap();
    assert_eq!(ack.kind, K_CHANNEL_ACK);
    assert_eq!(ack.a, 7);
    assert_eq!(daemon.stats().frames_rejected, 1);
    daemon.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The corruption property: for *any* byte-corruption plan over a
    /// stream of frames, every frame the reader accepts is byte-identical
    /// to one that was written, in order — damage is always a detected
    /// error, never a silently wrong record.
    #[test]
    fn corruption_never_yields_a_wrong_frame(
        bodies in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 1..12),
        hits in proptest::collection::vec((any::<u16>(), 1u8..=255), 0..6),
    ) {
        // Serialize the stream once, clean.
        let mut wire = Vec::new();
        for (i, body) in bodies.iter().enumerate() {
            write_frame_raw(&mut wire, 0x21, i as u32, 0, body).unwrap();
        }
        let plan = hits.iter().fold(FaultPlan::new(), |p, &(at, xor)| {
            p.corrupt_read(at as u64 % (wire.len() as u64 + 1), xor)
        });
        let mut faulty = FaultyStream::new(Cursor::new(wire), plan, FaultLog::new());

        // Read frames until the first error or EOF. Accepted frames must
        // match the originals positionally and byte-for-byte.
        let mut delivered = 0usize;
        loop {
            match read_frame(&mut faulty) {
                Ok(f) => {
                    prop_assert!(delivered < bodies.len(), "phantom frame accepted");
                    prop_assert_eq!(f.a, delivered as u32);
                    prop_assert_eq!(
                        &f.body[..], &bodies[delivered][..],
                        "accepted frame differs from what was published"
                    );
                    delivered += 1;
                }
                Err(FrameError::Closed) => break,
                // Any detected damage ends the check: everything accepted
                // up to here was verified identical.
                Err(_) => break,
            }
        }
        prop_assert!(delivered <= bodies.len());
    }
}

/// The tentpole acceptance: kill the daemon mid-publish-storm, restart
/// it on the same port, and watch both clients resume — formats,
/// channels, and subscriptions replayed, buffered publishes flushed —
/// with the outage accounted for *exactly* in the client counters.
#[test]
fn daemon_kill_and_restart_resumes_both_sides_with_exact_accounting() {
    let daemon = ServDaemon::bind_with("127.0.0.1:0", quiet_config()).unwrap();
    let addr = daemon.local_addr();
    let schema = tick_schema();

    let mut publisher =
        ServClient::connect_with(addr, &ArchProfile::X86_64, resume_client()).unwrap();
    assert!(publisher.resume_negotiated());
    assert_eq!(publisher.session_epoch(), 1);
    let format = publisher.register_format(&schema).unwrap();
    let chan = publisher.open_channel("storm").unwrap();

    let mut subscriber =
        ServClient::connect_with(addr, &ArchProfile::X86_64, resume_client()).unwrap();
    let sub_chan = subscriber.open_channel("storm").unwrap();
    subscriber.subscribe(sub_chan, &schema, None).unwrap();

    let mut published: u64 = 0;
    let mut seq: i64 = 0;
    let publish_next = |p: &mut ServClient, published: &mut u64, seq: &mut i64| {
        p.publish_value(chan, format, &tick(*seq)).unwrap();
        *published += 1;
        *seq += 1;
    };

    // Pre-outage traffic, received zero-copy.
    for _ in 0..10 {
        publish_next(&mut publisher, &mut published, &mut seq);
    }
    let mut received: Vec<(i64, f64)> = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while received.len() < 10 && Instant::now() < deadline {
        if let Some(ev) = subscriber.poll(Duration::from_millis(100)).unwrap() {
            let Some(Value::I64(s)) = ev.view.get("seq") else {
                panic!("seq missing")
            };
            let Some(Value::F64(t)) = ev.view.get("temp") else {
                panic!("temp missing")
            };
            received.push((s, t));
        }
    }
    assert_eq!(received.len(), 10, "pre-outage events all arrive");

    // Kill the daemon mid-storm and keep publishing into the outage:
    // more than the outage buffer holds, so drop-oldest must fire.
    daemon.shutdown();
    for _ in 0..300 {
        publish_next(&mut publisher, &mut published, &mut seq);
    }
    let mid = publisher.stats();
    assert_eq!(mid.publishes, published);
    assert!(mid.buffered > 64, "storm overflowed into the outage buffer");
    assert!(
        mid.buffer_dropped > 0,
        "drop-oldest fired past the buffer bound"
    );
    assert_eq!(mid.buffered_replayed, 0, "nothing replayed while down");

    // Restart on the same port. Nobody calls a "reconnect" API: the
    // subscriber's poll loop and the publisher's publishes drive resume.
    let daemon2 = ServDaemon::bind_with(addr, quiet_config()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(15);
    while subscriber.stats().reconnects == 0 && Instant::now() < deadline {
        let _ = subscriber.poll(Duration::from_millis(100));
    }
    assert!(
        subscriber.stats().reconnects >= 1,
        "subscriber resumed by polling alone"
    );
    while publisher.in_outage() && Instant::now() < deadline {
        publish_next(&mut publisher, &mut published, &mut seq);
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        !publisher.in_outage(),
        "publisher resumed by publishing alone"
    );

    // Post-resume tail: these must flow end to end.
    let tail_first = seq;
    for _ in 0..10 {
        publish_next(&mut publisher, &mut published, &mut seq);
    }
    let last = seq - 1;
    let mut tail_seen = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(15);
    while Instant::now() < deadline {
        match subscriber.poll(Duration::from_millis(100)) {
            Ok(Some(ev)) => {
                let Some(Value::I64(s)) = ev.view.get("seq") else {
                    panic!("seq missing")
                };
                let Some(Value::F64(t)) = ev.view.get("temp") else {
                    panic!("temp missing")
                };
                assert_eq!(t, s as f64 * 0.5, "delivered record is self-consistent");
                if s >= tail_first {
                    tail_seen.push(s);
                }
                if s == last {
                    break;
                }
            }
            Ok(None) => {}
            Err(e) => panic!("subscriber poll failed after resume: {e}"),
        }
    }
    assert_eq!(
        tail_seen,
        (tail_first..=last).collect::<Vec<_>>(),
        "every post-resume event arrived, in order"
    );

    // The exact books. Every publish call is accounted: it either went
    // to a live socket (publishes - buffered) or into the buffer, and
    // every buffered event was either replayed or counted dropped —
    // the buffer is empty once the outage ends.
    let p = publisher.stats();
    assert_eq!(p.publishes, published);
    assert_eq!(
        p.buffered,
        p.buffered_replayed + p.buffer_dropped,
        "outage buffer fully drained and accounted"
    );
    assert!(p.reconnects >= 1);
    assert!(publisher.session_epoch() >= 2, "epoch bumped per resume");
    let d = daemon2.stats();
    assert!(d.resumes >= 2, "both clients resumed on the new daemon");
    assert_eq!(d.resumes_stale, 0);
    daemon2.shutdown();
}

/// A peer that answers nothing is probed after `heartbeat_ping` and
/// evicted after `heartbeat_dead`; a client that merely *polls* answers
/// the probes transparently and is never evicted.
#[test]
fn silent_peer_is_pinged_then_evicted_while_a_polling_client_survives() {
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            heartbeat_ping: Duration::from_millis(300),
            heartbeat_dead: Duration::from_millis(900),
            ..quiet_config()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();

    // A live client with nothing to say: it only polls.
    let mut idle_client = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();

    // A raw peer that completes the handshake and then plays dead.
    let mut zombie = TcpStream::connect(addr).unwrap();
    raw_hello(&mut zombie);

    let deadline = Instant::now() + Duration::from_secs(10);
    while daemon.stats().evicted_dead == 0 && Instant::now() < deadline {
        // Polling answers K_PING under the hood, keeping this client off
        // the eviction list for the whole wait.
        let _ = idle_client.poll(Duration::from_millis(100)).unwrap();
    }
    let stats = daemon.stats();
    assert!(stats.pings >= 1, "silent peer was probed");
    assert_eq!(stats.evicted_dead, 1, "only the zombie was evicted");

    // The zombie's socket is dead; the polling client's is not.
    let mut probe = [0u8; 1];
    zombie
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // Drain until EOF: pings queued to the zombie arrive first.
    loop {
        match zombie.read(&mut probe) {
            Ok(0) => break,    // clean FIN after eviction
            Ok(_) => continue, // draining the queued pings
            Err(_) => break,   // or an abortive close — either proves death
        }
    }
    let ch = idle_client.open_channel("still-here").unwrap();
    assert!(ch < 0x4000_0000);
    daemon.shutdown();
}

/// A subscriber whose writer makes no progress past the stall budget is
/// escalated from drop-oldest to eviction, unblocking the daemon.
#[test]
fn stalled_subscriber_is_evicted_after_the_stall_budget() {
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            queue_capacity: 8,
            stall_budget: Duration::from_millis(300),
            ..quiet_config()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();

    // Bulky records so the kernel socket buffers fill quickly once the
    // subscriber stops reading.
    let blob_schema = Schema::new(
        "blob",
        vec![FieldDecl::new(
            "bytes",
            TypeDesc::array(AtomType::U8, 16 * 1024),
        )],
    )
    .unwrap();

    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let format = publisher.register_format(&blob_schema).unwrap();
    let chan = publisher.open_channel("firehose").unwrap();

    // Raw subscriber: subscribes, then never reads another byte.
    let mut stalled = TcpStream::connect(addr).unwrap();
    raw_hello(&mut stalled);
    write_frame_raw(&mut stalled, K_CHANNEL, 1, 0, b"firehose").unwrap();
    let ack = read_frame(&mut stalled).unwrap();
    assert_eq!(ack.kind, K_CHANNEL_ACK);
    let wire_chan = ack.b;
    write_frame_raw(&mut stalled, K_SUBSCRIBE, wire_chan, 0, &[]).unwrap();
    let ack = read_frame(&mut stalled).unwrap();
    assert_eq!(ack.kind, K_SUBSCRIBE_ACK);

    let payload = vec![0xA5u8; 16 * 1024];
    let deadline = Instant::now() + Duration::from_secs(20);
    while daemon.stats().evicted_stalled == 0 && Instant::now() < deadline {
        publisher.publish(chan, format, &payload).unwrap();
    }
    let stats = daemon.stats();
    assert!(
        stats.evicted_stalled >= 1,
        "stall escalated to eviction (dropped {} events first)",
        stats.dropped
    );
    assert!(
        stats.dropped > 0,
        "drop-oldest ran before escalation kicked in"
    );
    daemon.shutdown();
}

/// The CI fault-matrix workload: a daemon whose every connection is
/// wrapped in a seeded fault plan (corruption, stalls, torn writes,
/// mid-frame disconnects), under a resume publisher and subscriber.
/// Whatever the seed throws, three invariants must hold: the run
/// terminates, every delivered record is self-consistent (byte-identical
/// to a published one), and damage shows up in the reject/reconnect
/// counters rather than in the data.
#[test]
fn seeded_fault_matrix_workload_never_corrupts_delivered_events() {
    let seed = fault_seed();
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            fault_seed: Some(seed),
            ..quiet_config()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();
    let schema = tick_schema();

    // Connecting itself runs through the faulty transport; retry a few
    // times (each attempt is a new connection with a new derived plan).
    let connect = |what: &str| -> ServClient {
        for _ in 0..10 {
            if let Ok(c) = ServClient::connect_with(addr, &ArchProfile::X86_64, resume_client()) {
                return c;
            }
        }
        panic!("seed {seed}: {what} could not establish any session");
    };
    let mut publisher = connect("publisher");
    let retry = |r: Result<u32, pbio_serv::ServError>,
                 publisher: &mut ServClient,
                 schema: &Schema,
                 name: &str|
     -> u32 {
        match r {
            Ok(id) => id,
            // A fault landed on the ack round trip: the session-level
            // request is retried on the (possibly reconnected) session.
            Err(_) => {
                for _ in 0..20 {
                    let again = if name.is_empty() {
                        publisher.register_format(schema)
                    } else {
                        publisher.open_channel(name)
                    };
                    if let Ok(id) = again {
                        return id;
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
                panic!("seed {seed}: request never succeeded");
            }
        }
    };
    let r = publisher.register_format(&schema);
    let format = retry(r, &mut publisher, &schema, "");
    let r = publisher.open_channel("matrix");
    let chan = retry(r, &mut publisher, &schema, "matrix");

    let mut subscriber = connect("subscriber");
    let r = subscriber.open_channel("matrix");
    let sub_chan = retry(r, &mut subscriber, &schema, "matrix");
    let mut subscribed = subscriber.subscribe(sub_chan, &schema, None).is_ok();
    for _ in 0..20 {
        if subscribed {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
        subscribed = subscriber.subscribe(sub_chan, &schema, None).is_ok();
    }
    assert!(subscribed, "seed {seed}: subscription never stuck");

    // The storm. Publish errors that are not outages (e.g. a remote
    // E_PROTOCOL for a frame the fault plan garbled) are tolerated —
    // they are exactly the "counted protocol error" arm of the property.
    // Big enough that each direction of each session moves well past the
    // largest fault offset a plan can hold (128 KiB), so corruption and
    // disconnect ops inside the plans actually fire.
    const STORM: i64 = 5_000;
    let mut publish_errors = 0u64;
    for seq in 0..STORM {
        if publisher.publish_value(chan, format, &tick(seq)).is_err() {
            publish_errors += 1;
        }
    }

    // Collect until quiet. Poll errors (corrupt announce, remote error)
    // are counted and polling continues — never fatal, never wrong data.
    let mut seen: Vec<i64> = Vec::new();
    let mut poll_errors = 0u64;
    let mut quiet = 0u32;
    let deadline = Instant::now() + Duration::from_secs(30);
    while quiet < 8 && Instant::now() < deadline {
        match subscriber.poll(Duration::from_millis(125)) {
            Ok(Some(ev)) => {
                quiet = 0;
                let Some(Value::I64(s)) = ev.view.get("seq") else {
                    panic!("seed {seed}: seq missing from delivered event")
                };
                let Some(Value::F64(t)) = ev.view.get("temp") else {
                    panic!("seed {seed}: temp missing from delivered event")
                };
                assert!(
                    (0..STORM).contains(&s),
                    "seed {seed}: delivered seq {s} was never published"
                );
                assert_eq!(
                    t,
                    s as f64 * 0.5,
                    "seed {seed}: delivered record differs from published bytes"
                );
                seen.push(s);
            }
            Ok(None) => quiet += 1,
            Err(_) => {
                poll_errors += 1;
                quiet += 1;
            }
        }
    }

    // Per-session ordering survives faults: replay is FIFO and direct
    // sends are FIFO, so the subscriber's view is strictly increasing.
    assert!(
        seen.windows(2).all(|w| w[0] < w[1]),
        "seed {seed}: delivered sequence reordered or duplicated"
    );

    let p = publisher.stats();
    let s = subscriber.stats();
    let d = daemon.stats();
    assert_eq!(
        p.publishes, STORM as u64,
        "every publish call is accounted, buffered or not"
    );
    assert_eq!(
        p.buffered,
        p.buffered_replayed + p.buffer_dropped + publisher.outage_backlog() as u64,
        "outage buffer accounting balances"
    );
    // Whatever the plan did — and some plans are pure latency (read
    // stalls), which is *supposed* to be invisible in the counters — it
    // landed in counters or in nothing, never in the data. Summarize for
    // the CI log so each matrix cell shows what its seed exercised.
    eprintln!(
        "seed {seed}: delivered {}/{STORM}, daemon rejected {} evicted {} resumed {}, \
         client reconnects {}+{} rejected {}+{}, errors {}+{}",
        seen.len(),
        d.frames_rejected,
        d.evicted_dead + d.evicted_stalled,
        d.resumes,
        p.reconnects,
        s.reconnects,
        p.frames_rejected,
        s.frames_rejected,
        publish_errors,
        poll_errors,
    );
    daemon.shutdown();
}
