//! Durable-channel suite: publish acks, `subscribe_from` replay with a
//! gapless handoff to live delivery, daemon kill/restart with exact
//! accounting (every event acked before the crash is delivered after
//! it), torn-tail crash recovery, and live store-fault recovery.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use pbio_net::fault::FaultPlan;
use pbio_serv::{
    ClientConfig, FlushPolicy, ServClient, ServConfig, ServDaemon, StoreConfig, TraceConfig,
};
use pbio_types::arch::ArchProfile;
use pbio_types::schema::{AtomType, FieldDecl, Schema};
use pbio_types::value::{RecordValue, Value};

/// A test-unique store directory under the system temp dir.
fn store_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("pbio-durable-{tag}-{}-{seq}", std::process::id()))
}

fn durable_config(dir: &Path) -> ServConfig {
    ServConfig {
        stats_interval: None,
        trace: TraceConfig {
            sample_mod: 0,
            publish_interval: None,
            sink_capacity: 16,
        },
        durability: Some(StoreConfig {
            flush: FlushPolicy::EveryBatch,
            ..StoreConfig::new(dir.to_path_buf())
        }),
        ..ServConfig::default()
    }
}

fn resume_client() -> ClientConfig {
    ClientConfig {
        resume: true,
        backoff_initial: Duration::from_millis(10),
        backoff_max: Duration::from_millis(200),
        ..ClientConfig::default()
    }
}

fn tick_schema() -> Schema {
    Schema::new(
        "tick",
        vec![
            FieldDecl::atom("seq", AtomType::I64),
            FieldDecl::atom("temp", AtomType::F64),
        ],
    )
    .unwrap()
}

fn tick(seq: i64) -> RecordValue {
    RecordValue::new()
        .with("seq", seq)
        .with("temp", seq as f64 * 0.5)
}

fn seq_of(ev: &pbio_serv::Event<'_>) -> i64 {
    let Some(Value::I64(s)) = ev.view.get("seq") else {
        panic!("seq missing from delivered event")
    };
    let Some(Value::F64(t)) = ev.view.get("temp") else {
        panic!("temp missing from delivered event")
    };
    assert_eq!(t, s as f64 * 0.5, "delivered record is self-consistent");
    s
}

/// Block until the publisher has seen acks for all `n` publishes.
fn await_acks(publisher: &mut ServClient, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while publisher.stats().publishes_acked < n {
        assert!(Instant::now() < deadline, "acks stalled at {}/{n}", {
            publisher.stats().publishes_acked
        });
        // Acks are consumed transparently by the poll loop.
        let _ = publisher.poll(Duration::from_millis(50)).unwrap();
    }
}

/// Happy path: events on a durable channel arrive stamped with
/// contiguous offsets, publishes are acked once on disk, and a *late*
/// subscriber reading from offset 0 receives the full history followed
/// gaplessly by live events.
#[test]
fn durable_channel_acks_replays_and_hands_off_gaplessly() {
    let dir = store_dir("handoff");
    let daemon = ServDaemon::bind_with("127.0.0.1:0", durable_config(&dir)).unwrap();
    let addr = daemon.local_addr();
    let schema = tick_schema();

    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    assert!(publisher.durable_negotiated());
    let format = publisher.register_format(&schema).unwrap();
    let chan = publisher.open_channel_durable("events").unwrap();

    // Live subscriber from the start: sees offsets stamped on the
    // ordinary subscription path too.
    let mut live = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let live_chan = live.open_channel("events").unwrap();
    live.subscribe(live_chan, &schema, None).unwrap();

    const HISTORY: i64 = 200;
    for seq in 0..HISTORY {
        publisher.publish_value(chan, format, &tick(seq)).unwrap();
    }
    await_acks(&mut publisher, HISTORY as u64);
    assert_eq!(
        publisher.last_durable_offset(chan),
        Some(HISTORY as u64 - 1),
        "ack carries the last durable offset"
    );

    // The live subscriber sees every event with its offset.
    let mut live_seen = 0i64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while live_seen < HISTORY && Instant::now() < deadline {
        if let Some(ev) = live.poll(Duration::from_millis(100)).unwrap() {
            assert_eq!(seq_of(&ev), live_seen);
            assert_eq!(ev.offset, Some(live_seen as u64), "offset rides the event");
            live_seen += 1;
        }
    }
    assert_eq!(live_seen, HISTORY, "live subscriber saw the full stream");

    // Late subscriber: full replay from 0, then live events, one gapless
    // contiguous sequence. Publish the live tail *while* replay streams.
    let mut late = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let late_chan = late.open_channel("events").unwrap();
    late.subscribe_from(late_chan, &schema, 0).unwrap();
    const TAIL: i64 = 100;
    for seq in HISTORY..HISTORY + TAIL {
        publisher.publish_value(chan, format, &tick(seq)).unwrap();
    }
    let mut next = 0i64;
    let deadline = Instant::now() + Duration::from_secs(20);
    while next < HISTORY + TAIL && Instant::now() < deadline {
        if let Some(ev) = late.poll(Duration::from_millis(100)).unwrap() {
            assert_eq!(
                seq_of(&ev),
                next,
                "replay → live handoff is gapless and duplicate-free"
            );
            assert_eq!(ev.offset, Some(next as u64));
            next += 1;
        }
    }
    assert_eq!(next, HISTORY + TAIL, "replay handed off to live delivery");
    assert_eq!(
        late.last_seen_offset(late_chan),
        Some((HISTORY + TAIL - 1) as u64)
    );

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tentpole acceptance: kill the daemon mid-storm, restart it over
/// the same store directory, and verify **every event acked before the
/// crash is delivered** to a `subscribe_from` reader after the restart —
/// exact accounting, zero silent loss.
#[test]
fn kill_and_restart_preserves_every_acked_event() {
    let dir = store_dir("restart");
    let daemon = ServDaemon::bind_with("127.0.0.1:0", durable_config(&dir)).unwrap();
    let addr = daemon.local_addr();
    let schema = tick_schema();

    let mut publisher =
        ServClient::connect_with(addr, &ArchProfile::X86_64, resume_client()).unwrap();
    let format = publisher.register_format(&schema).unwrap();
    let chan = publisher.open_channel_durable("storm").unwrap();

    const STORM: i64 = 500;
    for seq in 0..STORM {
        publisher.publish_value(chan, format, &tick(seq)).unwrap();
    }
    await_acks(&mut publisher, STORM as u64);
    let acked_through = publisher.last_durable_offset(chan).unwrap();
    assert_eq!(acked_through, STORM as u64 - 1);

    // Crash. (Graceful shutdown also syncs; the torn-tail variant below
    // simulates the un-synced case.)
    daemon.shutdown();

    // Restart over the same store directory, same port.
    let daemon2 = ServDaemon::bind_with(addr, durable_config(&dir)).unwrap();

    // A fresh subscriber replays everything that was ever acked.
    let mut reader = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let r_chan = reader.open_channel_durable("storm").unwrap();
    reader.subscribe_from(r_chan, &schema, 0).unwrap();
    let mut next = 0i64;
    let deadline = Instant::now() + Duration::from_secs(20);
    while next <= acked_through as i64 && Instant::now() < deadline {
        if let Some(ev) = reader.poll(Duration::from_millis(100)).unwrap() {
            assert_eq!(
                seq_of(&ev),
                next,
                "acked event lost or reordered by restart"
            );
            assert_eq!(ev.offset, Some(next as u64));
            next += 1;
        }
    }
    assert_eq!(
        next - 1,
        acked_through as i64,
        "every event acked before the crash was delivered after it"
    );

    // The publisher's socket died with the old daemon; poll until it
    // notices and resumes (publishes to an undetected-dead socket would
    // vanish into the kernel buffer).
    let deadline = Instant::now() + Duration::from_secs(15);
    while publisher.stats().reconnects == 0 && Instant::now() < deadline {
        let _ = publisher.poll(Duration::from_millis(50));
    }
    assert!(publisher.stats().reconnects >= 1, "publisher resumed");

    // New publishes continue the offset sequence past the recovered head.
    publisher.publish_value(chan, format, &tick(STORM)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut tail = None;
    while tail.is_none() && Instant::now() < deadline {
        if let Some(ev) = reader.poll(Duration::from_millis(100)).unwrap() {
            tail = Some((seq_of(&ev), ev.offset));
        }
    }
    let (tail_seq, tail_off) = tail.expect("post-restart publish flows to the replay reader");
    assert_eq!(tail_seq, STORM);
    assert_eq!(tail_off, Some(STORM as u64), "offsets continue, no reuse");

    daemon2.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash mid-write leaves a torn final record. Restarting must
/// truncate exactly the torn tail (counted), keep every intact record,
/// and never refuse to start.
#[test]
fn torn_final_record_is_truncated_and_counted_on_restart() {
    let dir = store_dir("torn");
    let daemon = ServDaemon::bind_with("127.0.0.1:0", durable_config(&dir)).unwrap();
    let addr = daemon.local_addr();
    let schema = tick_schema();

    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let format = publisher.register_format(&schema).unwrap();
    let chan = publisher.open_channel_durable("torn").unwrap();
    const N: i64 = 50;
    for seq in 0..N {
        publisher.publish_value(chan, format, &tick(seq)).unwrap();
    }
    await_acks(&mut publisher, N as u64);
    daemon.shutdown();

    // Simulate dying mid-append: a partial entry at the tail of the
    // active segment (a plausible header announcing more bytes than
    // follow).
    let seg = newest_segment(&dir);
    let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
    f.write_all(&[2u8]).unwrap(); // REC_EVENT kind
    f.write_all(&1000u32.to_be_bytes()).unwrap(); // length the crash never wrote
    f.write_all(&[0xAA; 7]).unwrap(); // a fragment of what should be 1008 bytes
    drop(f);

    let daemon2 = ServDaemon::bind_with(addr, durable_config(&dir)).unwrap();

    // Recovery runs when the channel log is first reopened — which
    // happens as soon as a client opens the durable channel.
    let mut reader = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let r_chan = reader.open_channel_durable("torn").unwrap();
    let metrics = daemon2.store().unwrap().metrics().clone();
    assert_eq!(metrics.torn_tails.get(), 1, "the torn tail was counted");
    assert!(metrics.truncated_bytes.get() >= 12, "and its bytes tallied");

    // All intact records replay; the torn one is gone without a trace.
    reader.subscribe_from(r_chan, &schema, 0).unwrap();
    let mut next = 0i64;
    let deadline = Instant::now() + Duration::from_secs(15);
    while next < N && Instant::now() < deadline {
        if let Some(ev) = reader.poll(Duration::from_millis(100)).unwrap() {
            assert_eq!(seq_of(&ev), next);
            next += 1;
        }
    }
    assert_eq!(next, N, "every intact record survived the torn tail");

    daemon2.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Live store-fault recovery: a short write injected into the segment
/// log *while the daemon is running* must not lose any event the daemon
/// acked — the store seals the damaged segment, re-appends the suffix,
/// and only then acks.
#[test]
fn injected_short_write_on_the_live_store_loses_nothing_acked() {
    let dir = store_dir("live-fault");
    let mut config = durable_config(&dir);
    // The CI fault matrix sets `PBIO_FAULT_SEED`; each seed tears the
    // stream at a different byte position, so the matrix walks distinct
    // torn-entry boundaries (mid-header, mid-payload, between entries).
    let seed: u64 = std::env::var("PBIO_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    if let Some(store) = &mut config.durability {
        // Tear the stream mid-record a few KiB in; the plan is one-shot,
        // so recovery faces a clean segment afterwards.
        let at = 2048 + (seed % 97) * 53;
        store.fault = Some(FaultPlan::new().short_write_on_flush(at, (seed % 17) as usize));
    }
    let daemon = ServDaemon::bind_with("127.0.0.1:0", config).unwrap();
    let addr = daemon.local_addr();
    let schema = tick_schema();

    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let format = publisher.register_format(&schema).unwrap();
    let chan = publisher.open_channel_durable("frail").unwrap();
    const N: i64 = 400;
    for seq in 0..N {
        publisher.publish_value(chan, format, &tick(seq)).unwrap();
    }
    await_acks(&mut publisher, N as u64);
    let metrics = daemon.store().unwrap().metrics().clone();
    assert!(
        metrics.torn_tails.get() >= 1,
        "the injected fault actually fired and was recovered live"
    );

    // Everything acked replays, in order, despite the mid-run tear.
    let mut reader = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let r_chan = reader.open_channel_durable("frail").unwrap();
    reader.subscribe_from(r_chan, &schema, 0).unwrap();
    let mut next = 0i64;
    let deadline = Instant::now() + Duration::from_secs(20);
    while next < N && Instant::now() < deadline {
        if let Some(ev) = reader.poll(Duration::from_millis(100)).unwrap() {
            assert_eq!(seq_of(&ev), next, "acked event lost to the live fault");
            next += 1;
        }
    }
    assert_eq!(next, N, "all acked events recovered after the live tear");

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reconnect-resume over a durable channel is lossless: after the daemon
/// restarts, a resuming `subscribe_from` client continues from the last
/// offset it saw — the outage gap is replayed from the log, nothing is
/// duplicated.
#[test]
fn resume_over_durable_channel_replays_the_outage_gap() {
    let dir = store_dir("resume");
    let daemon = ServDaemon::bind_with("127.0.0.1:0", durable_config(&dir)).unwrap();
    let addr = daemon.local_addr();
    let schema = tick_schema();

    let mut publisher =
        ServClient::connect_with(addr, &ArchProfile::X86_64, resume_client()).unwrap();
    let format = publisher.register_format(&schema).unwrap();
    let chan = publisher.open_channel_durable("gap").unwrap();

    let mut reader = ServClient::connect_with(addr, &ArchProfile::X86_64, resume_client()).unwrap();
    let r_chan = reader.open_channel_durable("gap").unwrap();
    reader.subscribe_from(r_chan, &schema, 0).unwrap();

    const FIRST: i64 = 100;
    for seq in 0..FIRST {
        publisher.publish_value(chan, format, &tick(seq)).unwrap();
    }
    let mut next = 0i64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while next < FIRST && Instant::now() < deadline {
        if let Some(ev) = reader.poll(Duration::from_millis(100)).unwrap() {
            assert_eq!(seq_of(&ev), next);
            next += 1;
        }
    }
    assert_eq!(next, FIRST);

    // Daemon dies; restart over the same store. The publisher's next
    // publishes buffer through the outage; the reader's poll loop drives
    // its own resume, replaying `subscribe_from` from the last offset.
    daemon.shutdown();
    let daemon2 = ServDaemon::bind_with(addr, durable_config(&dir)).unwrap();

    const SECOND: i64 = 100;
    // The publisher hasn't *noticed* the outage yet (a write to a
    // freshly-dead socket can vanish into the kernel buffer without an
    // error) — poll until it has actually reconnected before publishing.
    let deadline = Instant::now() + Duration::from_secs(15);
    while publisher.stats().reconnects == 0 && Instant::now() < deadline {
        let _ = publisher.poll(Duration::from_millis(50));
    }
    assert!(publisher.stats().reconnects >= 1, "publisher resumed");
    for seq in FIRST..FIRST + SECOND {
        publisher.publish_value(chan, format, &tick(seq)).unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(20);
    while next < FIRST + SECOND && Instant::now() < deadline {
        if let Ok(Some(ev)) = reader.poll(Duration::from_millis(100)) {
            assert_eq!(
                seq_of(&ev),
                next,
                "resume lost or duplicated events across the restart"
            );
            next += 1;
        }
    }
    assert_eq!(next, FIRST + SECOND, "the outage gap was replayed exactly");
    assert!(
        reader.stats().reconnects >= 1,
        "the reader actually resumed"
    );

    daemon2.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Consumer-lag watermarks during historical replay: a
/// `subscribe_from(0)` reader over 4000 events of history shows a
/// visibly nonzero lag while the replay is wedged against its bounded
/// queue, and the watermark converges to exactly 0 once the reader
/// drains and replay hands off to live delivery.
#[test]
fn subscribe_from_replay_surfaces_then_clears_consumer_lag() {
    const EVENTS: u64 = 4_000;
    let dir = store_dir("lag");
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            // A small queue wedges the replay stream until the reader
            // polls, freezing a mid-replay watermark for inspection.
            queue_capacity: 32,
            ..durable_config(&dir)
        },
    )
    .unwrap();
    let addr = daemon.local_addr();
    let schema = tick_schema();

    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let format = publisher.register_format(&schema).unwrap();
    let chan = publisher.open_channel_durable("lagged").unwrap();
    for seq in 0..EVENTS {
        publisher
            .publish_value(chan, format, &tick(seq as i64))
            .unwrap();
    }
    await_acks(&mut publisher, EVENTS);

    // Replay from 0 without polling: the lag entry is seeded at the
    // requested offset, so the watermark is immediately the full
    // backlog, shrinking only as far as the wedged queue allows.
    let mut reader = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let r_chan = reader.open_channel("lagged").unwrap();
    reader.subscribe_from(r_chan, &schema, 0).unwrap();
    let topo = daemon.topology();
    let row = topo
        .lags
        .iter()
        .find(|l| l.chan == r_chan && l.conn == reader.conn_id())
        .expect("replay-in-progress consumer has a watermark");
    assert_eq!(row.head, EVENTS);
    assert!(
        row.delivered < EVENTS && row.lag() > 0,
        "mid-replay watermark is visibly behind: {row:?}"
    );

    // Drain; replay hands off to live delivery and the watermark
    // converges to exactly 0.
    let mut got = 0u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    while got < EVENTS && Instant::now() < deadline {
        if reader.poll(Duration::from_millis(100)).unwrap().is_some() {
            got += 1;
        }
    }
    assert_eq!(got, EVENTS, "replay delivered the full history");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let topo = daemon.topology();
        let row = topo
            .lags
            .iter()
            .find(|l| l.chan == r_chan && l.conn == reader.conn_id())
            .expect("watermark persists while the reader is connected");
        if row.delivered == EVENTS && row.head == EVENTS {
            assert_eq!(row.lag(), 0, "lag converged to exactly 0");
            break;
        }
        assert!(Instant::now() < deadline, "lag never converged: {row:?}");
        std::thread::sleep(Duration::from_millis(20));
    }

    publisher.disconnect().unwrap();
    reader.disconnect().unwrap();
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The newest segment file anywhere under the store directory.
fn newest_segment(dir: &Path) -> PathBuf {
    let mut segs = Vec::new();
    for chan in std::fs::read_dir(dir).unwrap() {
        let chan = chan.unwrap().path();
        if chan.is_dir() {
            for f in std::fs::read_dir(&chan).unwrap() {
                let f = f.unwrap().path();
                if f.extension().is_some_and(|e| e == "pbio") {
                    segs.push(f);
                }
            }
        }
    }
    segs.sort();
    segs.pop().expect("store has at least one segment")
}

/// `ServConfig::max_replay` bounds concurrent replay threads. While the
/// single allowed replay is wedged against a subscriber that is not
/// draining (20MB of history cannot fit in its queue plus socket
/// buffers), a second `subscribe_from` must be refused with the typed
/// `E_BUSY` error — and once the first drains and its slot frees, a
/// retry succeeds and delivers the full history.
#[test]
fn replay_concurrency_limit_returns_typed_busy_error() {
    use pbio_bench::workloads::{workload, MsgSize};
    use pbio_types::layout::Layout;
    use pbio_types::value::encode_native;

    const EVENTS: u64 = 2_000;
    let dir = store_dir("busy");
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            max_replay: 1,
            // A small queue makes replay pace itself in small chunks
            // (but still ≥ the 16-frame chunk floor, so pacing — not
            // drop-oldest — is what bounds it), and wedge, slot held,
            // against a non-draining subscriber.
            queue_capacity: 32,
            ..durable_config(&dir)
        },
    )
    .unwrap();
    let addr = daemon.local_addr();

    // 2000 × 10KB of durable history: far more than any loopback socket
    // buffering, so a replay cannot complete unless its reader drains.
    let w = workload(MsgSize::K10);
    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let fmt = publisher.register_format(&w.schema).unwrap();
    let chan = publisher.open_channel_durable("history").unwrap();
    let layout = Layout::of(&w.schema, &ArchProfile::X86_64).unwrap();
    let native = encode_native(&w.value, &layout).unwrap();
    for _ in 0..EVENTS {
        publisher.publish(chan, fmt, &native).unwrap();
    }
    await_acks(&mut publisher, EVENTS);

    // First reader claims the only replay slot and then sits on it by
    // not polling.
    let mut wedged = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let w_chan = wedged.open_channel("history").unwrap();
    wedged.subscribe_from(w_chan, &w.schema, 0).unwrap();

    // Second reader: the limit is enforced as a typed, retryable error.
    let mut refused = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let r_chan = refused.open_channel("history").unwrap();
    let err = refused.subscribe_from(r_chan, &w.schema, 0).unwrap_err();
    assert!(
        matches!(
            err,
            pbio_serv::ServError::Remote { code, .. }
                if code == pbio_serv::protocol::E_BUSY
        ),
        "expected E_BUSY, got: {err}"
    );

    // The wedged reader drains; its replay finishes and frees the slot.
    let mut got = 0u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    while got < EVENTS && Instant::now() < deadline {
        if wedged.poll(Duration::from_millis(100)).unwrap().is_some() {
            got += 1;
        }
    }
    assert_eq!(got, EVENTS, "first replay delivers the full history");

    // Retry until the slot frees (the thread exits shortly after the
    // last frame is queued), then the refused reader gets everything.
    let retry_deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match refused.subscribe_from(r_chan, &w.schema, 0) {
            Ok(()) => break,
            Err(e) => {
                assert!(
                    Instant::now() < retry_deadline,
                    "slot never freed, last error: {e}"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    let mut got = 0u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    while got < EVENTS && Instant::now() < deadline {
        if refused.poll(Duration::from_millis(100)).unwrap().is_some() {
            got += 1;
        }
    }
    assert_eq!(got, EVENTS, "retry after E_BUSY replays the full history");

    publisher.disconnect().unwrap();
    wedged.disconnect().unwrap();
    refused.disconnect().unwrap();
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
