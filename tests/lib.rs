//! Shared generators for the cross-crate integration and property tests.
//!
//! The central idea: generate *random record schemas* and *random record
//! values constrained to survive every representation in the test matrix*
//! (e.g. `long` values fit 4 bytes because some profiles are ILP32; `float`
//! values are exactly f32-representable). Then any path through the system
//! — native encode/decode, PBIO interpreted or DCG conversion, MPI
//! pack/unpack, CDR marshal/unmarshal, XML emit/parse — must reproduce the
//! original [`RecordValue`] exactly.

use proptest::prelude::*;

use pbio_types::schema::{AtomType, FieldDecl, Schema, TypeDesc};
use pbio_types::value::{RecordValue, Value};

/// All atoms the property tests exercise.
pub fn atom_strategy() -> impl Strategy<Value = AtomType> {
    prop_oneof![
        Just(AtomType::I8),
        Just(AtomType::I16),
        Just(AtomType::I32),
        Just(AtomType::I64),
        Just(AtomType::U8),
        Just(AtomType::U16),
        Just(AtomType::U32),
        Just(AtomType::U64),
        Just(AtomType::F32),
        Just(AtomType::F64),
        Just(AtomType::Char),
        Just(AtomType::Bool),
        Just(AtomType::CShort),
        Just(AtomType::CUShort),
        Just(AtomType::CInt),
        Just(AtomType::CUInt),
        Just(AtomType::CLong),
        Just(AtomType::CULong),
        Just(AtomType::CFloat),
        Just(AtomType::CDouble),
    ]
}

/// A field type: an atom, a small fixed array, or (at depth 0) a nested
/// record of atoms.
fn typedesc_strategy(allow_nested: bool) -> BoxedStrategy<TypeDesc> {
    let atom = atom_strategy().prop_map(TypeDesc::Atom);
    let array = (atom_strategy(), 1usize..6)
        .prop_map(|(a, n)| TypeDesc::Fixed(Box::new(TypeDesc::Atom(a)), n));
    if allow_nested {
        let nested = proptest::collection::vec(atom_strategy(), 1..4).prop_map(|atoms| {
            let fields = atoms
                .into_iter()
                .enumerate()
                .map(|(i, a)| FieldDecl::atom(format!("n{i}"), a))
                .collect();
            TypeDesc::Record(std::sync::Arc::new(
                Schema::new("nested", fields).expect("valid nested schema"),
            ))
        });
        prop_oneof![4 => atom, 2 => array, 1 => nested].boxed()
    } else {
        prop_oneof![4 => atom, 2 => array].boxed()
    }
}

/// A random fixed-layout schema (1..7 fields, unique names, optional
/// nesting, no variable-length parts — those are covered separately because
/// MPI/CDR restrict them differently).
pub fn schema_strategy() -> impl Strategy<Value = Schema> {
    proptest::collection::vec(typedesc_strategy(true), 1..7).prop_map(|types| {
        let fields = types
            .into_iter()
            .enumerate()
            .map(|(i, ty)| FieldDecl::new(format!("f{i}"), ty))
            .collect();
        Schema::new("prop_record", fields).expect("valid generated schema")
    })
}

/// A random schema that may also contain strings and var arrays (for the
/// formats that support them: PBIO, CDR, XML).
pub fn var_schema_strategy() -> impl Strategy<Value = Schema> {
    (
        proptest::collection::vec(typedesc_strategy(false), 1..5),
        proptest::bool::ANY,
        prop_oneof![
            Just(None),
            atom_strategy().prop_map(|a| Some(TypeDesc::Atom(a))),
            proptest::collection::vec(atom_strategy(), 1..3).prop_map(|atoms| {
                let fields = atoms
                    .into_iter()
                    .enumerate()
                    .map(|(i, a)| FieldDecl::atom(format!("e{i}"), a))
                    .collect();
                Some(TypeDesc::Record(std::sync::Arc::new(
                    Schema::new("velem", fields).expect("valid var-element schema"),
                )))
            }),
        ],
    )
        .prop_map(|(types, with_string, var_elem)| {
            let mut fields: Vec<FieldDecl> = types
                .into_iter()
                .enumerate()
                .map(|(i, ty)| FieldDecl::new(format!("f{i}"), ty))
                .collect();
            if let Some(elem) = var_elem {
                fields.insert(0, FieldDecl::atom("vlen", AtomType::CInt));
                fields.push(FieldDecl::new(
                    "vdata",
                    TypeDesc::Var(Box::new(elem), "vlen".into()),
                ));
            }
            if with_string {
                fields.push(FieldDecl::new("label", TypeDesc::String));
            }
            Schema::new("prop_var_record", fields).expect("valid generated schema")
        })
}

/// Strategy for a value of one atom, constrained to survive every profile
/// and wire format in the matrix.
fn atom_value_strategy(atom: AtomType) -> BoxedStrategy<Value> {
    match atom {
        AtomType::I8 => (i8::MIN..=i8::MAX)
            .prop_map(|v| Value::I64(v as i64))
            .boxed(),
        AtomType::I16 | AtomType::CShort => (i16::MIN..=i16::MAX)
            .prop_map(|v| Value::I64(v as i64))
            .boxed(),
        // CLong is 4 bytes on ILP32 profiles: stay within i32.
        AtomType::I32 | AtomType::CInt | AtomType::CLong | AtomType::I64 => (i32::MIN..=i32::MAX)
            .prop_map(|v| Value::I64(v as i64))
            .boxed(),
        AtomType::U8 => (0u8..=u8::MAX).prop_map(|v| Value::U64(v as u64)).boxed(),
        AtomType::U16 | AtomType::CUShort => {
            (0u16..=u16::MAX).prop_map(|v| Value::U64(v as u64)).boxed()
        }
        AtomType::U32 | AtomType::CUInt | AtomType::CULong | AtomType::U64 => {
            (0u32..=u32::MAX).prop_map(|v| Value::U64(v as u64)).boxed()
        }
        // f32-exact values so float width narrowing is lossless.
        AtomType::F32 | AtomType::CFloat => (-1.0e6f32..1.0e6)
            .prop_map(|v| Value::F64(v as f64))
            .boxed(),
        AtomType::F64 | AtomType::CDouble => (-1.0e9f64..1.0e9).prop_map(Value::F64).boxed(),
        AtomType::Char => (0x20u8..0x7F).prop_map(Value::Char).boxed(),
        AtomType::Bool => proptest::bool::ANY.prop_map(Value::Bool).boxed(),
    }
}

fn type_value_strategy(ty: &TypeDesc) -> BoxedStrategy<Value> {
    match ty {
        TypeDesc::Atom(a) => atom_value_strategy(*a),
        TypeDesc::Fixed(inner, n) => proptest::collection::vec(type_value_strategy(inner), *n..=*n)
            .prop_map(Value::Array)
            .boxed(),
        TypeDesc::Var(inner, _) => proptest::collection::vec(type_value_strategy(inner), 0..5)
            .prop_map(Value::Array)
            .boxed(),
        TypeDesc::String => "[ -~]{0,24}".prop_map(Value::Str).boxed(),
        TypeDesc::Record(sub) => record_value_strategy_schema(sub.clone())
            .prop_map(Value::Record)
            .boxed(),
    }
}

fn record_value_strategy_schema(schema: std::sync::Arc<Schema>) -> BoxedStrategy<RecordValue> {
    let strategies: Vec<(String, BoxedStrategy<Value>)> = schema
        .fields()
        .iter()
        .map(|f| (f.name.clone(), type_value_strategy(&f.ty)))
        .collect();
    let names: Vec<String> = strategies.iter().map(|(n, _)| n.clone()).collect();
    strategies
        .into_iter()
        .map(|(_, s)| s)
        .collect::<Vec<_>>()
        .prop_map(move |values| {
            let mut rv = RecordValue::new();
            for (n, v) in names.iter().zip(values) {
                rv.set(n.clone(), v);
            }
            rv
        })
        .boxed()
}

/// A random value matching `schema`, with var-array length fields fixed up
/// to match their arrays.
pub fn value_strategy(schema: &Schema) -> BoxedStrategy<RecordValue> {
    let schema = std::sync::Arc::new(schema.clone());
    let fixup = schema.clone();
    record_value_strategy_schema(schema)
        .prop_map(move |mut rv| {
            // Fix up var-array length fields to match the generated arrays.
            for f in fixup.fields() {
                if let TypeDesc::Var(_, len_field) = &f.ty {
                    let n = rv
                        .get(&f.name)
                        .and_then(|v| v.as_array())
                        .map_or(0, |a| a.len());
                    rv.set(len_field.clone(), Value::I64(n as i64));
                }
            }
            rv
        })
        .boxed()
}

/// (schema, value) pairs for fixed-layout records.
pub fn schema_and_value() -> impl Strategy<Value = (Schema, RecordValue)> {
    schema_strategy().prop_flat_map(|schema| {
        let vs = value_strategy(&schema);
        (Just(schema), vs)
    })
}

/// (schema, value) pairs that may include variable-length fields.
pub fn var_schema_and_value() -> impl Strategy<Value = (Schema, RecordValue)> {
    var_schema_strategy().prop_flat_map(|schema| {
        let vs = value_strategy(&schema);
        (Just(schema), vs)
    })
}

/// A strategy picking any built-in architecture profile.
pub fn profile_strategy() -> impl Strategy<Value = &'static pbio_types::ArchProfile> {
    (0..pbio_types::ArchProfile::all().len()).prop_map(|i| &pbio_types::ArchProfile::all()[i])
}
