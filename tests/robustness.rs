//! Adversarial-input robustness: nothing in the receive path may panic on
//! arbitrary bytes — malformed wire data must surface as errors.
//!
//! A wire-format library's parsers sit directly on the network; "a
//! malformed message crashed the simulation's monitor" is precisely the
//! kind of failure a production release cannot have. These property tests
//! throw random bytes (and structured-then-mutilated bytes) at every
//! decoder in the workspace.

use proptest::prelude::*;

use pbio::message::{parse_message, MessageIter};
use pbio::Reader;
use pbio_integration::{profile_strategy, var_schema_and_value};
use pbio_types::layout::Layout;
use pbio_types::meta::{deserialize_layout, serialize_layout};
use pbio_types::value::encode_native;
use pbio_types::ArchProfile;
use pbio_xml::{Parser, XmlDecoder, XmlHandler};

struct NullHandler;

impl XmlHandler for NullHandler {
    fn start_element(&mut self, _: &str, _: &[(String, String)]) -> Result<(), pbio_xml::XmlError> {
        Ok(())
    }
    fn end_element(&mut self, _: &str) -> Result<(), pbio_xml::XmlError> {
        Ok(())
    }
    fn characters(&mut self, _: &str) -> Result<(), pbio_xml::XmlError> {
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The message framer accepts or rejects arbitrary bytes without panic.
    #[test]
    fn message_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = parse_message(&bytes);
        for msg in MessageIter::new(&bytes) {
            let _ = msg;
        }
    }

    /// The metadata deserializer survives arbitrary bytes.
    #[test]
    fn meta_deserializer_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = deserialize_layout(&bytes);
    }

    /// ...including *mutated valid* metadata, which exercises the deep
    /// parsing paths that pure noise never reaches.
    #[test]
    fn mutated_meta_never_panics(
        (schema, _) in var_schema_and_value(),
        p in profile_strategy(),
        idx_ppm in 0u32..1_000_000,
        byte in any::<u8>(),
    ) {
        let layout = Layout::of(&schema, p).unwrap();
        let mut bytes = serialize_layout(&layout);
        let idx = (bytes.len() as u64 * idx_ppm as u64 / 1_000_000) as usize;
        prop_assume!(idx < bytes.len());
        bytes[idx] = byte;
        let _ = deserialize_layout(&bytes);
    }

    /// The XML parser survives arbitrary strings.
    #[test]
    fn xml_parser_never_panics(s in "\\PC*") {
        let _ = Parser::parse(&s, &mut NullHandler);
    }

    /// The XML decoder survives arbitrary well-formed-ish documents.
    #[test]
    fn xml_decoder_never_panics(body in "[a-z<>/&#;0-9 .\\-]{0,200}") {
        let doc = format!("<r>{body}</r>");
        let layout = Layout::of(
            &pbio_types::schema::Schema::new(
                "r",
                vec![pbio_types::schema::FieldDecl::atom(
                    "a",
                    pbio_types::schema::AtomType::CInt,
                )],
            )
            .unwrap(),
            &ArchProfile::X86,
        )
        .unwrap();
        let _ = XmlDecoder::new(&layout).decode(&doc);
    }

    /// A PBIO reader fed arbitrary bytes errors out or waits for more input
    /// — never panics, never fabricates records from noise when no format
    /// was registered.
    #[test]
    fn reader_never_panics_on_noise(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        p in profile_strategy(),
    ) {
        let mut reader = Reader::new(p);
        let _ = reader.process(&bytes, |_| {});
    }

    /// A reader fed a *valid stream with one mutated byte* errors or
    /// delivers (possibly wrong) data — never panics. This covers the
    /// deep conversion paths driven by attacker-controlled metadata.
    #[test]
    fn reader_never_panics_on_mutated_stream(
        (schema, value) in var_schema_and_value(),
        sp in profile_strategy(),
        dp in profile_strategy(),
        idx_ppm in 0u32..1_000_000,
        byte in any::<u8>(),
    ) {
        let mut writer = pbio::Writer::new(sp);
        let fmt = writer.register(&schema).unwrap();
        let native = encode_native(&value, writer.layout(fmt).unwrap()).unwrap();
        let mut stream = Vec::new();
        writer.write(fmt, &native, &mut stream).unwrap();
        let idx = (stream.len() as u64 * idx_ppm as u64 / 1_000_000) as usize;
        prop_assume!(idx < stream.len());
        stream[idx] = byte;

        let mut reader = Reader::new(dp);
        reader.expect(&schema).unwrap();
        let _ = reader.process(&stream, |view| {
            // Reads through the view must also be panic-free.
            for f in view.layout().fields().to_vec() {
                let _ = view.get(&f.name);
            }
            let _ = view.to_value();
        });
    }
}
