//! Observability integration: the `$stats` channel end to end, one-shot
//! `STATS` pulls, cross-architecture decoding of stats records through the
//! real conversion machinery, client/daemon stats parity, and the
//! protocol-robustness guarantee that an unknown frame kind draws an
//! `ERROR` reply without killing the session.

use std::collections::HashSet;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pbio::Reader;
use pbio_net::frame::{read_frame, write_frame_raw};
use pbio_obs::export::{
    snapshot_from_value, stats_schema, stats_value, StatsHeader, ROLE_CLIENT, ROLE_DAEMON,
};
use pbio_obs::Registry;
use pbio_serv::protocol::{
    E_PROTOCOL, K_CHANNEL, K_CHANNEL_ACK, K_ERROR, K_HELLO, K_HELLO_ACK, PROTOCOL_VERSION,
};
use pbio_serv::{
    FlushPolicy, ServClient, ServConfig, ServDaemon, StoreConfig, TraceConfig, STATS_CHANNEL,
};
use pbio_types::arch::ArchProfile;
use pbio_types::layout::Layout;
use pbio_types::meta::serialize_layout;
use pbio_types::schema::{AtomType, FieldDecl, Schema};
use pbio_types::value::{decode_native, encode_native, RecordValue};

fn tick_schema() -> Schema {
    Schema::new(
        "tick",
        vec![
            FieldDecl::atom("seq", AtomType::CInt),
            FieldDecl::atom("level", AtomType::CDouble),
        ],
    )
    .unwrap()
}

fn tick(seq: i32) -> RecordValue {
    RecordValue::new().with("seq", seq).with("level", 0.5f64)
}

/// An unknown frame kind must draw `ERROR(E_PROTOCOL)` and leave the
/// session fully functional — spoken raw so the bogus frame is under the
/// test's control rather than a client library's.
#[test]
fn unknown_frame_kind_gets_error_and_keeps_the_session() {
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            queue_capacity: 8,
            stats_interval: None,
            trace: TraceConfig::default(),
            ..ServConfig::default()
        },
    )
    .unwrap();
    let mut stream = TcpStream::connect(daemon.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    write_frame_raw(
        &mut stream,
        K_HELLO,
        PROTOCOL_VERSION,
        0,
        ArchProfile::X86_64.name.as_bytes(),
    )
    .unwrap();
    let ack = read_frame(&mut stream).unwrap();
    assert_eq!(ack.kind, K_HELLO_ACK);

    // A frame kind the protocol never assigned.
    write_frame_raw(&mut stream, 0x6E, 1, 2, b"junk").unwrap();
    let err = read_frame(&mut stream).unwrap();
    assert_eq!(err.kind, K_ERROR);
    assert_eq!(err.a, E_PROTOCOL);
    assert!(
        String::from_utf8_lossy(&err.body).contains("0x6e"),
        "error names the offending kind"
    );

    // The session is still alive: a valid request round-trips.
    write_frame_raw(&mut stream, K_CHANNEL, 7, 0, b"survivor").unwrap();
    let ack = read_frame(&mut stream).unwrap();
    assert_eq!(ack.kind, K_CHANNEL_ACK);
    assert_eq!(ack.a, 7);
    daemon.shutdown();
}

/// Daemon snapshots arrive on `$stats` as PBIO records at both a
/// homogeneous and a big-endian subscriber, carry the daemon's live
/// counters, and sit alongside client-published snapshots on the same
/// channel.
#[test]
fn stats_channel_feeds_homogeneous_and_heterogeneous_subscribers() {
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            queue_capacity: 256,
            stats_interval: Some(Duration::from_millis(100)),
            trace: TraceConfig::default(),
            ..ServConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();

    // Traffic for the daemon to account: a publisher on its own channel,
    // which also publishes its *own* registry snapshot on `$stats`.
    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let schema = tick_schema();
    let format = publisher.register_format(&schema).unwrap();
    let chan = publisher.open_channel("ticks").unwrap();
    let stats_chan = publisher.open_channel(STATS_CHANNEL).unwrap();
    for seq in 0..5 {
        publisher.publish_value(chan, format, &tick(seq)).unwrap();
    }
    publisher.publish_stats(stats_chan).unwrap();

    for profile in [&ArchProfile::X86_64, &ArchProfile::SPARC_V8] {
        let mut sub = ServClient::connect(addr, profile).unwrap();
        let stats_chan = sub.open_channel(STATS_CHANNEL).unwrap();
        sub.subscribe_raw(stats_chan, None).unwrap();

        let deadline = Instant::now() + Duration::from_secs(10);
        let mut daemon_snap = None;
        let mut client_snap = None;
        while (daemon_snap.is_none() || client_snap.is_none()) && Instant::now() < deadline {
            // Client snapshots predate this subscription; re-publishing
            // each round keeps one in flight.
            publisher.publish_stats(stats_chan).unwrap();
            let Some(ev) = sub.poll_raw(Duration::from_millis(200)).unwrap() else {
                continue;
            };
            let value = decode_native(ev.bytes, &ev.layout).unwrap();
            let (header, snap) = snapshot_from_value(&value).unwrap();
            match header.role {
                ROLE_DAEMON => daemon_snap = Some(snap),
                ROLE_CLIENT => client_snap = Some((header, snap)),
                other => panic!("unknown stats role {other}"),
            }
        }

        let daemon_snap = daemon_snap.expect("daemon snapshot arrived");
        assert!(daemon_snap.counter("serv_events_in").unwrap() >= 5);
        assert!(daemon_snap.counter("serv_bytes_in").unwrap() > 0);
        assert!(daemon_snap.counter("serv_bytes_out").unwrap() > 0);
        assert!(daemon_snap.histogram("serv_recv_ns").unwrap().count > 0);
        // Module-level metrics ride along via the global registry merge.
        assert!(daemon_snap.counter("net_bytes_in").is_some());
        // Per-shard reactor accounting flows over `$stats` too, labeled
        // by shard index (names arrive field-sanitized); shard 0 must
        // have woken at least once to serve this very subscriber.
        assert!(
            daemon_snap
                .counter("serv_shard_wakeups_shard__0__")
                .unwrap()
                > 0
        );
        assert!(daemon_snap
            .histogram("serv_shard_frames_per_wakeup_shard__0__")
            .is_some());

        let (header, client_snap) = client_snap.expect("client snapshot arrived");
        assert_eq!(header.id, publisher.conn_id());
        assert!(client_snap.histogram("client_encode_ns").unwrap().count > 0);
        assert!(client_snap.counter("client_bytes_out").unwrap() > 0);
    }
    daemon.shutdown();
}

/// `pull_stats` round-trips a one-shot snapshot over the `STATS` frame,
/// announced and decoded like any other record.
#[test]
fn pull_stats_returns_the_daemon_books() {
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            queue_capacity: 8,
            stats_interval: None,
            trace: TraceConfig::default(),
            ..ServConfig::default()
        },
    )
    .unwrap();
    let mut client = ServClient::connect(daemon.local_addr(), &ArchProfile::SPARC_V8).unwrap();
    let schema = tick_schema();
    let format = client.register_format(&schema).unwrap();
    let chan = client.open_channel("ticks").unwrap();
    for seq in 0..3 {
        client.publish_value(chan, format, &tick(seq)).unwrap();
    }

    let (header, snap) = client.pull_stats().unwrap();
    assert_eq!(header.role, ROLE_DAEMON);
    // The daemon may not have drained all three publishes yet, but the
    // pull itself is ordered behind them on this connection.
    assert_eq!(snap.counter("serv_events_in"), Some(3));
    assert_eq!(snap.gauge("serv_active_connections"), Some(1));
    assert!(snap.counter("pool_hits").is_some());

    // A second pull reuses the announced format and moves forward.
    let (header2, snap2) = client.pull_stats().unwrap();
    assert!(header2.seq > header.seq);
    assert!(snap2.counter("serv_bytes_in").unwrap() >= snap.counter("serv_bytes_in").unwrap());
    client.disconnect().unwrap();
    daemon.shutdown();
}

/// A stats record encoded on a big-endian ILP32 architecture survives the
/// *real* receive path of a little-endian reader — `Reader::expect` +
/// announced wire format + DCG conversion — field for field.
#[test]
fn stats_snapshot_converts_across_architectures() {
    let reg = Registry::new();
    reg.counter("events_in").add(1234);
    reg.gauge("depth").set(-7);
    let h = reg.histogram("encode_ns");
    h.record(0);
    h.record(900);
    h.record(1 << 20);
    let snap = reg.snapshot();
    let header = StatsHeader {
        role: ROLE_CLIENT,
        id: 42,
        seq: 3,
        t_ns: 999_999,
        snapshot_ns: 999_999,
    };

    let schema = stats_schema(&snap);
    let value = stats_value(&header, &snap);
    let sparc_layout = Layout::of(&schema, &ArchProfile::SPARC_V8).unwrap();
    let wire = encode_native(&value, &sparc_layout).unwrap();

    let mut reader = Reader::new(&ArchProfile::X86_64);
    reader.expect(&schema).unwrap();
    reader
        .on_format(9, &serialize_layout(&Arc::new(sparc_layout)))
        .unwrap();
    assert!(!reader.is_zero_copy(9), "sparc -> x86-64 must convert");
    let view = reader.on_data(9, &wire).unwrap();
    let decoded = view.to_value().unwrap();

    let (header2, snap2) = snapshot_from_value(&decoded).unwrap();
    assert_eq!(header2, header);
    assert_eq!(snap2, snap);
}

/// Client-side books mirror the daemon's: byte counters both ways, pool
/// hit/miss parity, and the bounded pending queue's drop-oldest policy
/// surfacing in `ClientStats::dropped`.
#[test]
fn client_stats_track_bytes_pool_and_poll_overflow_drops() {
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            queue_capacity: 1024,
            stats_interval: None,
            trace: TraceConfig::default(),
            ..ServConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();
    let schema = tick_schema();

    let mut sub = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let chan = sub.open_channel("flood").unwrap();
    sub.subscribe(chan, &schema, None).unwrap();

    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let format = publisher.register_format(&schema).unwrap();
    let chan = publisher.open_channel("flood").unwrap();
    const FLOOD: usize = 400;
    for seq in 0..FLOOD {
        publisher
            .publish_value(chan, format, &tick(seq as i32))
            .unwrap();
    }
    // Sync barrier: this ack is processed by the daemon strictly after
    // every publish above, so all events sit in the subscriber's outbound
    // queue (and on the socket, ahead of any later reply to it).
    publisher.open_channel("sync").unwrap();

    // The subscriber now makes an acknowledged request; all FLOOD events
    // arrive before its ack and must be buffered — but only up to the
    // bounded budget, dropping oldest beyond it.
    sub.open_channel("extra").unwrap();
    let stats = sub.stats();
    assert!(
        stats.dropped > 0,
        "pending-queue overflow must drop events (got {stats:?})"
    );

    let mut received = 0;
    while sub.poll(Duration::from_millis(300)).unwrap().is_some() {
        received += 1;
    }
    let stats = sub.stats();
    assert_eq!(
        received as u64 + stats.dropped,
        FLOOD as u64,
        "every flooded event was either delivered or counted dropped"
    );
    assert_eq!(stats.events, received as u64);
    assert_eq!(stats.zero_copy_events, received as u64);
    assert!(stats.bytes_in > 0);
    assert!(stats.bytes_out > 0);
    assert!(stats.pool_hits > 0, "steady-state reads recycle the pool");

    // The registry view and the fixed-field view are the same books.
    let reg_snap = sub.registry().snapshot();
    assert_eq!(reg_snap.counter("client_events"), Some(stats.events));
    assert_eq!(reg_snap.counter("client_dropped"), Some(stats.dropped));
    assert_eq!(reg_snap.counter("pool_hits"), Some(stats.pool_hits));

    let pub_stats = publisher.stats();
    assert!(pub_stats.bytes_out > 0);
    let pub_reg = publisher.registry().snapshot();
    assert!(pub_reg.histogram("client_encode_ns").unwrap().count >= FLOOD as u64);
    daemon.shutdown();
}

/// Cross-shard traffic shows up in per-shard accounting twice over: the
/// topology snapshot's per-shard rows (each reactor's connection count
/// and wakeups) and the `$stats` registry's labeled metrics (names
/// arrive field-sanitized, one per shard index).
#[test]
fn per_shard_metrics_label_every_reactor() {
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            shards: 2,
            stats_interval: None,
            trace: TraceConfig::default(),
            ..ServConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();
    let schema = tick_schema();

    // Round-robin accept: these two land on different reactors, so the
    // publish below crosses shards on its way to the subscriber.
    let mut sub = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let chan = sub.open_channel("cross").unwrap();
    sub.subscribe(chan, &schema, None).unwrap();
    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let format = publisher.register_format(&schema).unwrap();
    let chan = publisher.open_channel("cross").unwrap();
    const EVENTS: i32 = 20;
    for seq in 0..EVENTS {
        publisher.publish_value(chan, format, &tick(seq)).unwrap();
    }
    let mut got = 0;
    let deadline = Instant::now() + Duration::from_secs(10);
    while got < EVENTS && Instant::now() < deadline {
        if sub.poll(Duration::from_millis(100)).unwrap().is_some() {
            got += 1;
        }
    }
    assert_eq!(got, EVENTS, "cross-shard events all arrived");

    // Topology view: both reactors exist, each owns one of the two
    // connections, and each has woken to serve its side of the traffic.
    let topo = daemon.topology();
    assert_eq!(topo.shards.len(), 2);
    assert_eq!(topo.shards.iter().map(|s| s.conns).sum::<i64>(), 2);
    for sh in &topo.shards {
        assert!(sh.wakeups > 0, "shard {} never woke", sh.shard);
    }
    let owners: HashSet<u32> = topo.conns.iter().map(|c| c.shard).collect();
    assert_eq!(owners.len(), 2, "connections spread across both shards");

    // The same accounting flows over `$stats` as labeled per-shard
    // metrics, one set per shard index.
    let (_, snap) = publisher.pull_stats().unwrap();
    for shard in 0..2 {
        assert!(
            snap.counter(&format!("serv_shard_wakeups_shard__{shard}__"))
                .unwrap()
                > 0
        );
        assert!(snap
            .gauge(&format!("serv_shard_conns_shard__{shard}__"))
            .is_some());
    }
    daemon.shutdown();
}

/// Consumer-lag watermarks on a durable channel: a subscriber's
/// delivered offset is tracked per (channel, connection) with publisher
/// and subscriber pinned to different reactor shards, converges to the
/// log head once the subscriber drains, is exported both in the
/// topology snapshot and as a labeled `serv_consumer_lag` gauge on
/// `$stats`, and disappears when the subscriber leaves.
#[test]
fn consumer_lag_watermarks_converge_across_shards() {
    let dir = std::env::temp_dir().join(format!("pbio-obs-lag-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            shards: 2,
            stats_interval: None,
            trace: TraceConfig::default(),
            durability: Some(StoreConfig {
                flush: FlushPolicy::EveryBatch,
                ..StoreConfig::new(dir.clone())
            }),
            ..ServConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();
    let schema = tick_schema();

    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let format = publisher.register_format(&schema).unwrap();
    let chan = publisher.open_channel_durable("lagged").unwrap();
    const HISTORY: u64 = 50;
    for seq in 0..HISTORY {
        publisher
            .publish_value(chan, format, &tick(seq as i32))
            .unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(15);
    while publisher.stats().publishes_acked < HISTORY && Instant::now() < deadline {
        let _ = publisher.poll(Duration::from_millis(50)).unwrap();
    }
    assert_eq!(publisher.stats().publishes_acked, HISTORY);

    // Live durable subscriber on the other shard: its watermark starts
    // at the head it joined at, then tracks the tail publishes.
    let mut sub = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let sub_chan = sub.open_channel("lagged").unwrap();
    sub.subscribe(sub_chan, &schema, None).unwrap();
    const TAIL: u64 = 30;
    for seq in HISTORY..HISTORY + TAIL {
        publisher
            .publish_value(chan, format, &tick(seq as i32))
            .unwrap();
    }
    let mut got = 0;
    let deadline = Instant::now() + Duration::from_secs(10);
    while got < TAIL && Instant::now() < deadline {
        if sub.poll(Duration::from_millis(100)).unwrap().is_some() {
            got += 1;
        }
    }
    assert_eq!(got, TAIL, "subscriber drained the tail");

    // The watermark converges to exactly the log head.
    let total = HISTORY + TAIL;
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let topo = daemon.topology();
        let row = topo
            .lags
            .iter()
            .find(|l| l.chan == sub_chan && l.conn == sub.conn_id());
        if let Some(row) = row {
            if row.head == total && row.delivered == total {
                assert_eq!(row.lag(), 0);
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "lag never converged: {:?}",
            daemon.topology().lags
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The same watermark rides `$stats` as a two-label gauge, keyed by
    // channel name and connection id (sanitized for the wire schema).
    let (_, snap) = publisher.pull_stats().unwrap();
    let gauge = format!("serv_consumer_lag_chan__lagged__conn__{}__", sub.conn_id());
    assert_eq!(snap.gauge(&gauge), Some(0), "exported lag gauge is 0");

    // Teardown drops the watermark with the connection.
    sub.disconnect().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !daemon.topology().lags.is_empty() {
        assert!(
            Instant::now() < deadline,
            "lag entries survived their subscriber"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
