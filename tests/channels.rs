//! Integration and property tests for the event-channel layer
//! (`pbio-chan`): compiled filters vs the interpreted reference, fan-out
//! correctness, and end-to-end flows combining channels with the shared
//! format server.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use pbio::{FormatServer, Reader, Writer};
use pbio_chan::{Channel, CmpOp, FilterProgram, Literal, Predicate};
use pbio_integration::profile_strategy;
use pbio_types::layout::Layout;
use pbio_types::schema::{AtomType, FieldDecl, Schema};
use pbio_types::value::{encode_native, RecordValue, Value};
use pbio_types::ArchProfile;

fn event_schema() -> Schema {
    Schema::new(
        "event",
        vec![
            FieldDecl::atom("seq", AtomType::CInt),
            FieldDecl::atom("level", AtomType::CUInt),
            FieldDecl::atom("temp", AtomType::CDouble),
            FieldDecl::atom("ratio", AtomType::CFloat),
            FieldDecl::atom("alarm", AtomType::Bool),
        ],
    )
    .unwrap()
}

fn field_strategy() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("seq"),
        Just("level"),
        Just("temp"),
        Just("ratio"),
        Just("alarm"),
    ]
}

fn op_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ]
}

fn literal_strategy(field: &str) -> BoxedStrategy<Literal> {
    match field {
        "alarm" => proptest::bool::ANY.prop_map(Literal::Bool).boxed(),
        "temp" | "ratio" => prop_oneof![
            (-100i64..100).prop_map(Literal::Int),
            (-100.0f64..100.0).prop_map(Literal::Float),
        ]
        .boxed(),
        _ => prop_oneof![
            (-100i64..100).prop_map(Literal::Int),
            (-100.0f64..100.0).prop_map(Literal::Float),
        ]
        .boxed(),
    }
}

fn leaf_strategy() -> impl Strategy<Value = Predicate> {
    (field_strategy(), op_strategy()).prop_flat_map(|(field, op)| {
        literal_strategy(field).prop_map(move |lit| Predicate::Cmp {
            field: field.to_owned(),
            op,
            value: lit,
        })
    })
}

fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    leaf_strategy().prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

fn record_strategy() -> impl Strategy<Value = RecordValue> {
    (
        -1000i32..1000,
        0u32..1000,
        -100.0f64..100.0,
        -100.0f32..100.0,
        proptest::bool::ANY,
    )
        .prop_map(|(seq, level, temp, ratio, alarm)| {
            RecordValue::new()
                .with("seq", seq)
                .with("level", level)
                .with("temp", temp)
                .with("ratio", ratio as f64)
                .with("alarm", alarm)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Compiled filter programs agree with the interpreted reference on
    /// every predicate, record and architecture. Skips the (documented)
    /// bool-vs-order type errors, which both evaluators must agree on too.
    #[test]
    fn compiled_filters_match_interpreter(
        pred in predicate_strategy(),
        rv in record_strategy(),
        p in profile_strategy(),
    ) {
        let layout = Arc::new(Layout::of(&event_schema(), p).unwrap());
        let bytes = encode_native(&rv, &layout).unwrap();
        match FilterProgram::compile(pred.clone(), layout.clone()) {
            Ok(prog) => {
                let compiled = prog.matches(&bytes).unwrap();
                let interpreted = prog.matches_interpreted(&bytes).unwrap();
                prop_assert_eq!(compiled, interpreted, "{:?}", pred);
            }
            Err(e) => {
                // If compilation rejects the predicate, interpretation must
                // reject it too (same type rules).
                let r = pbio_chan::filter::eval_interpreted(&pred, &layout, &bytes);
                prop_assert!(r.is_err(), "compile said {e:?}, interp said {r:?}");
            }
        }
    }

    /// Filters never panic on truncated records.
    #[test]
    fn filters_error_on_truncated_records(
        pred in leaf_strategy(),
        cut in 0usize..8,
        p in profile_strategy(),
    ) {
        let layout = Arc::new(Layout::of(&event_schema(), p).unwrap());
        if let Ok(prog) = FilterProgram::compile(pred, layout) {
            let _ = prog.matches(&vec![0u8; cut]);
        }
    }
}

/// Channel fan-out delivers each event to exactly the subscribers whose
/// filters accept it, converted correctly for each subscriber architecture.
#[test]
fn channel_delivery_matches_filter_semantics() {
    let schema = event_schema();
    let source = &ArchProfile::SPARC_V8;
    let mut chan = Channel::new(&schema, source).unwrap();
    let source_layout = chan.source_layout().clone();

    let preds = [
        Predicate::gt("temp", 25.0),
        Predicate::eq("alarm", true),
        Predicate::le("seq", 3).and(Predicate::ne("level", 0)),
    ];
    let logs: Vec<Arc<Mutex<Vec<i64>>>> = (0..preds.len())
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();
    let targets = [
        &ArchProfile::X86,
        &ArchProfile::X86_64,
        &ArchProfile::MIPS_64,
    ];
    for ((pred, log), target) in preds.iter().zip(&logs).zip(targets) {
        let log = log.clone();
        chan.subscribe(&schema, target, Some(pred.clone()), move |view| {
            log.lock()
                .unwrap()
                .push(view.get("seq").unwrap().as_i64().unwrap());
        })
        .unwrap();
    }

    let mut expected: Vec<Vec<i64>> = vec![Vec::new(); preds.len()];
    for seq in 0..20 {
        let rv = RecordValue::new()
            .with("seq", seq)
            .with("level", (seq % 3) as u32)
            .with("temp", 20.0 + seq as f64)
            .with("ratio", 0.5f64)
            .with("alarm", seq % 4 == 0);
        let bytes = encode_native(&rv, &source_layout).unwrap();
        for (i, pred) in preds.iter().enumerate() {
            if pbio_chan::filter::eval_interpreted(pred, &source_layout, &bytes).unwrap() {
                expected[i].push(seq as i64);
            }
        }
        chan.publish(&bytes).unwrap();
    }

    for (log, expect) in logs.iter().zip(&expected) {
        assert_eq!(&*log.lock().unwrap(), expect);
    }
}

/// A full pipeline: writers sharing a format server feed streams to readers
/// whose records are then republished on a channel.
#[test]
fn format_server_and_channel_pipeline() {
    let schema = event_schema();
    let server = FormatServer::new();

    // Two connections from the same (sparc) application.
    let mut conn_a = Writer::with_server(&ArchProfile::SPARC_V8, server.clone());
    let mut conn_b = Writer::with_server(&ArchProfile::SPARC_V8, server.clone());
    let fa = conn_a.register(&schema).unwrap();
    let fb = conn_b.register(&schema).unwrap();
    assert_eq!(fa, fb, "format server deduplicates across connections");

    let rv = RecordValue::new()
        .with("seq", 1i32)
        .with("level", 9u32)
        .with("temp", 42.0f64)
        .with("ratio", 0.25f64)
        .with("alarm", true);

    let mut stream_a = Vec::new();
    conn_a.write_value(fa, &rv, &mut stream_a).unwrap();
    let mut stream_b = Vec::new();
    conn_b.write_value(fb, &rv, &mut stream_b).unwrap();

    // An x86-64 relay reads both streams and republishes on a channel.
    let mut relay = Reader::new(&ArchProfile::X86_64);
    relay.expect(&schema).unwrap();
    let mut chan = Channel::new(&schema, &ArchProfile::X86_64).unwrap();
    let seen = Arc::new(Mutex::new(0usize));
    let seen2 = seen.clone();
    chan.subscribe(
        &schema,
        &ArchProfile::SPARC_V9_64,
        Some(Predicate::eq("alarm", true)),
        move |view| {
            assert_eq!(view.get("temp"), Some(Value::F64(42.0)));
            *seen2.lock().unwrap() += 1;
        },
    )
    .unwrap();

    let mut republished = Vec::new();
    for stream in [&stream_a, &stream_b] {
        relay
            .process(stream, |view| {
                republished.push(view.to_value().unwrap());
            })
            .unwrap();
    }
    for v in &republished {
        chan.publish_value(v).unwrap();
    }
    assert_eq!(*seen.lock().unwrap(), 2);
}
