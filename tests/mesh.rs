//! Daemon federation: sharded channels over a mesh of daemons.
//!
//! Exercises the four mesh guarantees end to end over loopback TCP:
//! byte-identical delivery across a relay hop, format-gossip
//! convergence for a late joiner, exactly-once delivery across a
//! partition + heal, and exact relay accounting when the peer daemon is
//! killed mid-stream (with the home daemon running a seeded fault plan,
//! like the CI fault matrix does).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use pbio_serv::{home_of, MeshConfig, ServClient, ServConfig, ServDaemon, TraceConfig};
use pbio_types::arch::ArchProfile;
use pbio_types::schema::{AtomType, FieldDecl, Schema};

fn ev_schema() -> Schema {
    Schema::new("mesh-ev", vec![FieldDecl::atom("seq", AtomType::U64)]).unwrap()
}

fn ev_bytes(seq: u64) -> [u8; 8] {
    // x86-64 native layout of the one-field record: little-endian u64.
    seq.to_le_bytes()
}

fn mesh_config(index: u32, size: u32) -> ServConfig {
    ServConfig {
        peers: Some(MeshConfig::new(index, size, Vec::new())),
        stats_interval: None,
        trace: TraceConfig {
            publish_interval: None,
            ..TraceConfig::default()
        },
        queue_capacity: 4096,
        ..ServConfig::default()
    }
}

/// Two daemons, indices 0 and 1, dialing each other. Ports are only
/// known after binding, so peers are wired with `connect_peer`.
fn mesh_pair() -> (ServDaemon, ServDaemon) {
    let d0 = ServDaemon::bind_with("127.0.0.1:0", mesh_config(0, 2)).unwrap();
    let d1 = ServDaemon::bind_with("127.0.0.1:0", mesh_config(1, 2)).unwrap();
    assert!(d0.connect_peer(1, d1.local_addr().to_string()));
    assert!(d1.connect_peer(0, d0.local_addr().to_string()));
    wait_for(
        || {
            let up = |d: &ServDaemon| d.peer_stats().iter().any(|p| p.connected);
            up(&d0) && up(&d1)
        },
        "both peer links to connect",
    );
    (d0, d1)
}

/// A channel name whose home is mesh index `home` in a mesh of `size`.
fn name_homed(home: u32, size: u32) -> String {
    (0..)
        .map(|i| format!("mesh-chan-{i}"))
        .find(|n| home_of(n, size) == home)
        .unwrap()
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}");
}

/// Drain raw events until every seq in `want` has been seen (plus a
/// short grace window to catch duplicates), returning seq → (bytes,
/// delivery count). Events outside `want` (e.g. probes) are recorded
/// but don't gate completion.
fn collect_seqs(
    client: &mut ServClient,
    want: std::ops::Range<u64>,
) -> HashMap<u64, (Vec<u8>, usize)> {
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut out: HashMap<u64, (Vec<u8>, usize)> = HashMap::new();
    let mut complete_at: Option<Instant> = None;
    loop {
        let now = Instant::now();
        if now >= deadline || complete_at.is_some_and(|t| now >= t) {
            break;
        }
        if let Some(ev) = client.poll_raw(Duration::from_millis(100)).unwrap() {
            let seq = u64::from_le_bytes(ev.bytes[..8].try_into().unwrap());
            let entry = out.entry(seq).or_insert_with(|| (ev.bytes.to_vec(), 0));
            entry.1 += 1;
        }
        if complete_at.is_none() && want.clone().all(|s| out.contains_key(&s)) {
            complete_at = Some(Instant::now() + Duration::from_millis(300));
        }
    }
    out
}

/// The publish travels d0 → (relay) → d1 (home fan-out) → (relay) → d0,
/// and what the relayed subscriber sees is byte-identical to both the
/// published record and what a home-local subscriber sees. `$topo` on
/// both daemons reports the peer links and the channel's home.
#[test]
fn relay_delivers_byte_identical_events() {
    let (d0, d1) = mesh_pair();
    let name = name_homed(1, 2);

    // Subscriber at d0: interest in a channel homed at d1 — served via
    // a relay subscription over the peer link.
    let mut relay_sub = ServClient::connect(d0.local_addr(), &ArchProfile::X86_64).unwrap();
    let chan0 = relay_sub.open_channel(&name).unwrap();
    relay_sub.subscribe_raw(chan0, None).unwrap();

    // Subscriber at d1: sees the home fan-out directly.
    let mut home_sub = ServClient::connect(d1.local_addr(), &ArchProfile::X86_64).unwrap();
    let chan1 = home_sub.open_channel(&name).unwrap();
    home_sub.subscribe_raw(chan1, None).unwrap();

    // Publisher at d0 — the wrong daemon, deliberately. Every publish
    // is forwarded to the home.
    let mut publisher = ServClient::connect(d0.local_addr(), &ArchProfile::X86_64).unwrap();
    let fmt = publisher.register_format(&ev_schema()).unwrap();
    let pchan = publisher.open_channel(&name).unwrap();

    // Probe until the relay subscription is live end to end (publishes
    // that race its establishment reach the home but not the relay).
    wait_for(
        || {
            publisher.publish(pchan, fmt, &ev_bytes(0)).unwrap();
            relay_sub
                .poll_raw(Duration::from_millis(100))
                .unwrap()
                .is_some()
        },
        "relay subscription to become live",
    );

    const N: u64 = 20;
    for seq in 1..=N {
        publisher.publish(pchan, fmt, &ev_bytes(seq)).unwrap();
    }

    let relayed = collect_seqs(&mut relay_sub, 1..N + 1);
    let homed = collect_seqs(&mut home_sub, 1..N + 1);
    for seq in 1..=N {
        let (bytes, count) = relayed
            .get(&seq)
            .unwrap_or_else(|| panic!("relay subscriber missed seq {seq}"));
        assert_eq!(*count, 1, "seq {seq} delivered more than once via relay");
        assert_eq!(
            bytes.as_slice(),
            &ev_bytes(seq),
            "relayed bytes differ from published bytes for seq {seq}"
        );
        let (hbytes, _) = homed
            .get(&seq)
            .unwrap_or_else(|| panic!("home subscriber missed seq {seq}"));
        assert_eq!(bytes, hbytes, "relay hop altered bytes for seq {seq}");
    }

    // Introspection: both daemons report their peer link, and the
    // channel's home is index 1 on both shard maps.
    let topo0 = relay_sub.inspect().unwrap();
    let peer = topo0
        .peers
        .iter()
        .find(|p| p.peer == 1)
        .expect("d0 $topo lists peer 1");
    assert!(peer.connected);
    assert!(peer.relay_tx >= N, "forwards counted: {}", peer.relay_tx);
    assert!(
        peer.relay_rx >= N,
        "relayed events counted: {}",
        peer.relay_rx
    );
    let ch = topo0
        .channels
        .iter()
        .find(|c| c.id == chan0)
        .expect("channel in d0 $topo");
    assert_eq!(ch.home, 1, "shard map owner surfaces in $topo");
    let topo1 = home_sub.inspect().unwrap();
    assert!(topo1.peers.iter().any(|p| p.peer == 0 && p.connected));
}

/// Formats registered before a peer ever connects reach it through the
/// connect-time gossip dump; formats registered after reach it through
/// the fresh-registration broadcast.
#[test]
fn format_gossip_converges_for_late_joiner() {
    let d0 = ServDaemon::bind_with("127.0.0.1:0", mesh_config(0, 2)).unwrap();
    let mut c0 = ServClient::connect(d0.local_addr(), &ArchProfile::X86_64).unwrap();
    c0.register_format(&ev_schema()).unwrap();
    let before = d0.formats().len();
    assert!(before >= 1);

    // The late joiner: a daemon that starts after the format existed.
    let d1 = ServDaemon::bind_with("127.0.0.1:0", mesh_config(1, 2)).unwrap();
    assert_eq!(d1.formats().len(), 0, "late joiner starts empty");
    assert!(d0.connect_peer(1, d1.local_addr().to_string()));
    assert!(d1.connect_peer(0, d0.local_addr().to_string()));

    // Connect-time dump: the pre-existing format appears at d1.
    wait_for(
        || d1.formats().len() >= before,
        "gossip dump to reach the late joiner",
    );

    // Fresh-registration broadcast: a format registered at d0 *after*
    // the mesh converged appears at d1 without any publish traffic.
    let extra = Schema::new(
        "mesh-late",
        vec![
            FieldDecl::atom("seq", AtomType::U64),
            FieldDecl::atom("value", AtomType::CDouble),
        ],
    )
    .unwrap();
    c0.register_format(&extra).unwrap();
    let after = d0.formats().len();
    assert!(after > before);
    wait_for(
        || d1.formats().len() >= after,
        "fresh registration to broadcast",
    );

    // Convergence is by content: every meta registered at d0 decodes to
    // the same id-able bytes at d1.
    for id in 0..after as u32 {
        let meta = d0.formats().meta(id).expect("d0 meta");
        let (d1_id, _, fresh) = d1.formats().register_meta(&meta).expect("d1 decode");
        assert!(!fresh, "d1 should already know format {id} (got {d1_id})");
    }
}

/// A severed link parks forwards in its bounded pending queue; healing
/// drains the backlog. The home-side subscriber sees every event
/// exactly once — nothing lost, nothing duplicated.
#[test]
fn partition_and_heal_delivers_exactly_once() {
    let (d0, d1) = mesh_pair();
    let name = name_homed(1, 2);

    let mut sub = ServClient::connect(d1.local_addr(), &ArchProfile::X86_64).unwrap();
    let chan1 = sub.open_channel(&name).unwrap();
    sub.subscribe_raw(chan1, None).unwrap();

    let mut publisher = ServClient::connect(d0.local_addr(), &ArchProfile::X86_64).unwrap();
    let fmt = publisher.register_format(&ev_schema()).unwrap();
    let pchan = publisher.open_channel(&name).unwrap();

    // Phase 1: healthy mesh. (Early publishes may park briefly while
    // the link resolves ids; the pending queue guarantees they arrive.)
    for seq in 0..10u64 {
        publisher.publish(pchan, fmt, &ev_bytes(seq)).unwrap();
    }
    let phase1 = collect_seqs(&mut sub, 0..10);
    assert_eq!(phase1.len(), 10, "phase 1 events all arrive");

    // Phase 2: partition, then publish into the outage.
    assert!(d0.partition_peer(1, true));
    wait_for(
        || d0.peer_stats().iter().any(|p| p.peer == 1 && !p.connected),
        "partition to take effect",
    );
    for seq in 10..30u64 {
        publisher.publish(pchan, fmt, &ev_bytes(seq)).unwrap();
    }
    wait_for(
        || {
            d0.peer_stats()
                .iter()
                .any(|p| p.peer == 1 && p.pending == 20)
        },
        "20 forwards to park in the pending queue",
    );
    assert!(
        sub.poll_raw(Duration::from_millis(300)).unwrap().is_none(),
        "nothing crosses a severed link"
    );

    // Phase 3: heal. The backlog drains in order, exactly once.
    assert!(d0.partition_peer(1, false));
    let phase3 = collect_seqs(&mut sub, 10..30);
    let mut all = phase1;
    for (seq, v) in phase3 {
        let e = all.entry(seq).or_insert_with(|| (v.0.clone(), 0));
        e.1 += v.1;
    }
    for seq in 0..30u64 {
        let (bytes, count) = all
            .get(&seq)
            .unwrap_or_else(|| panic!("seq {seq} lost across the partition"));
        assert_eq!(*count, 1, "seq {seq} duplicated across the heal");
        assert_eq!(bytes.as_slice(), &ev_bytes(seq));
    }
    let stats = d0.peer_stats();
    let p = stats.iter().find(|p| p.peer == 1).unwrap();
    assert_eq!(p.pending, 0, "backlog fully drained");
    assert_eq!(p.relay_dropped, 0, "nothing hit the drop-oldest bound");
    assert_eq!(p.relay_tx, 30, "every forward accounted as transmitted");
}

/// Kill the home daemon mid-stream — while its connections run a seeded
/// fault plan, as in the CI fault matrix — and keep publishing. Every
/// forward must be accounted for exactly: transmitted, dropped by the
/// bounded pending queue, or still parked.
#[test]
fn peer_killed_mid_relay_keeps_exact_accounting() {
    let seed = std::env::var("PBIO_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7u64);
    let d0 = ServDaemon::bind_with("127.0.0.1:0", mesh_config(0, 2)).unwrap();
    let mut cfg1 = mesh_config(1, 2);
    cfg1.fault_seed = Some(seed);
    let d1 = ServDaemon::bind_with("127.0.0.1:0", cfg1).unwrap();
    assert!(d0.connect_peer(1, d1.local_addr().to_string()));
    assert!(d1.connect_peer(0, d0.local_addr().to_string()));
    wait_for(
        || d0.peer_stats().iter().any(|p| p.connected),
        "link to the faulty home daemon",
    );

    let name = name_homed(1, 2);
    let mut publisher = ServClient::connect(d0.local_addr(), &ArchProfile::X86_64).unwrap();
    let fmt = publisher.register_format(&ev_schema()).unwrap();
    let pchan = publisher.open_channel(&name).unwrap();

    const ALIVE: u64 = 50;
    // More than the link's pending bound (1024), so the drop-oldest
    // path is exercised too once the peer is gone.
    const DEAD: u64 = 1300;
    for seq in 0..ALIVE {
        publisher.publish(pchan, fmt, &ev_bytes(seq)).unwrap();
    }
    wait_for(
        || {
            let s = d0.peer_stats();
            let p = s.iter().find(|p| p.peer == 1).unwrap();
            p.relay_tx + p.relay_dropped + p.pending == ALIVE
        },
        "pre-kill forwards to be accounted",
    );

    d1.shutdown();
    // Wait until d0's link thread has observed the death before the
    // overflow burst: otherwise the kernel socket buffer can swallow
    // (and count as transmitted) frames written to the dead peer, and
    // the drop-oldest path below would depend on EOF-detection timing.
    wait_for(
        || !d0.peer_stats().iter().any(|p| p.connected),
        "link to notice the dead peer",
    );
    for seq in ALIVE..ALIVE + DEAD {
        publisher.publish(pchan, fmt, &ev_bytes(seq)).unwrap();
    }

    // The invariant must converge: every forward transmitted, dropped,
    // or parked — none silently vanished.
    wait_for(
        || {
            let s = d0.peer_stats();
            let p = s.iter().find(|p| p.peer == 1).unwrap();
            p.relay_tx + p.relay_dropped + p.pending == ALIVE + DEAD
        },
        "exact accounting after the peer died",
    );
    let s = d0.peer_stats();
    let p = s.iter().find(|p| p.peer == 1).unwrap();
    assert!(
        p.pending <= 1024,
        "pending queue respects its bound: {}",
        p.pending
    );
    assert!(
        p.relay_dropped > 0,
        "publishing past the bound must hit drop-oldest"
    );
    // The publisher's own session (to the live d0) is unaffected.
    publisher.publish(pchan, fmt, &ev_bytes(u64::MAX)).unwrap();
    publisher.disconnect().unwrap();
}
