//! End-to-end integration: Writer → transport → Reader, across transports,
//! segmentations, conversion modes and architecture pairs.

use pbio::{ConversionMode, Reader, Writer};
use pbio_net::{duplex_pipe, TcpPipe};
use pbio_types::schema::{AtomType, FieldDecl, Schema, TypeDesc};
use pbio_types::value::{RecordValue, Value};
use pbio_types::ArchProfile;

fn telemetry_schema() -> Schema {
    Schema::new(
        "telemetry",
        vec![
            FieldDecl::atom("seq", AtomType::CInt),
            FieldDecl::atom("timestep", AtomType::CLong),
            FieldDecl::atom("value", AtomType::CDouble),
            FieldDecl::new("samples", TypeDesc::array(AtomType::CFloat, 5)),
            FieldDecl::new("source", TypeDesc::String),
        ],
    )
    .unwrap()
}

fn telemetry_record(seq: i32) -> RecordValue {
    RecordValue::new()
        .with("seq", seq)
        .with("timestep", (seq as i64) * 7)
        .with("value", seq as f64 * 0.5 - 3.0)
        .with(
            "samples",
            Value::Array(
                (0..5)
                    .map(|i| Value::F64((seq + i) as f64 * 0.25))
                    .collect(),
            ),
        )
        .with("source", format!("sensor-{seq}").as_str())
}

/// Full stream over an in-process pipe, fed to the reader in awkward chunk
/// sizes, for every (sender, receiver) profile pair.
#[test]
fn pipe_exchange_all_profile_pairs() {
    let schema = telemetry_schema();
    for sp in ArchProfile::all() {
        for dp in ArchProfile::all() {
            let mut writer = Writer::new(sp);
            let fmt = writer.register(&schema).unwrap();
            let (mut tx, mut rx) = duplex_pipe();
            let mut out = Vec::new();
            for seq in 0..4 {
                writer
                    .write_value(fmt, &telemetry_record(seq), &mut out)
                    .unwrap();
            }
            // Send in deliberately awkward segments.
            for chunk in out.chunks(13) {
                tx.send(chunk);
            }

            let mut reader = Reader::new(dp);
            reader.expect(&schema).unwrap();
            let mut got = Vec::new();
            let buf = rx.drain().to_vec();
            let consumed = reader
                .process(&buf, |view| got.push(view.to_value().unwrap()))
                .unwrap();
            assert_eq!(consumed, buf.len(), "{} -> {}", sp.name, dp.name);
            assert_eq!(got.len(), 4);
            for (seq, v) in got.iter().enumerate() {
                assert_eq!(
                    v,
                    &telemetry_record(seq as i32),
                    "{} -> {}",
                    sp.name,
                    dp.name
                );
            }
        }
    }
}

/// Incremental delivery: feed the reader byte-by-byte prefixes, always
/// resuming from `consumed`.
#[test]
fn incremental_stream_consumption() {
    let schema = telemetry_schema();
    let mut writer = Writer::new(&ArchProfile::SPARC_V8);
    let fmt = writer.register(&schema).unwrap();
    let mut stream = Vec::new();
    for seq in 0..3 {
        writer
            .write_value(fmt, &telemetry_record(seq), &mut stream)
            .unwrap();
    }

    let mut reader = Reader::new(&ArchProfile::X86_64);
    reader.expect(&schema).unwrap();

    let mut got = Vec::new();
    let mut pending: Vec<u8> = Vec::new();
    for &b in &stream {
        pending.push(b);
        let consumed = reader
            .process(&pending, |view| got.push(view.to_value().unwrap()))
            .unwrap();
        pending.drain(..consumed);
    }
    assert!(pending.is_empty());
    assert_eq!(got.len(), 3);
    for (seq, v) in got.iter().enumerate() {
        assert_eq!(v, &telemetry_record(seq as i32));
    }
}

/// TCP loopback: real sockets carrying a PBIO stream.
#[test]
fn tcp_exchange() {
    let schema = telemetry_schema();
    let mut writer = Writer::new(&ArchProfile::MIPS_N32);
    let fmt = writer.register(&schema).unwrap();
    let mut stream = Vec::new();
    for seq in 0..5 {
        writer
            .write_value(fmt, &telemetry_record(seq), &mut stream)
            .unwrap();
    }

    let mut pipe = TcpPipe::open().unwrap();
    pipe.client_send(&stream).unwrap();
    let received = pipe.server_recv(stream.len()).unwrap();

    let mut reader = Reader::with_mode(&ArchProfile::X86, ConversionMode::Interpreted);
    reader.expect(&schema).unwrap();
    let mut count = 0;
    reader
        .process(&received, |view| {
            assert_eq!(view.get("seq"), Some(Value::I64(count)));
            count += 1;
        })
        .unwrap();
    assert_eq!(count, 5);
}

/// Several formats interleaved on one stream, with one of them unknown to
/// the receiver (read via reflection).
#[test]
fn multiplexed_formats_with_reflection() {
    let known = telemetry_schema();
    let unknown = Schema::new(
        "surprise",
        vec![
            FieldDecl::atom("code", AtomType::CInt),
            FieldDecl::new("msg", TypeDesc::String),
        ],
    )
    .unwrap();

    let mut writer = Writer::new(&ArchProfile::ALPHA);
    let f1 = writer.register(&known).unwrap();
    let f2 = writer.register(&unknown).unwrap();
    let mut stream = Vec::new();
    writer
        .write_value(f1, &telemetry_record(0), &mut stream)
        .unwrap();
    writer
        .write_value(
            f2,
            &RecordValue::new()
                .with("code", 418i32)
                .with("msg", "teapot"),
            &mut stream,
        )
        .unwrap();
    writer
        .write_value(f1, &telemetry_record(1), &mut stream)
        .unwrap();

    let mut reader = Reader::new(&ArchProfile::SPARC_V9_64);
    reader.expect(&known).unwrap();
    let mut names = Vec::new();
    reader
        .process(&stream, |view| {
            names.push(view.layout().format_name().to_owned());
            if view.layout().format_name() == "surprise" {
                // Reflection path: wire layout, foreign representation.
                assert!(view.is_zero_copy());
                assert_eq!(view.get("code"), Some(Value::I64(418)));
                assert_eq!(view.get("msg"), Some(Value::Str("teapot".into())));
            }
        })
        .unwrap();
    assert_eq!(names, vec!["telemetry", "surprise", "telemetry"]);
}

/// Zero-copy claim: on a homogeneous exchange the view's bytes alias the
/// stream buffer.
#[test]
fn zero_copy_aliases_receive_buffer() {
    let schema = Schema::new(
        "flat",
        vec![
            FieldDecl::atom("a", AtomType::CInt),
            FieldDecl::atom("b", AtomType::CDouble),
        ],
    )
    .unwrap();
    let mut writer = Writer::new(&ArchProfile::X86_64);
    let fmt = writer.register(&schema).unwrap();
    let mut stream = Vec::new();
    writer
        .write_value(
            fmt,
            &RecordValue::new().with("a", 1i32).with("b", 2.0f64),
            &mut stream,
        )
        .unwrap();

    let mut reader = Reader::new(&ArchProfile::X86_64);
    reader.expect(&schema).unwrap();
    let range = stream.as_ptr() as usize..stream.as_ptr() as usize + stream.len();
    reader
        .process(&stream, |view| {
            assert!(view.is_zero_copy());
            let p = view.bytes().as_ptr() as usize;
            assert!(
                range.contains(&p),
                "zero-copy view must alias the stream buffer"
            );
        })
        .unwrap();
}

/// Conversion modes are behaviourally identical on the same stream.
#[test]
fn conversion_modes_equivalent_end_to_end() {
    let schema = telemetry_schema();
    let mut writer = Writer::new(&ArchProfile::SPARC_V8);
    let fmt = writer.register(&schema).unwrap();
    let mut stream = Vec::new();
    for seq in 0..3 {
        writer
            .write_value(fmt, &telemetry_record(seq), &mut stream)
            .unwrap();
    }

    let mut results = Vec::new();
    for mode in [
        ConversionMode::Interpreted,
        ConversionMode::DcgNaive,
        ConversionMode::Dcg,
    ] {
        let mut reader = Reader::with_mode(&ArchProfile::X86, mode);
        reader.expect(&schema).unwrap();
        let mut got = Vec::new();
        reader
            .process(&stream, |view| got.push(view.to_value().unwrap()))
            .unwrap();
        results.push(got);
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}

/// Vectored (zero-copy) transmission: `Writer::frame` emits only control
/// bytes; the payload is sent straight from the application's buffer — the
/// path the paper's zero-copy messaging integration (§5) relies on. The
/// receiver cannot tell the difference.
#[test]
fn vectored_framing_equivalent_to_buffered_write() {
    let schema = telemetry_schema();
    let mut w = Writer::new(&ArchProfile::SPARC_V8);
    let fmt = w.register(&schema).unwrap();
    let record = telemetry_record(3);
    let native = w.encode_value(fmt, &record).unwrap();

    // Buffered path.
    let mut buffered = Vec::new();
    w.write(fmt, &native, &mut buffered).unwrap();

    // Vectored path (fresh writer so the announcement happens again):
    // control bytes and payload travel as separate segments.
    let mut w2 = Writer::new(&ArchProfile::SPARC_V8);
    let fmt2 = w2.register(&schema).unwrap();
    let mut control = Vec::new();
    w2.frame(fmt2, native.len(), &mut control).unwrap();
    let mut vectored = control.clone();
    vectored.extend_from_slice(&native);
    assert_eq!(buffered, vectored, "identical bytes on the wire");

    let mut r = Reader::new(&ArchProfile::X86_64);
    r.expect(&schema).unwrap();
    let mut seen = 0;
    r.process(&vectored, |view| {
        assert_eq!(view.to_value().unwrap(), record);
        seen += 1;
    })
    .unwrap();
    assert_eq!(seen, 1);
}

/// A corrupted message kind aborts processing with an error, not a panic.
#[test]
fn corrupt_stream_errors() {
    let schema = telemetry_schema();
    let mut writer = Writer::new(&ArchProfile::X86);
    let fmt = writer.register(&schema).unwrap();
    let mut stream = Vec::new();
    writer
        .write_value(fmt, &telemetry_record(0), &mut stream)
        .unwrap();
    stream[0] = 0xFF; // bad message kind

    let mut reader = Reader::new(&ArchProfile::X86);
    reader.expect(&schema).unwrap();
    assert!(reader.process(&stream, |_| {}).is_err());
}
