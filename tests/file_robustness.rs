//! Robustness properties for `pbio::file`: a [`pbio::FileReader`] fed a
//! truncated or bit-corrupted file must either deliver records that are
//! byte-identical to what was written or return a typed [`PbioError`] —
//! it must never panic, loop, or hand back a silently wrong record.

use std::io::Cursor;

use proptest::prelude::*;

use pbio::{FileReader, FileWriter, PbioError};
use pbio_types::arch::ArchProfile;
use pbio_types::schema::{AtomType, FieldDecl, Schema, TypeDesc};
use pbio_types::value::{RecordValue, Value};

fn schema() -> Schema {
    Schema::new(
        "sample",
        vec![
            FieldDecl::atom("step", AtomType::I32),
            FieldDecl::atom("energy", AtomType::F64),
            FieldDecl::new("label", TypeDesc::String),
        ],
    )
    .unwrap()
}

fn record(step: i32) -> RecordValue {
    RecordValue::new()
        .with("step", step)
        .with("energy", step as f64 * 1.5)
        .with("label", format!("s{step}").as_str())
}

/// A well-formed file of `n` records, written for `profile`.
fn clean_file(profile: &ArchProfile, n: i32) -> Vec<u8> {
    let mut fw = FileWriter::create(Vec::new(), profile).unwrap();
    let id = fw.register(&schema()).unwrap();
    for step in 0..n {
        fw.write_value(id, &record(step)).unwrap();
    }
    fw.finish().unwrap()
}

/// Read everything, checking each delivered record against the original
/// stream position. Returns how many records were delivered before
/// success or the typed error.
fn read_checked(bytes: &[u8]) -> (u64, Result<u64, PbioError>) {
    let mut delivered = 0u64;
    let result = match FileReader::open(Cursor::new(bytes), &ArchProfile::X86_64) {
        Ok(mut fr) => {
            fr.expect(&schema()).unwrap();
            fr.read_all(|view| {
                // Any record that *is* delivered must be self-consistent:
                // the energy/label fields derive from step exactly as
                // written. (Bit damage that survives to a delivered
                // record would break this relation.)
                if let (Some(Value::I64(s)), Some(Value::F64(e))) =
                    (view.get("step"), view.get("energy"))
                {
                    if e == s as f64 * 1.5 {
                        delivered += 1;
                    }
                }
            })
        }
        Err(e) => Err(e),
    };
    (delivered, result)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Truncation at *any* byte boundary: the reader delivers some clean
    /// prefix of the records and then either succeeds (cut landed on a
    /// message boundary) or returns a typed error — never a panic, never
    /// an infinite loop, never an invented record.
    #[test]
    fn truncation_at_any_point_is_a_typed_error_or_clean_prefix(
        n in 1i32..8,
        frac in 0.0f64..1.0,
    ) {
        let bytes = clean_file(&ArchProfile::X86_64, n);
        let cut = ((bytes.len() as f64) * frac) as usize;
        let (delivered, result) = read_checked(&bytes[..cut]);
        prop_assert!(delivered <= n as u64, "phantom records from a truncated file");
        if let Ok(count) = result {
            prop_assert_eq!(count, delivered,
                "reported count disagrees with delivered records");
        }
        // An Err is fine — any Err: the contract is *typed* failure.
    }

    /// A single flipped byte anywhere in the file: every record the
    /// reader still delivers is self-consistent, and anything else is a
    /// typed error. Damage is detected or harmless, never silent.
    #[test]
    fn single_byte_corruption_never_panics_or_loops(
        n in 1i32..6,
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let mut bytes = clean_file(&ArchProfile::X86_64, n);
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= xor;
        // Either outcome is acceptable; completing the call at all — no
        // panic, no hang, no unbounded allocation — plus per-record
        // consistency is the property.
        let (delivered, _result) = read_checked(&bytes);
        prop_assert!(delivered <= n as u64, "corruption minted extra records");
    }

    /// Corrupted *and* truncated — the crash-recovery shape: damage near
    /// the tail of a file cut mid-record. Still only typed errors.
    #[test]
    fn corrupt_then_truncate_still_fails_typed(
        n in 1i32..6,
        frac in 0.1f64..1.0,
        xor in 1u8..=255,
    ) {
        let bytes = clean_file(&ArchProfile::MIPS_64, n);
        let cut = (((bytes.len()) as f64) * frac) as usize;
        let mut cut_bytes = bytes[..cut].to_vec();
        if let Some(last) = cut_bytes.last_mut() {
            *last ^= xor;
        }
        let (delivered, _result) = read_checked(&cut_bytes);
        prop_assert!(delivered <= n as u64);
    }
}

/// Deterministic spot-checks of the hostile shapes the property space
/// samples: empty file, magic-only, header-only, and a length field
/// blown up to claim more bytes than exist.
#[test]
fn hostile_fixed_inputs_fail_typed() {
    for bytes in [
        Vec::new(),
        b"PBIOFILE".to_vec(),
        b"PBIOFILE\x01".to_vec(),
        b"PBIOFILE\x01\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF".to_vec(),
    ] {
        match FileReader::open(Cursor::new(&bytes), &ArchProfile::X86_64) {
            Ok(mut fr) => {
                // Header parsed; the stream beyond it must fail typed.
                let _ = fr.read_all(|_| panic!("record from a record-free file"));
            }
            Err(e) => {
                // Typed, descriptive failure.
                assert!(!e.to_string().is_empty());
            }
        }
    }
}
