//! Flight-recorder crash durability: a daemon killed without any
//! shutdown handshake (SIGKILL — no destructors, no atexit) must leave
//! behind a flight-dump segment that `pbio-store`'s ordinary reader can
//! open, recover, and decode back into lifecycle events.
//!
//! The killed daemon runs in a child process: this test re-execs its own
//! binary with `PBIO_FLIGHT_CHILD` set, waits for the child to report
//! that the background drain has persisted a few events, kills it, and
//! then decodes the dump the corpse left behind.

use std::collections::HashMap;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

use pbio_obs::export::flight_from_value;
use pbio_obs::{FlightEvent, FL_CONNECT};
use pbio_serv::{ServClient, ServConfig, ServDaemon, TraceConfig};
use pbio_store::{FlushPolicy, ReplayItem, Store, StoreConfig};
use pbio_types::arch::ArchProfile;
use pbio_types::layout::Layout;
use pbio_types::meta::deserialize_layout;
use pbio_types::value::decode_native;

/// Child mode: run a daemon with a flight dump, let the background
/// drain tick a few times, announce readiness, and then idle until the
/// parent kills us mid-flight.
fn flight_child(dir: PathBuf) -> ! {
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            stats_interval: Some(Duration::from_millis(20)),
            trace: TraceConfig {
                sample_mod: 0,
                publish_interval: None,
                sink_capacity: 16,
            },
            flight_dump: Some(dir),
            ..ServConfig::default()
        },
    )
    .expect("child daemon bind");
    let addr = daemon.local_addr();

    // Two connects and a little traffic: lifecycle events for the
    // recorder, which the background loop drains to the dump each tick.
    let mut a = ServClient::connect(addr, &ArchProfile::X86_64).expect("child connect a");
    let mut b = ServClient::connect(addr, &ArchProfile::X86_64).expect("child connect b");
    let _ = a.open_channel("doomed").expect("child open");
    let _ = b.open_channel("doomed").expect("child open");

    // Several 20ms drain ticks pass; the connects are on disk now.
    std::thread::sleep(Duration::from_millis(400));
    println!("FLIGHT-READY");
    loop {
        std::thread::sleep(Duration::from_secs(1));
    }
}

/// Decode every flight event out of the dump directory through the
/// public store reader — recovery included, exactly as a post-mortem
/// tool would.
fn decode_dump(dir: &Path) -> Vec<FlightEvent> {
    let store = Store::open(StoreConfig {
        flush: FlushPolicy::EveryBatch,
        ..StoreConfig::new(dir.to_path_buf())
    })
    .expect("open dump store");
    let log = store.channel("flight").expect("open flight log");
    let mut layouts: HashMap<u32, Layout> = HashMap::new();
    let mut events = Vec::new();
    log.read_range(0, log.readable(), &mut |item| match item {
        ReplayItem::Meta { format, meta } => {
            let layout = deserialize_layout(meta).expect("dump meta deserializes");
            layouts.insert(format, layout);
        }
        ReplayItem::Event {
            format, payload, ..
        } => {
            let layout = layouts.get(&format).expect("meta precedes events");
            let value = decode_native(payload, layout).expect("dump record decodes");
            events.push(flight_from_value(&value).expect("record is a flight event"));
        }
    })
    .expect("dump replays");
    events
}

/// SIGKILL the daemon process mid-run; the flight dump left on disk
/// must decode through the ordinary store reader and contain the
/// lifecycle the child lived through.
#[test]
fn killed_daemon_leaves_a_decodable_flight_dump() {
    if let Ok(dir) = std::env::var("PBIO_FLIGHT_CHILD") {
        flight_child(PathBuf::from(dir));
    }

    let dir = std::env::temp_dir().join(format!("pbio-flight-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut child = Command::new(std::env::current_exe().unwrap())
        .arg("--exact")
        .arg("killed_daemon_leaves_a_decodable_flight_dump")
        .arg("--nocapture")
        .env("PBIO_FLIGHT_CHILD", &dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn child");

    // Wait for the child to report that the dump has content, then kill
    // it dead — no shutdown path runs, the dump is whatever already hit
    // the disk.
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let mut ready = false;
    for line in &mut lines {
        if line.expect("read child").contains("FLIGHT-READY") {
            ready = true;
            break;
        }
    }
    assert!(ready, "child exited before its dump was populated");
    child.kill().expect("kill child");
    let _ = child.wait();

    let events = decode_dump(&dir);
    assert!(
        !events.is_empty(),
        "the killed daemon left no decodable flight events"
    );
    assert!(
        events.iter().filter(|e| e.kind == FL_CONNECT).count() >= 2,
        "both client connects were recorded: {events:?}"
    );
    // Timestamps are monotone in dump order — the ring drained in
    // generation order, and nothing after the kill scrambled it.
    assert!(
        events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns),
        "flight events decode in timeline order"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
