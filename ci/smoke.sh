#!/usr/bin/env bash
# ci/smoke.sh — named smoke suites, runnable locally or as CI matrix
# cells.
#
#   ci/smoke.sh <suite> [bench-out-dir]
#
# Suites:
#   fanout      fan-out throughput + connection-scaling smokes + the
#               observability overhead guard
#   mesh        2-daemon federation: relay byte-identity bench smoke and
#               the mesh failure-mode integration tests
#   resilience  seeded-fault and durable-channel fan-out smokes
#   tools       the observability binaries ($stats/$trace/$topo/dump)
#   capture     capture→replay round-trip, flight-recorder kill test,
#               trailer-negotiation interop
#   all         everything above, serially
#
# Every command's stdout is scanned for the one-line schema-bearing JSON
# envelope the bench tools emit under --json; envelopes land in the
# bench-out directory (default: bench-out/) for CI to upload as
# artifacts. The suites assume `cargo build --release` artifacts are
# already cached — each command builds what it needs otherwise.
set -euo pipefail

SUITE="${1:?usage: ci/smoke.sh <suite> [bench-out-dir]}"
OUT="${2:-bench-out}"
mkdir -p "$OUT"

# run <name> <cmd...>: run one smoke, teeing output and harvesting any
# JSON envelope lines into $OUT/<name>.json (absent when the tool emits
# none — not every mode has a machine-readable shape).
run() {
  local name="$1"
  shift
  echo "::group::smoke: $name"
  local log
  log="$(mktemp)"
  "$@" | tee "$log"
  echo "::endgroup::"
  grep -h '^{"schema"' "$log" > "$OUT/$name.json" || rm -f "$OUT/$name.json"
  rm -f "$log"
}

suite_fanout() {
  run fanout cargo bench -p pbio-bench --bench fanout -- --smoke --json
  # The reactor suites hold hundreds of sockets open; the default soft
  # fd limit of 1024 is too tight for the 512-subscriber smoke.
  ulimit -n 16384 || true
  run fanout-subs cargo bench -p pbio-bench --bench fanout -- --subs --smoke
  run obs-guard cargo bench -p pbio-bench --bench obs_overhead -- --guard
}

suite_mesh() {
  run fanout-mesh cargo bench -p pbio-bench --bench fanout -- --mesh 2 --smoke --json
  run mesh-tests cargo test -q -p pbio-integration --test mesh -- --nocapture
}

suite_resilience() {
  run fanout-faults cargo bench -p pbio-bench --bench fanout -- --smoke --faults seed=1
  run fanout-durable cargo bench -p pbio-bench --bench fanout -- --smoke --durable
}

suite_tools() {
  run stats cargo run --release -p pbio-bench --bin pbio-stats -- --smoke --json
  run trace cargo run --release -p pbio-bench --bin pbio-trace -- --smoke --json
  run top cargo run --release -p pbio-bench --bin pbio-top -- --smoke --json
  run dump cargo run --release -p pbio-bench --bin pbio-dump -- --smoke --json
}

suite_capture() {
  # Record a 1k-event session under the tap, replay it at max speed
  # against a fresh daemon, and require byte-identical delivery.
  run replay cargo run --release -p pbio-bench --bin pbio-replay -- --roundtrip --events 1000
  run flight cargo test -q -p pbio-integration --test flight -- --nocapture
  run trailer-interop cargo test -q -p pbio-integration --test trace
}

case "$SUITE" in
  fanout) suite_fanout ;;
  mesh) suite_mesh ;;
  resilience) suite_resilience ;;
  tools) suite_tools ;;
  capture) suite_capture ;;
  all)
    suite_fanout
    suite_mesh
    suite_resilience
    suite_tools
    suite_capture
    ;;
  *)
    echo "unknown suite: $SUITE" >&2
    exit 2
    ;;
esac

echo "smoke suite '$SUITE' passed; envelopes in $OUT/:"
ls -l "$OUT" || true
