//! Offline shim for `criterion`: the API surface the workspace's benches
//! use, over a small but real timing loop. It has none of criterion's
//! statistics — each benchmark is warmed up briefly, timed in batches, and
//! the best observed ns/iter is printed. Good enough to compare the
//! paper-figure configurations against each other in this repo; not a
//! substitute for criterion's rigor.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter component.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation (accepted, not currently reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to the closure under measurement; drives the timing loop.
pub struct Bencher {
    /// Best observed nanoseconds per iteration.
    best_ns: f64,
    measurement: Duration,
}

impl Bencher {
    /// Time `f`, recording the best batch average.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch size calibration: grow until a batch takes >=50µs.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let el = t.elapsed();
            if el >= Duration::from_micros(50) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let deadline = Instant::now() + self.measurement;
        let mut best = f64::INFINITY;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            if ns < best {
                best = ns;
            }
            if Instant::now() >= deadline {
                break;
            }
        }
        self.best_ns = best;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples (accepted for API compatibility; the shim always
    /// reports the best batch).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Warm-up duration (accepted; the shim calibrates its own warm-up).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Throughput annotation (accepted, not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            best_ns: f64::NAN,
            measurement: self.measurement,
        };
        f(&mut b);
        println!("{}/{}: {:.1} ns/iter", self.name, id.id, b.best_ns);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Keep whole-suite runtime manageable without criterion's adaptive
        // sampling; override per group with `measurement_time`.
        Criterion {
            measurement: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility with `criterion_group!`'s expansion.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement = self.measurement;
        BenchmarkGroup {
            name: name.into(),
            measurement,
            _parent: self,
        }
    }
}

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.measurement_time(Duration::from_millis(5));
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }
}
