//! Offline shim for `crossbeam`: only the `channel` subset this workspace
//! uses, backed by `std::sync::mpsc`.

/// Multi-producer channels (std-backed).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Receiver::recv`].
    pub use std::sync::mpsc::RecvError;
    /// Error returned by [`Receiver::recv_timeout`].
    pub use std::sync::mpsc::RecvTimeoutError;
    /// Error returned by [`Sender::send`].
    pub use std::sync::mpsc::SendError;
    /// Error returned by [`Receiver::try_recv`].
    pub use std::sync::mpsc::TryRecvError;

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a value; errors if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Block up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
