//! Deterministic RNG and per-test configuration.

/// Configuration accepted by `proptest! { #![proptest_config(..)] .. }`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator seeded from (test path, case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one case of one property test. Same (path, case) → same
    /// stream, so failures reproduce exactly.
    pub fn for_case(test_path: &str, case: u32) -> TestRng {
        // FNV-1a over the test path, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::for_case("mod::test", 3);
        let mut b = TestRng::for_case("mod::test", 3);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_case("mod::test", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
