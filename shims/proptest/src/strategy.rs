//! The [`Strategy`] trait and combinators: generation only, no shrinking.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::string::sample_pattern;
use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `f` maps a strategy for the inner level to a
    /// strategy for the outer level. The shim expands `depth` levels, mixing
    /// each level with the levels below it (1:2 leaf-to-branch odds).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = Union::new(vec![(1, strat.clone()), (2, f(strat).boxed())]).boxed();
        }
        strat
    }

    /// Type-erase the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> BoxedStrategy<V> {
        BoxedStrategy(self.0.clone())
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }

    fn boxed(self) -> BoxedStrategy<V>
    where
        Self: Sized + 'static,
    {
        self
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted choice among strategies of one value type (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a nonzero total weight");
        Union { arms, total }
    }
}

impl<V: 'static> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights covered above")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start as f64
                    + rng.unit_f64() * (self.end as f64 - self.start as f64);
                v as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// String literals are regex-ish strategies (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

/// A vector of strategies generates element-wise.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $S:ident),+),)*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy::tests", 0)
    }

    #[test]
    fn ranges_and_maps() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (0i32..10).generate(&mut r);
            assert!((0..10).contains(&v));
            let f = (-1.0f64..1.0).generate(&mut r);
            assert!((-1.0..1.0).contains(&f));
            let m = (0u8..=3).prop_map(|x| x * 2).generate(&mut r);
            assert!(m <= 6 && m % 2 == 0);
        }
    }

    #[test]
    fn union_respects_weights() {
        let u = Union::new(vec![(1, Just(0u8).boxed()), (9, Just(1u8).boxed())]);
        let mut r = rng();
        let ones = (0..1000).filter(|_| u.generate(&mut r) == 1).count();
        assert!(ones > 780, "{ones}");
    }

    #[test]
    fn flat_map_threads_values() {
        let s = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..10, n..=n));
        let mut r = rng();
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!((1..4).contains(&v.len()));
        }
    }
}
