//! The `any::<T>()` entry point for types with a canonical strategy.

use std::ops::RangeInclusive;

use crate::strategy::Strategy;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;

            fn arbitrary() -> RangeInclusive<$t> {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    type Strategy = crate::bool::Any;

    fn arbitrary() -> crate::bool::Any {
        crate::bool::ANY
    }
}
