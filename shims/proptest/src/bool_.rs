//! Boolean strategies (`proptest::bool::ANY`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding each boolean with equal probability.
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// Uniformly random booleans.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
