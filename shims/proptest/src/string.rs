//! Regex-ish string generation for `&str` strategies.
//!
//! Supports exactly the pattern shapes this workspace's tests use:
//!
//! * `"\\PC*"` — any printable characters (proptest's "not control");
//! * `"[class]{min,max}"` — a character class (literals, `a-z` ranges,
//!   backslash escapes) repeated a bounded number of times;
//! * `"[class]*"` / `"[class]+"` — the same with default bounds.
//!
//! Anything else is treated as a literal string.

use crate::test_runner::TestRng;

/// Generate one string matching `pattern` (see module docs for the
/// supported subset).
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    if pattern == "\\PC*" || pattern == "\\\\PC*" {
        // Printable characters, mostly ASCII with some multi-byte ones.
        let n = rng.below(48);
        return (0..n)
            .map(|_| match rng.below(8) {
                0 => char::from_u32(0xA1 + rng.below(0x1000) as u32).unwrap_or('¿'),
                _ => (0x20 + rng.below(0x5F) as u8) as char,
            })
            .collect();
    }
    if let Some(parsed) = parse_class_repeat(pattern) {
        let (alphabet, min, max) = parsed;
        if alphabet.is_empty() {
            return String::new();
        }
        let n = min + rng.below(max - min + 1);
        return (0..n)
            .map(|_| alphabet[rng.below(alphabet.len())])
            .collect();
    }
    pattern.to_owned()
}

/// Parse `[class]{min,max}`, `[class]*` or `[class]+` into
/// (alphabet, min, max). Returns `None` for any other shape.
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class, tail) = (&rest[..close], &rest[close + 1..]);

    let mut alphabet = Vec::new();
    let mut chars = class.chars().peekable();
    let mut prev: Option<char> = None;
    while let Some(c) = chars.next() {
        let literal = if c == '\\' { chars.next()? } else { c };
        if literal == '-' && c != '\\' {
            // Range like `a-z` (a bare `-` with a preceding literal and a
            // following char); otherwise a literal dash.
            match (prev, chars.peek().copied()) {
                (Some(lo), Some(hi)) => {
                    chars.next();
                    for u in (lo as u32 + 1)..=(hi as u32) {
                        if let Some(ch) = char::from_u32(u) {
                            alphabet.push(ch);
                        }
                    }
                    prev = None;
                    continue;
                }
                _ => {
                    alphabet.push('-');
                    prev = Some('-');
                    continue;
                }
            }
        }
        alphabet.push(literal);
        prev = Some(literal);
    }

    let (min, max) = match tail {
        "*" => (0, 32),
        "+" => (1, 32),
        _ => {
            let body = tail.strip_prefix('{')?.strip_suffix('}')?;
            let (lo, hi) = body.split_once(',')?;
            (lo.trim().parse().ok()?, hi.trim().parse().ok()?)
        }
    };
    if min > max {
        return None;
    }
    Some((alphabet, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("string::tests", 0)
    }

    #[test]
    fn class_with_ranges_and_escapes() {
        let (alphabet, min, max) = parse_class_repeat("[a-z<>/&#;0-9 .\\-]{0,200}").unwrap();
        assert!(alphabet.contains(&'a') && alphabet.contains(&'z'));
        assert!(alphabet.contains(&'0') && alphabet.contains(&'9'));
        assert!(alphabet.contains(&'-') && alphabet.contains(&'.') && alphabet.contains(&' '));
        assert_eq!((min, max), (0, 200));
    }

    #[test]
    fn printable_ascii_class() {
        let mut r = rng();
        for _ in 0..100 {
            let s = sample_pattern("[ -~]{0,24}", &mut r);
            assert!(s.len() <= 24);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn printable_any() {
        let mut r = rng();
        for _ in 0..100 {
            let s = sample_pattern("\\PC*", &mut r);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }
}
