//! Offline shim for `proptest`: a deterministic, non-shrinking
//! property-testing harness exposing the subset of the proptest 1.x API
//! that this workspace's test suite uses.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   scope; the failure is deterministic (seeds derive from the test path
//!   and case index), so rerunning reproduces it exactly.
//! * **No failure persistence** (`proptest-regressions` files are ignored).
//! * **Regex strategies** support only character classes with an optional
//!   `{min,max}` repetition (e.g. `"[a-z0-9]{0,20}"`) plus `"\\PC*"`;
//!   that covers every pattern in this repo's tests.

pub mod arbitrary;
#[path = "bool_.rs"]
pub mod bool;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Skip marker returned by [`prop_assume!`] when an assumption fails.
#[derive(Debug)]
pub struct CaseSkip;

/// Assert inside a property (panics on failure, like a failing case).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::CaseSkip);
        }
    };
}

/// Weighted or unweighted choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::core::result::Result<(), $crate::CaseSkip> =
                        (|| -> ::core::result::Result<(), $crate::CaseSkip> {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    let _ = __outcome;
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}
