//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// Strategy for vectors with element strategy `S`.
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// Generate `Vec`s whose length is drawn from `size` and whose elements
/// come from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.min + rng.below(self.size.max - self.size.min + 1);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_stay_in_range() {
        let s = vec(0u8..=255, 2..5);
        let mut rng = TestRng::for_case("collection::tests", 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()), "{}", v.len());
        }
    }
}
