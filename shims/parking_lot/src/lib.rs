//! Offline shim for `parking_lot`: the subset of its API this workspace
//! uses, backed by `std::sync`. Unlike std, `parking_lot` locks do not
//! poison, so a poisoned std lock is recovered transparently.

use std::sync::{self, LockResult};

/// Non-poisoning reader-writer lock (std-backed).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

fn recover<G>(r: LockResult<G>) -> G {
    r.unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        recover(self.0.read())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        recover(self.0.write())
    }
}

/// Non-poisoning mutex (std-backed).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        recover(self.0.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
