//! Offline shim for `rand` 0.8: the subset this workspace uses
//! (`StdRng::seed_from_u64`, `gen_range` over integer and float ranges,
//! `gen_bool`), backed by a deterministic SplitMix64 generator. Not
//! cryptographic; statistical quality is sufficient for workload
//! generation and tests.

use std::ops::{Range, RangeInclusive};

/// Core 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (shim for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let frac = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + frac * (self.end as f64 - self.start as f64);
                v as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.gen_range(-50i32..50);
            assert_eq!(x, b.gen_range(-50i32..50));
            assert!((-50..50).contains(&x));
            let f = a.gen_range(0.0f64..1.0);
            assert_eq!(f, b.gen_range(0.0f64..1.0));
            assert!((0.0..1.0).contains(&f));
            let u = a.gen_range(0u8..=255);
            b.gen_range(0u8..=255);
            let _ = u;
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
