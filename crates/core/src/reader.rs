//! The receiving side: format discovery, conversion dispatch, zero-copy.
//!
//! A [`Reader`] declares the record formats it *expects* (by name, with the
//! layout its own architecture gives them) and then consumes the message
//! stream. For each incoming format it picks the cheapest correct path, in
//! the order the paper describes:
//!
//! 1. **Zero-copy** — the wire layout is bit-identical to the expected
//!    native layout (homogeneous exchange): records are used "directly from
//!    the message buffer" (§1).
//! 2. **DCG conversion** — a customized `pbio-vrisc` routine is generated
//!    "on the fly, as soon as the wire format is known" (§4.3) and run per
//!    record.
//! 3. **Interpreted conversion** — the table-driven fallback, selectable for
//!    comparison (Figure 4 measures 2 vs 3).
//!
//! Formats the reader has *no* expectation for are still fully usable via
//! reflection ([`RecordView`] over the wire layout): "generic components
//! \[may\] operate upon data about which they have no a priori knowledge"
//! (§4.4).

use std::collections::HashMap;
use std::sync::Arc;

use pbio_types::arch::ArchProfile;
use pbio_types::layout::Layout;
use pbio_types::meta::deserialize_layout;
use pbio_types::schema::Schema;

use crate::codegen::{CodegenMode, DcgConverter};
use crate::error::PbioError;
use crate::interp::InterpConverter;
use crate::message::{Message, MessageIter};
use crate::plan::{FieldReport, Plan};
use crate::view::RecordView;

/// Which conversion backend the reader builds for mismatched layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConversionMode {
    /// Table-driven interpretation (the paper's baseline PBIO, Figure 3).
    Interpreted,
    /// Dynamic code generation without peephole optimization.
    DcgNaive,
    /// Dynamic code generation with peephole optimization (Figure 4's
    /// "PBIO DCG"; the default).
    Dcg,
}

enum Prepared {
    /// Wire == native: hand out the receive buffer.
    ZeroCopy { native: Arc<Layout> },
    /// Interpreted conversion per record.
    Interp {
        conv: InterpConverter,
        native: Arc<Layout>,
    },
    /// Compiled conversion per record.
    Dcg {
        conv: Box<DcgConverter>,
        native: Arc<Layout>,
    },
    /// No expectation declared: reflection over the wire layout.
    Reflect,
}

struct IncomingFormat {
    wire: Arc<Layout>,
    plan: Option<Arc<Plan>>,
    prepared: Prepared,
}

/// The receiving endpoint of a PBIO stream.
pub struct Reader {
    profile: ArchProfile,
    mode: ConversionMode,
    expected: HashMap<String, Arc<Layout>>,
    incoming: HashMap<u32, IncomingFormat>,
    scratch: Vec<u8>,
}

impl Reader {
    /// Create a reader with the default (optimized DCG) conversion mode.
    pub fn new(profile: &ArchProfile) -> Reader {
        Reader::with_mode(profile, ConversionMode::Dcg)
    }

    /// Create a reader with an explicit conversion mode.
    pub fn with_mode(profile: &ArchProfile, mode: ConversionMode) -> Reader {
        Reader {
            profile: profile.clone(),
            mode,
            expected: HashMap::new(),
            incoming: HashMap::new(),
            scratch: Vec::new(),
        }
    }

    /// The reader's architecture.
    pub fn profile(&self) -> &ArchProfile {
        &self.profile
    }

    /// The conversion mode in force for newly discovered formats.
    pub fn mode(&self) -> ConversionMode {
        self.mode
    }

    /// Declare a record format this reader wants, laid out for its own
    /// architecture. Matching is by format *name*; fields are later matched
    /// by field name.
    pub fn expect(&mut self, schema: &Schema) -> Result<(), PbioError> {
        let layout = Arc::new(Layout::of(schema, &self.profile)?);
        self.expected.insert(schema.name().to_owned(), layout);
        Ok(())
    }

    /// Handle a format-registration message: deserialize the wire layout and
    /// prepare the receive path (plan + converter) once.
    pub fn on_format(&mut self, id: u32, meta: &[u8]) -> Result<Arc<Layout>, PbioError> {
        let wire = Arc::new(deserialize_layout(meta)?);
        let (plan, prepared) = match self.expected.get(wire.format_name()) {
            None => (None, Prepared::Reflect),
            Some(native) => {
                let plan = Arc::new(Plan::build(wire.clone(), native.clone()));
                let prepared = if plan.zero_copy {
                    Prepared::ZeroCopy {
                        native: native.clone(),
                    }
                } else {
                    match self.mode {
                        ConversionMode::Interpreted => Prepared::Interp {
                            conv: InterpConverter::new(plan.clone()),
                            native: native.clone(),
                        },
                        ConversionMode::DcgNaive => Prepared::Dcg {
                            conv: Box::new(DcgConverter::compile(
                                plan.clone(),
                                CodegenMode::Naive,
                            )?),
                            native: native.clone(),
                        },
                        ConversionMode::Dcg => Prepared::Dcg {
                            conv: Box::new(DcgConverter::compile(
                                plan.clone(),
                                CodegenMode::Optimized,
                            )?),
                            native: native.clone(),
                        },
                    }
                };
                (Some(plan), prepared)
            }
        };
        self.incoming.insert(
            id,
            IncomingFormat {
                wire: wire.clone(),
                plan,
                prepared,
            },
        );
        Ok(wire)
    }

    /// Handle one data message, producing a [`RecordView`]. On the zero-copy
    /// path the view borrows `payload`; otherwise it borrows the reader's
    /// reusable conversion buffer (PBIO reuses buffers rather than
    /// allocating per record, unlike MPICH — §4.3).
    pub fn on_data<'a>(
        &'a mut self,
        id: u32,
        payload: &'a [u8],
    ) -> Result<RecordView<'a>, PbioError> {
        // Split the borrow: converters read `incoming`, conversion output
        // goes to `scratch`.
        let Reader {
            incoming, scratch, ..
        } = self;
        let entry = incoming.get(&id).ok_or(PbioError::UnknownFormat(id))?;
        match &entry.prepared {
            Prepared::ZeroCopy { native } => {
                if payload.len() < native.size() {
                    return Err(PbioError::TruncatedRecord {
                        need: native.size(),
                        have: payload.len(),
                        context: "zero-copy receive".into(),
                    });
                }
                Ok(RecordView::borrowed(payload, native.clone()))
            }
            Prepared::Interp { conv, native } => {
                conv.convert_into(payload, scratch)?;
                Ok(RecordView::converted(scratch, native.clone()))
            }
            Prepared::Dcg { conv, native } => {
                conv.convert_into(payload, scratch)?;
                Ok(RecordView::converted(scratch, native.clone()))
            }
            Prepared::Reflect => {
                if payload.len() < entry.wire.size() {
                    return Err(PbioError::TruncatedRecord {
                        need: entry.wire.size(),
                        have: payload.len(),
                        context: "reflective receive".into(),
                    });
                }
                Ok(RecordView::borrowed(payload, entry.wire.clone()))
            }
        }
    }

    /// Process every complete message in `stream`, invoking `on_record` for
    /// each data record. Returns the number of bytes consumed (callers keep
    /// the unconsumed tail for the next read).
    pub fn process<F>(&mut self, stream: &[u8], mut on_record: F) -> Result<usize, PbioError>
    where
        F: FnMut(RecordView<'_>),
    {
        let mut iter = MessageIter::new(stream);
        let mut pending: Vec<(u32, std::ops::Range<usize>)> = Vec::new();
        for msg in iter.by_ref() {
            match msg? {
                Message::Format { id, meta } => {
                    self.on_format(id, meta)?;
                }
                Message::Data { id, payload } => {
                    let start = payload.as_ptr() as usize - stream.as_ptr() as usize;
                    pending.push((id, start..start + payload.len()));
                }
            }
        }
        let consumed = iter.consumed();
        for (id, range) in pending {
            let view = self.on_data(id, &stream[range.clone()])?;
            on_record(view);
        }
        Ok(consumed)
    }

    /// The wire layout of a discovered format — PBIO *reflection*: "message
    /// formats \[can\] be inspected before the message is received" (§4.4).
    pub fn wire_layout(&self, id: u32) -> Option<&Arc<Layout>> {
        self.incoming.get(&id).map(|f| &f.wire)
    }

    /// Per-field match report for a discovered format (None until the format
    /// is seen, or when the reader had no expectation for it).
    pub fn field_reports(&self, id: u32) -> Option<&[FieldReport]> {
        self.incoming
            .get(&id)
            .and_then(|f| f.plan.as_deref())
            .map(|p| p.reports.as_slice())
    }

    /// Whether records of `id` take the zero-copy path.
    pub fn is_zero_copy(&self, id: u32) -> bool {
        matches!(
            self.incoming.get(&id).map(|f| &f.prepared),
            Some(Prepared::ZeroCopy { .. })
        )
    }

    /// DCG statistics for a format (None unless a DCG converter was built).
    pub fn dcg_stats(&self, id: u32) -> Option<crate::codegen::CompileStats> {
        match self.incoming.get(&id).map(|f| &f.prepared) {
            Some(Prepared::Dcg { conv, .. }) => Some(*conv.stats()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::Writer;
    use pbio_types::schema::{AtomType, FieldDecl};
    use pbio_types::value::{RecordValue, Value};

    fn schema() -> Schema {
        Schema::new(
            "reading",
            vec![
                FieldDecl::atom("seq", AtomType::CInt),
                FieldDecl::atom("t", AtomType::CDouble),
                FieldDecl::atom("id", AtomType::CLong),
            ],
        )
        .unwrap()
    }

    fn value() -> RecordValue {
        RecordValue::new()
            .with("seq", 42i32)
            .with("t", 98.6f64)
            .with("id", -4i64)
    }

    fn exchange(sp: &ArchProfile, dp: &ArchProfile, mode: ConversionMode) -> (Reader, Vec<u8>) {
        let mut w = Writer::new(sp);
        let id = w.register(&schema()).unwrap();
        let mut stream = Vec::new();
        w.write_value(id, &value(), &mut stream).unwrap();
        let mut r = Reader::with_mode(dp, mode);
        r.expect(&schema()).unwrap();
        (r, stream)
    }

    #[test]
    fn homogeneous_exchange_is_zero_copy() {
        let (mut r, stream) = exchange(
            &ArchProfile::SPARC_V8,
            &ArchProfile::SPARC_V8,
            ConversionMode::Dcg,
        );
        let mut seen = 0;
        r.process(&stream, |view| {
            assert!(view.is_zero_copy());
            assert_eq!(view.get("seq"), Some(Value::I64(42)));
            assert_eq!(view.get("t"), Some(Value::F64(98.6)));
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, 1);
        assert!(r.is_zero_copy(0));
    }

    #[test]
    fn heterogeneous_exchange_converts_under_all_modes() {
        for mode in [
            ConversionMode::Interpreted,
            ConversionMode::DcgNaive,
            ConversionMode::Dcg,
        ] {
            let (mut r, stream) = exchange(&ArchProfile::SPARC_V8, &ArchProfile::X86_64, mode);
            let mut seen = 0;
            r.process(&stream, |view| {
                assert!(!view.is_zero_copy());
                assert_eq!(view.get("seq"), Some(Value::I64(42)));
                assert_eq!(view.get("t"), Some(Value::F64(98.6)));
                assert_eq!(view.get("id"), Some(Value::I64(-4)));
                seen += 1;
            })
            .unwrap();
            assert_eq!(seen, 1, "{mode:?}");
            assert!(!r.is_zero_copy(0));
        }
    }

    #[test]
    fn reflection_reads_unknown_formats() {
        let mut w = Writer::new(&ArchProfile::SPARC_V8);
        let id = w.register(&schema()).unwrap();
        let mut stream = Vec::new();
        w.write_value(id, &value(), &mut stream).unwrap();

        // Receiver never declared any expectation.
        let mut r = Reader::new(&ArchProfile::X86);
        let mut names = Vec::new();
        r.process(&stream, |view| {
            // Reflection: enumerate fields from the wire layout.
            for f in view.layout().fields() {
                names.push(f.name.clone());
            }
            assert_eq!(view.get("t"), Some(Value::F64(98.6)));
        })
        .unwrap();
        assert_eq!(names, vec!["seq", "t", "id"]);
        assert_eq!(r.wire_layout(0).unwrap().arch_name(), "sparc-v8");
    }

    #[test]
    fn type_extension_ignores_new_fields() {
        // Sender evolves: adds a field the receiver doesn't know.
        let extended = schema()
            .with_field_appended(FieldDecl::atom("extra", AtomType::CDouble))
            .unwrap();
        let mut w = Writer::new(&ArchProfile::X86);
        let id = w.register(&extended).unwrap();
        let mut v = value();
        v.set("extra", 7.5f64);
        let mut stream = Vec::new();
        w.write_value(id, &v, &mut stream).unwrap();

        let mut r = Reader::new(&ArchProfile::X86);
        r.expect(&schema()).unwrap();
        let mut seen = 0;
        r.process(&stream, |view| {
            assert_eq!(view.get("seq"), Some(Value::I64(42)));
            assert_eq!(
                view.get("extra"),
                None,
                "unknown field invisible to old receiver"
            );
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, 1);
        let reports = r.field_reports(0).unwrap();
        assert!(reports
            .iter()
            .all(|rep| rep.status == crate::plan::FieldStatus::Matched));
    }

    #[test]
    fn appended_extension_keeps_zero_copy_path() {
        // §4.4's recommended evolution: appending fields leaves homogeneous
        // receivers on the zero-copy path.
        let extended = schema()
            .with_field_appended(FieldDecl::atom("extra", AtomType::CDouble))
            .unwrap();
        let mut w = Writer::new(&ArchProfile::X86_64);
        let id = w.register(&extended).unwrap();
        let mut v = value();
        v.set("extra", 1.5f64);
        let mut stream = Vec::new();
        w.write_value(id, &v, &mut stream).unwrap();

        let mut r = Reader::new(&ArchProfile::X86_64);
        r.expect(&schema()).unwrap();
        let mut seen = 0;
        r.process(&stream, |view| {
            assert!(
                view.is_zero_copy(),
                "appended extension must stay zero-copy"
            );
            assert_eq!(view.get("seq"), Some(Value::I64(42)));
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, 1);
        assert!(r.is_zero_copy(0));

        // Prepending instead forces a conversion.
        let prepended = schema()
            .with_field_prepended(FieldDecl::atom("extra", AtomType::CDouble))
            .unwrap();
        let mut w2 = Writer::new(&ArchProfile::X86_64);
        let id2 = w2.register(&prepended).unwrap();
        let mut stream2 = Vec::new();
        w2.write_value(id2, &v, &mut stream2).unwrap();
        let mut r2 = Reader::new(&ArchProfile::X86_64);
        r2.expect(&schema()).unwrap();
        r2.process(&stream2, |view| {
            assert!(!view.is_zero_copy());
            assert_eq!(view.get("seq"), Some(Value::I64(42)));
        })
        .unwrap();
    }

    #[test]
    fn missing_field_reported_and_defaulted() {
        let reduced = schema().without_field("id").unwrap();
        let mut w = Writer::new(&ArchProfile::X86);
        let id = w.register(&reduced).unwrap();
        let mut v = RecordValue::new().with("seq", 1i32).with("t", 2.0f64);
        let mut stream = Vec::new();
        w.write_value(id, &v, &mut stream).unwrap();
        v.set("id", 0i64);

        let mut r = Reader::new(&ArchProfile::SPARC_V8);
        r.expect(&schema()).unwrap();
        r.process(&stream, |view| {
            assert_eq!(view.get("id"), Some(Value::I64(0)));
        })
        .unwrap();
        let reports = r.field_reports(0).unwrap();
        assert_eq!(
            reports.iter().find(|rep| rep.name == "id").unwrap().status,
            crate::plan::FieldStatus::Missing
        );
    }

    #[test]
    fn data_before_format_is_an_error() {
        let mut r = Reader::new(&ArchProfile::X86);
        assert!(matches!(
            r.on_data(3, &[0u8; 16]),
            Err(PbioError::UnknownFormat(3))
        ));
    }

    #[test]
    fn re_registration_replaces_format_binding() {
        // A sender restarts and reuses id 0 for a *different* layout (e.g.
        // recompiled on another architecture). The reader must rebind.
        let mut w1 = Writer::new(&ArchProfile::SPARC_V8);
        let id1 = w1.register(&schema()).unwrap();
        let mut s1 = Vec::new();
        w1.write_value(id1, &value(), &mut s1).unwrap();

        let mut w2 = Writer::new(&ArchProfile::X86_64);
        let id2 = w2.register(&schema()).unwrap();
        assert_eq!(id1, id2, "both local writers start at id 0");
        let mut s2 = Vec::new();
        w2.write_value(id2, &value(), &mut s2).unwrap();

        let mut r = Reader::new(&ArchProfile::X86);
        r.expect(&schema()).unwrap();
        let mut seen = 0;
        r.process(&s1, |view| {
            assert_eq!(view.get("t"), Some(Value::F64(98.6)));
            seen += 1;
        })
        .unwrap();
        assert_eq!(r.wire_layout(0).unwrap().arch_name(), "sparc-v8");
        r.process(&s2, |view| {
            assert_eq!(view.get("t"), Some(Value::F64(98.6)));
            seen += 1;
        })
        .unwrap();
        assert_eq!(r.wire_layout(0).unwrap().arch_name(), "x86-64");
        assert_eq!(seen, 2);
    }

    #[test]
    fn incompatible_shape_zero_fills_and_reports() {
        // Sender's "t" is an array; receiver expects a scalar: the field is
        // defaulted and reported Incompatible, everything else converts.
        let sender = Schema::new(
            "reading",
            vec![
                FieldDecl::atom("seq", AtomType::CInt),
                FieldDecl::new(
                    "t",
                    pbio_types::schema::TypeDesc::array(AtomType::CDouble, 2),
                ),
                FieldDecl::atom("id", AtomType::CLong),
            ],
        )
        .unwrap();
        let mut w = Writer::new(&ArchProfile::X86);
        let fmt = w.register(&sender).unwrap();
        let v = RecordValue::new()
            .with("seq", 42i32)
            .with("t", Value::Array(vec![1.0.into(), 2.0.into()]))
            .with("id", -4i64);
        let mut stream = Vec::new();
        w.write_value(fmt, &v, &mut stream).unwrap();

        let mut r = Reader::new(&ArchProfile::SPARC_V8);
        r.expect(&schema()).unwrap();
        r.process(&stream, |view| {
            assert_eq!(view.get("seq"), Some(Value::I64(42)));
            assert_eq!(
                view.get("t"),
                Some(Value::F64(0.0)),
                "incompatible -> default"
            );
            assert_eq!(view.get("id"), Some(Value::I64(-4)));
        })
        .unwrap();
        let reports = r.field_reports(0).unwrap();
        assert_eq!(
            reports.iter().find(|rep| rep.name == "t").unwrap().status,
            crate::plan::FieldStatus::Incompatible
        );
    }

    #[test]
    fn partial_stream_reports_consumed() {
        let (mut r, stream) = exchange(&ArchProfile::X86, &ArchProfile::X86, ConversionMode::Dcg);
        // Feed all but the last byte: only the format message completes.
        let cut = stream.len() - 1;
        let consumed = r
            .process(&stream[..cut], |_| panic!("no complete record"))
            .unwrap();
        assert!(consumed < cut);
        // Feeding the remainder from `consumed` yields the record.
        let mut seen = 0;
        r.process(&stream[consumed..], |_| seen += 1).unwrap();
        assert_eq!(seen, 1);
    }

    #[test]
    fn dcg_stats_exposed_for_heterogeneous_formats() {
        let (mut r, stream) = exchange(
            &ArchProfile::SPARC_V8,
            &ArchProfile::X86,
            ConversionMode::Dcg,
        );
        r.process(&stream, |_| {}).unwrap();
        let stats = r.dcg_stats(0).unwrap();
        assert!(stats.program_len > 0);
        let (mut r2, stream2) = exchange(
            &ArchProfile::SPARC_V8,
            &ArchProfile::SPARC_V8,
            ConversionMode::Dcg,
        );
        r2.process(&stream2, |_| {}).unwrap();
        assert!(r2.dcg_stats(0).is_none(), "zero-copy path compiles nothing");
    }
}
