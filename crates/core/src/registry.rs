//! The format server: a shared, thread-safe format registry.
//!
//! Deployed PBIO used a *format server* so that all communicating parties
//! agree on compact format identifiers and format meta-information is
//! stored (and converters are built) once per distinct format, not once per
//! connection. This module provides that component for in-process use:
//! many [`crate::Writer`]s (e.g. one per connection, across threads) share
//! one [`FormatServer`], so identical layouts get identical ids and their
//! serialized metadata is computed exactly once.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use pbio_types::layout::Layout;
use pbio_types::meta::serialize_layout;

#[derive(Default)]
struct Inner {
    /// serialized metadata -> id (exact-match dedup).
    by_meta: HashMap<Vec<u8>, u32>,
    /// id -> (layout, serialized metadata). Metadata is an `Arc<[u8]>`
    /// so transports can announce it to a peer by bumping a refcount.
    by_id: HashMap<u32, (Arc<Layout>, Arc<[u8]>)>,
    next: u32,
}

/// A shared registry assigning stable ids to distinct wire formats.
#[derive(Default)]
pub struct FormatServer {
    inner: RwLock<Inner>,
}

impl FormatServer {
    /// Create a new, empty format server.
    pub fn new() -> Arc<FormatServer> {
        Arc::new(FormatServer::default())
    }

    /// Register a layout: returns its id, the (shared) serialized metadata,
    /// and whether this call created a new entry. Identical layouts — same
    /// fields, offsets, byte order, names — always receive the same id.
    pub fn register(&self, layout: &Arc<Layout>) -> (u32, Arc<[u8]>, bool) {
        let meta = serialize_layout(layout);
        {
            let inner = self.inner.read();
            if let Some(&id) = inner.by_meta.get(&meta) {
                let (_, shared) = &inner.by_id[&id];
                return (id, shared.clone(), false);
            }
        }
        let mut inner = self.inner.write();
        // Double-checked: another thread may have registered meanwhile.
        if let Some(&id) = inner.by_meta.get(&meta) {
            let (_, shared) = &inner.by_id[&id];
            return (id, shared.clone(), false);
        }
        let id = inner.next;
        inner.next += 1;
        let shared: Arc<[u8]> = Arc::from(meta.as_slice());
        inner.by_meta.insert(meta, id);
        inner.by_id.insert(id, (layout.clone(), shared.clone()));
        (id, shared, true)
    }

    /// Register a format from its *serialized* meta-information, as a
    /// network daemon receives it during a session handshake. Deduplicates
    /// by exact metadata bytes, so a layout registered via [`register`] and
    /// the same layout arriving off the wire share one id. Returns the id,
    /// the deserialized layout, and whether this call created a new entry.
    ///
    /// [`register`]: FormatServer::register
    pub fn register_meta(
        &self,
        meta: &[u8],
    ) -> Result<(u32, Arc<Layout>, bool), crate::error::PbioError> {
        {
            let inner = self.inner.read();
            if let Some(&id) = inner.by_meta.get(meta) {
                let (layout, _) = &inner.by_id[&id];
                return Ok((id, layout.clone(), false));
            }
        }
        // Deserialize outside the write lock: it validates attacker-visible
        // bytes and can be slow; only the table insert needs exclusivity.
        let layout = Arc::new(pbio_types::meta::deserialize_layout(meta)?);
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_meta.get(meta) {
            let (layout, _) = &inner.by_id[&id];
            return Ok((id, layout.clone(), false));
        }
        let id = inner.next;
        inner.next += 1;
        let shared: Arc<[u8]> = Arc::from(meta);
        inner.by_meta.insert(meta.to_vec(), id);
        inner.by_id.insert(id, (layout.clone(), shared));
        Ok((id, layout, true))
    }

    /// Look up a layout by id.
    pub fn lookup(&self, id: u32) -> Option<Arc<Layout>> {
        self.inner.read().by_id.get(&id).map(|(l, _)| l.clone())
    }

    /// Serialized metadata for an id (shared — announcing it to a peer
    /// costs a refcount bump).
    pub fn meta(&self, id: u32) -> Option<Arc<[u8]>> {
        self.inner.read().by_id.get(&id).map(|(_, m)| m.clone())
    }

    /// Number of distinct registered formats.
    pub fn len(&self) -> usize {
        self.inner.read().by_id.len()
    }

    /// True if nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbio_types::arch::ArchProfile;
    use pbio_types::schema::{AtomType, FieldDecl, Schema};

    fn layout(name: &str, profile: &ArchProfile) -> Arc<Layout> {
        let s = Schema::new(
            name,
            vec![
                FieldDecl::atom("a", AtomType::CInt),
                FieldDecl::atom("b", AtomType::CDouble),
            ],
        )
        .unwrap();
        Arc::new(Layout::of(&s, profile).unwrap())
    }

    #[test]
    fn identical_layouts_share_an_id() {
        let server = FormatServer::new();
        let l1 = layout("m", &ArchProfile::SPARC_V8);
        let l2 = layout("m", &ArchProfile::SPARC_V8);
        let (id1, meta1, new1) = server.register(&l1);
        let (id2, meta2, new2) = server.register(&l2);
        assert_eq!(id1, id2);
        assert!(new1);
        assert!(!new2);
        assert!(Arc::ptr_eq(&meta1, &meta2), "metadata computed once");
        assert_eq!(server.len(), 1);
    }

    #[test]
    fn different_layouts_get_different_ids() {
        let server = FormatServer::new();
        let (a, _, _) = server.register(&layout("m", &ArchProfile::SPARC_V8));
        let (b, _, _) = server.register(&layout("m", &ArchProfile::X86));
        let (c, _, _) = server.register(&layout("other", &ArchProfile::SPARC_V8));
        assert_ne!(a, b, "different architecture -> different format");
        assert_ne!(a, c, "different name -> different format");
        assert_eq!(server.len(), 3);
    }

    #[test]
    fn lookup_round_trips() {
        let server = FormatServer::new();
        let l = layout("m", &ArchProfile::ALPHA);
        let (id, meta, _) = server.register(&l);
        assert_eq!(server.lookup(id).as_deref(), Some(&*l));
        assert_eq!(server.meta(id), Some(meta));
        assert_eq!(server.lookup(999), None);
        assert_eq!(server.meta(999), None);
    }

    #[test]
    fn register_meta_dedups_against_register() {
        let server = FormatServer::new();
        let l = layout("m", &ArchProfile::SPARC_V8);
        let (id, meta, _) = server.register(&l);
        // The same format arriving off the wire maps to the same id.
        let (wire_id, wire_layout, created) = server.register_meta(&meta).unwrap();
        assert_eq!(wire_id, id);
        assert!(!created);
        assert_eq!(&*wire_layout, &*l);
        // A new format arriving only as metadata gets a fresh id.
        let other = layout("other", &ArchProfile::X86);
        let other_meta = pbio_types::meta::serialize_layout(&other);
        let (oid, olayout, ocreated) = server.register_meta(&other_meta).unwrap();
        assert_ne!(oid, id);
        assert!(ocreated);
        assert_eq!(&*olayout, &*other);
        assert_eq!(server.len(), 2);
        // Garbage metadata is rejected, not registered.
        assert!(server.register_meta(&[0xFF, 0x00, 0x13]).is_err());
        assert_eq!(server.len(), 2);
    }

    #[test]
    fn concurrent_registration_is_consistent() {
        let server = FormatServer::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let server = server.clone();
            handles.push(std::thread::spawn(move || {
                let l = layout("shared", &ArchProfile::X86_64);
                server.register(&l).0
            }));
        }
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]), "{ids:?}");
        assert_eq!(server.len(), 1);
    }
}
