//! Self-describing record files — the "I/O" in Portable Binary I/O.
//!
//! Before it was a messaging substrate, PBIO was a trace-file library: a
//! program writes records in its native representation to a file, along
//! with the format meta-information, and any program on any architecture
//! can read them back later — the same NDR machinery, with the file system
//! as the wire. (This lineage continued into FFS and the ADIOS BP format.)
//!
//! A PBIO file is a fixed header followed by the exact message stream the
//! network path uses (format registrations interleaved with data records),
//! so everything about conversion, reflection and type extension applies
//! unchanged to files:
//!
//! ```text
//! file := "PBIOFILE" version:u8 message*
//! ```

use std::io::{Read, Write};

use pbio_types::arch::ArchProfile;
use pbio_types::schema::Schema;
use pbio_types::value::RecordValue;

use crate::error::PbioError;
use crate::reader::{ConversionMode, Reader};
use crate::view::RecordView;
use crate::writer::{FormatId, Writer};

/// Magic bytes opening a PBIO file.
pub const FILE_MAGIC: &[u8; 8] = b"PBIOFILE";
/// File format version.
pub const FILE_VERSION: u8 = 1;

/// Writes a PBIO record file through any [`Write`] sink.
pub struct FileWriter<W: Write> {
    writer: Writer,
    sink: W,
    buf: Vec<u8>,
    records: u64,
}

impl<W: Write> FileWriter<W> {
    /// Start a new file for a program running on `profile`.
    pub fn create(mut sink: W, profile: &ArchProfile) -> Result<FileWriter<W>, PbioError> {
        sink.write_all(FILE_MAGIC).map_err(io_err)?;
        sink.write_all(&[FILE_VERSION]).map_err(io_err)?;
        Ok(FileWriter {
            writer: Writer::new(profile),
            sink,
            buf: Vec::new(),
            records: 0,
        })
    }

    /// Register a record format (meta-information is written to the file the
    /// first time a record of this format is written).
    pub fn register(&mut self, schema: &Schema) -> Result<FormatId, PbioError> {
        self.writer.register(schema)
    }

    /// Append one record given as native bytes.
    pub fn write_record(&mut self, id: FormatId, native: &[u8]) -> Result<(), PbioError> {
        self.buf.clear();
        self.writer.write(id, native, &mut self.buf)?;
        self.sink.write_all(&self.buf).map_err(io_err)?;
        self.records += 1;
        Ok(())
    }

    /// Append one record given as a dynamic value.
    pub fn write_value(&mut self, id: FormatId, value: &RecordValue) -> Result<(), PbioError> {
        let native = self.writer.encode_value(id, value)?;
        self.write_record(id, &native)
    }

    /// Records written so far.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Flush and return the sink.
    pub fn finish(mut self) -> Result<W, PbioError> {
        self.sink.flush().map_err(io_err)?;
        Ok(self.sink)
    }
}

fn io_err(e: std::io::Error) -> PbioError {
    PbioError::Protocol(format!("file I/O error: {e}"))
}

/// Reads a PBIO record file from any [`Read`] source.
pub struct FileReader<R: Read> {
    reader: Reader,
    source: R,
    pending: Vec<u8>,
    eof: bool,
}

impl<R: Read> FileReader<R> {
    /// Open a file for a reading program on `profile` (with the default DCG
    /// conversion mode).
    pub fn open(source: R, profile: &ArchProfile) -> Result<FileReader<R>, PbioError> {
        Self::open_with_mode(source, profile, ConversionMode::Dcg)
    }

    /// Open with an explicit conversion mode.
    pub fn open_with_mode(
        mut source: R,
        profile: &ArchProfile,
        mode: ConversionMode,
    ) -> Result<FileReader<R>, PbioError> {
        let mut header = [0u8; 9];
        source
            .read_exact(&mut header)
            .map_err(|e| PbioError::Protocol(format!("cannot read file header: {e}")))?;
        if &header[..8] != FILE_MAGIC {
            return Err(PbioError::Protocol("not a PBIO file (bad magic)".into()));
        }
        if header[8] != FILE_VERSION {
            return Err(PbioError::Protocol(format!(
                "unsupported PBIO file version {}",
                header[8]
            )));
        }
        Ok(FileReader {
            reader: Reader::with_mode(profile, mode),
            source,
            pending: Vec::new(),
            eof: false,
        })
    }

    /// Declare a record format this reader wants (optional — undeclared
    /// formats are delivered reflectively in the writer's representation).
    pub fn expect(&mut self, schema: &Schema) -> Result<(), PbioError> {
        self.reader.expect(schema)
    }

    /// Read and dispatch every record in the file.
    pub fn read_all<F>(&mut self, mut on_record: F) -> Result<u64, PbioError>
    where
        F: FnMut(RecordView<'_>),
    {
        let mut count = 0u64;
        let mut chunk = [0u8; 8192];
        loop {
            if !self.eof {
                let n = self.source.read(&mut chunk).map_err(io_err)?;
                if n == 0 {
                    self.eof = true;
                } else {
                    self.pending.extend_from_slice(&chunk[..n]);
                }
            }
            let consumed = self.reader.process(&self.pending, |view| {
                count += 1;
                on_record(view);
            })?;
            self.pending.drain(..consumed);
            if self.eof {
                if !self.pending.is_empty() {
                    return Err(PbioError::TruncatedRecord {
                        need: self.pending.len() + 1,
                        have: self.pending.len(),
                        context: "trailing partial message at end of file".into(),
                    });
                }
                return Ok(count);
            }
        }
    }

    /// Access the underlying [`Reader`] (e.g. for
    /// [`Reader::field_reports`] or [`Reader::wire_layout`] after reading).
    pub fn reader(&self) -> &Reader {
        &self.reader
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbio_types::schema::{AtomType, FieldDecl, TypeDesc};
    use pbio_types::value::Value;
    use std::io::Cursor;

    fn schema() -> Schema {
        Schema::new(
            "trace",
            vec![
                FieldDecl::atom("step", AtomType::CInt),
                FieldDecl::atom("energy", AtomType::CDouble),
                FieldDecl::new("label", TypeDesc::String),
            ],
        )
        .unwrap()
    }

    fn record(step: i32) -> RecordValue {
        RecordValue::new()
            .with("step", step)
            .with("energy", step as f64 * 1.5)
            .with("label", format!("step-{step}").as_str())
    }

    fn write_file(profile: &ArchProfile, n: i32) -> Vec<u8> {
        let mut fw = FileWriter::create(Vec::new(), profile).unwrap();
        let id = fw.register(&schema()).unwrap();
        for step in 0..n {
            fw.write_value(id, &record(step)).unwrap();
        }
        assert_eq!(fw.record_count(), n as u64);
        fw.finish().unwrap()
    }

    #[test]
    fn cross_architecture_file_round_trip() {
        for wp in [&ArchProfile::SPARC_V8, &ArchProfile::X86_64] {
            let bytes = write_file(wp, 5);
            for rp in [&ArchProfile::X86, &ArchProfile::MIPS_64] {
                let mut fr = FileReader::open(Cursor::new(&bytes), rp).unwrap();
                fr.expect(&schema()).unwrap();
                let mut step = 0i32;
                let n = fr
                    .read_all(|view| {
                        assert_eq!(view.to_value().unwrap(), record(step));
                        step += 1;
                    })
                    .unwrap();
                assert_eq!(n, 5);
            }
        }
    }

    #[test]
    fn reflective_reading_without_schema() {
        // A generic file-dump tool: no expectations declared.
        let bytes = write_file(&ArchProfile::SPARC_V8, 2);
        let mut fr = FileReader::open(Cursor::new(&bytes), &ArchProfile::X86).unwrap();
        let mut names = Vec::new();
        fr.read_all(|view| {
            names = view
                .layout()
                .fields()
                .iter()
                .map(|f| f.name.clone())
                .collect();
            assert!(view.get("energy").is_some());
        })
        .unwrap();
        assert_eq!(names, vec!["step", "energy", "label"]);
        assert_eq!(fr.reader().wire_layout(0).unwrap().arch_name(), "sparc-v8");
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let err = match FileReader::open(Cursor::new(b"NOTPBIO!x".to_vec()), &ArchProfile::X86) {
            Err(e) => e,
            Ok(_) => panic!("bad magic accepted"),
        };
        assert!(matches!(err, PbioError::Protocol(_)));

        let mut bytes = write_file(&ArchProfile::X86, 1);
        bytes[8] = 99; // version
        assert!(matches!(
            FileReader::open(Cursor::new(bytes), &ArchProfile::X86),
            Err(PbioError::Protocol(_))
        ));

        assert!(FileReader::open(Cursor::new(vec![1, 2, 3]), &ArchProfile::X86).is_err());
    }

    #[test]
    fn truncated_file_reports_error() {
        let bytes = write_file(&ArchProfile::X86, 3);
        let cut = bytes.len() - 4;
        let mut fr = FileReader::open(Cursor::new(&bytes[..cut]), &ArchProfile::X86).unwrap();
        fr.expect(&schema()).unwrap();
        let err = fr.read_all(|_| {}).unwrap_err();
        assert!(matches!(err, PbioError::TruncatedRecord { .. }));
    }

    #[test]
    fn multiple_formats_in_one_file() {
        let other = Schema::new("aux", vec![FieldDecl::atom("flag", AtomType::Bool)]).unwrap();
        let mut fw = FileWriter::create(Vec::new(), &ArchProfile::ALPHA).unwrap();
        let t = fw.register(&schema()).unwrap();
        let a = fw.register(&other).unwrap();
        fw.write_value(t, &record(0)).unwrap();
        fw.write_value(a, &RecordValue::new().with("flag", true))
            .unwrap();
        fw.write_value(t, &record(1)).unwrap();
        let bytes = fw.finish().unwrap();

        let mut fr = FileReader::open(Cursor::new(&bytes), &ArchProfile::SPARC_V8).unwrap();
        fr.expect(&schema()).unwrap();
        fr.expect(&other).unwrap();
        let mut kinds = Vec::new();
        fr.read_all(|view| kinds.push(view.layout().format_name().to_owned()))
            .unwrap();
        assert_eq!(kinds, vec!["trace", "aux", "trace"]);
    }

    #[test]
    fn type_extension_applies_to_files() {
        // Old tool reading a file written by a newer program version.
        let extended = schema()
            .with_field_appended(FieldDecl::atom("extra", AtomType::CLong))
            .unwrap();
        let mut fw = FileWriter::create(Vec::new(), &ArchProfile::X86_64).unwrap();
        let id = fw.register(&extended).unwrap();
        let mut v = record(9);
        v.set("extra", 7i64);
        fw.write_value(id, &v).unwrap();
        let bytes = fw.finish().unwrap();

        let mut fr = FileReader::open(Cursor::new(&bytes), &ArchProfile::X86).unwrap();
        fr.expect(&schema()).unwrap();
        fr.read_all(|view| {
            assert_eq!(view.get("step"), Some(Value::I64(9)));
            assert_eq!(view.get("extra"), None);
        })
        .unwrap();
    }
}
