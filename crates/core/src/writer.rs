//! The sending side: Natural Data Representation encoding.
//!
//! "No translation is done at the writer's end" (§3). A [`Writer`] registers
//! record formats (computing the native layout for its architecture once)
//! and then *frames* records: a 9-byte header plus the caller's native bytes.
//! The first record of each format is preceded by a format-registration
//! message carrying the serialized layout.
//!
//! The NDR invariant — sender-side cost is O(1) in record size for
//! fixed-layout records — is what Figure 2 measures: "while MPICH's costs
//! … vary from 34 µsec for the 100 byte record up to 13 msec for the 100Kb
//! record, PBIO's cost is a flat 3 µsec" (§4.2). [`Writer::frame`] is that
//! flat cost: it emits only the header, leaving the payload for vectored
//! transmission; [`Writer::write`] additionally copies the payload into the
//! output stream (modeling a buffered socket write).

use std::collections::HashMap;
use std::sync::Arc;

use pbio_obs::Span;
use pbio_types::arch::ArchProfile;
use pbio_types::layout::Layout;
use pbio_types::meta::serialize_layout;
use pbio_types::schema::Schema;
use pbio_types::value::{encode_native, encode_native_into, RecordValue};

use crate::error::PbioError;
use crate::message::{put_header, KIND_DATA, KIND_FORMAT};
use crate::pool::BufPool;
use crate::registry::FormatServer;

/// Identifier assigned to a registered format (stream-scoped for local
/// writers; globally consistent when writers share a
/// [`crate::registry::FormatServer`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FormatId(pub u32);

struct WriterFormat {
    layout: Arc<Layout>,
    meta: Arc<[u8]>,
    announced: bool,
}

/// The sending endpoint of a PBIO stream.
pub struct Writer {
    profile: ArchProfile,
    formats: HashMap<u32, WriterFormat>,
    next_local: u32,
    server: Option<Arc<FormatServer>>,
    /// Scratch for value encoding ([`Writer::write_value`]); shareable via
    /// [`Writer::with_pool`] so co-located writers recycle one freelist.
    pool: Arc<BufPool>,
}

impl Writer {
    /// Create a writer for a machine with the given architecture profile.
    pub fn new(profile: &ArchProfile) -> Writer {
        Writer {
            profile: profile.clone(),
            formats: HashMap::new(),
            next_local: 0,
            server: None,
            pool: BufPool::new(),
        }
    }

    /// Create a writer whose format ids come from a shared
    /// [`FormatServer`], so every writer in the process assigns identical
    /// ids to identical formats (PBIO's format-server deployment).
    pub fn with_server(profile: &ArchProfile, server: Arc<FormatServer>) -> Writer {
        Writer {
            profile: profile.clone(),
            formats: HashMap::new(),
            next_local: 0,
            server: Some(server),
            pool: BufPool::new(),
        }
    }

    /// Replace this writer's scratch pool with a shared one.
    pub fn with_pool(mut self, pool: Arc<BufPool>) -> Writer {
        self.pool = pool;
        self
    }

    /// The writer's scratch pool (counters via [`BufPool::stats`]).
    pub fn pool(&self) -> &Arc<BufPool> {
        &self.pool
    }

    /// The writer's architecture.
    pub fn profile(&self) -> &ArchProfile {
        &self.profile
    }

    /// Register a record format. The layout (and its serialized
    /// meta-information) is computed once, here — never per record.
    /// Registering an identical format twice returns the same id.
    pub fn register(&mut self, schema: &Schema) -> Result<FormatId, PbioError> {
        let layout = Arc::new(Layout::of(schema, &self.profile)?);
        let (id, meta) = match &self.server {
            Some(server) => {
                let (id, meta, _) = server.register(&layout);
                (id, meta)
            }
            None => {
                let id = self.next_local;
                self.next_local += 1;
                (id, Arc::from(serialize_layout(&layout)))
            }
        };
        self.formats.entry(id).or_insert(WriterFormat {
            layout,
            meta,
            announced: false,
        });
        Ok(FormatId(id))
    }

    /// The native layout of a registered format.
    pub fn layout(&self, id: FormatId) -> Result<&Arc<Layout>, PbioError> {
        self.formats
            .get(&id.0)
            .map(|f| &f.layout)
            .ok_or(PbioError::UnknownFormat(id.0))
    }

    fn format_mut(&mut self, id: FormatId) -> Result<&mut WriterFormat, PbioError> {
        self.formats
            .get_mut(&id.0)
            .ok_or(PbioError::UnknownFormat(id.0))
    }

    fn validate_payload(
        fmt: &WriterFormat,
        payload_len: usize,
        id: FormatId,
    ) -> Result<(), PbioError> {
        let need = fmt.layout.size();
        let exact = fmt.layout.is_fixed_layout();
        if payload_len < need || (exact && payload_len != need) {
            return Err(PbioError::Protocol(format!(
                "format {} payload is {payload_len} bytes, layout requires {}{need}",
                id.0,
                if exact { "exactly " } else { "at least " }
            )));
        }
        Ok(())
    }

    /// Emit the control bytes for one record — the registration message (once
    /// per format) and the data header — *without* touching the payload.
    /// Callers transmit `payload` separately (vectored / zero-copy I/O).
    pub fn frame(
        &mut self,
        id: FormatId,
        payload_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), PbioError> {
        let fmt = self.format_mut(id)?;
        Self::validate_payload(fmt, payload_len, id)?;
        if !fmt.announced {
            fmt.announced = true;
            put_header(out, KIND_FORMAT, id.0, fmt.meta.len());
            out.extend_from_slice(&fmt.meta);
        }
        put_header(out, KIND_DATA, id.0, payload_len);
        Ok(())
    }

    /// Frame and append one record in the sender's native representation.
    /// This is the whole of PBIO's per-record sender-side work: one header
    /// and one buffered copy of the native bytes.
    pub fn write(
        &mut self,
        id: FormatId,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), PbioError> {
        self.frame(id, payload.len(), out)?;
        out.extend_from_slice(payload);
        Ok(())
    }

    /// Convenience: encode a dynamic [`RecordValue`] to the writer's native
    /// representation and write it. The encoding step models the *application*
    /// producing its data and is not part of PBIO's wire cost.
    pub fn write_value(
        &mut self,
        id: FormatId,
        value: &RecordValue,
        out: &mut Vec<u8>,
    ) -> Result<(), PbioError> {
        let layout = self.layout(id)?.clone();
        let mut native = self.pool.get(layout.size());
        {
            let _span = Span::enter(crate::metrics::encode_ns());
            encode_native_into(value, &layout, &mut native)?;
        }
        self.write(id, &native, out)
    }

    /// Encode a value to this writer's native representation without writing
    /// it (application-side data preparation). Allocates per call — a test
    /// and tooling convenience; [`Writer::write_value`] encodes through the
    /// writer's pool instead.
    pub fn encode_value(&self, id: FormatId, value: &RecordValue) -> Result<Vec<u8>, PbioError> {
        let layout = self.layout(id)?;
        Ok(encode_native(value, layout)?)
    }

    /// Forget which formats have been announced (e.g. a new connection that
    /// has not seen the registration messages).
    pub fn reset_announcements(&mut self) {
        for f in self.formats.values_mut() {
            f.announced = false;
        }
    }

    /// Number of registered formats.
    pub fn format_count(&self) -> usize {
        self.formats.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Message, MessageIter};
    use pbio_types::schema::{AtomType, FieldDecl};

    fn schema() -> Schema {
        Schema::new(
            "point",
            vec![
                FieldDecl::atom("x", AtomType::CDouble),
                FieldDecl::atom("y", AtomType::CDouble),
            ],
        )
        .unwrap()
    }

    #[test]
    fn first_write_announces_format_once() {
        let mut w = Writer::new(&ArchProfile::SPARC_V8);
        let id = w.register(&schema()).unwrap();
        let native = vec![0u8; w.layout(id).unwrap().size()];
        let mut out = Vec::new();
        w.write(id, &native, &mut out).unwrap();
        w.write(id, &native, &mut out).unwrap();
        let msgs: Vec<_> = MessageIter::new(&out).collect::<Result<_, _>>().unwrap();
        assert_eq!(msgs.len(), 3);
        assert!(matches!(msgs[0], Message::Format { id: 0, .. }));
        assert!(matches!(msgs[1], Message::Data { id: 0, .. }));
        assert!(matches!(msgs[2], Message::Data { id: 0, .. }));
    }

    #[test]
    fn payload_size_is_validated() {
        let mut w = Writer::new(&ArchProfile::X86);
        let id = w.register(&schema()).unwrap();
        let mut out = Vec::new();
        assert!(matches!(
            w.write(id, &[0u8; 3], &mut out),
            Err(PbioError::Protocol(_))
        ));
        // Oversized fixed-layout payload also rejected.
        let too_big = vec![0u8; w.layout(id).unwrap().size() + 1];
        assert!(matches!(
            w.write(id, &too_big, &mut out),
            Err(PbioError::Protocol(_))
        ));
    }

    #[test]
    fn unknown_format_id_rejected() {
        let mut w = Writer::new(&ArchProfile::X86);
        let mut out = Vec::new();
        assert!(matches!(
            w.write(FormatId(9), &[], &mut out),
            Err(PbioError::UnknownFormat(9))
        ));
    }

    #[test]
    fn frame_emits_constant_control_bytes() {
        // The NDR invariant: control bytes don't grow with the payload.
        let big = Schema::new(
            "big",
            vec![FieldDecl::new(
                "v",
                pbio_types::schema::TypeDesc::array(AtomType::CDouble, 12_500),
            )],
        )
        .unwrap();
        let mut w = Writer::new(&ArchProfile::SPARC_V8);
        let id_small = w.register(&schema()).unwrap();
        let id_big = w.register(&big).unwrap();
        let small_len = w.layout(id_small).unwrap().size();
        let big_len = w.layout(id_big).unwrap().size();

        let mut out1 = Vec::new();
        w.frame(id_small, small_len, &mut out1).unwrap();
        let mut out2 = Vec::new();
        w.frame(id_big, big_len, &mut out2).unwrap();
        // After announcement, both cost exactly one header.
        let mut out3 = Vec::new();
        w.frame(id_small, small_len, &mut out3).unwrap();
        let mut out4 = Vec::new();
        w.frame(id_big, big_len, &mut out4).unwrap();
        assert_eq!(out3.len(), out4.len());
        assert_eq!(out3.len(), crate::message::HEADER_SIZE);
    }

    #[test]
    fn write_value_round_trips_via_layout() {
        let mut w = Writer::new(&ArchProfile::X86);
        let id = w.register(&schema()).unwrap();
        let value = RecordValue::new().with("x", 1.5f64).with("y", -2.5f64);
        let mut out = Vec::new();
        w.write_value(id, &value, &mut out).unwrap();
        let msgs: Vec<_> = MessageIter::new(&out).collect::<Result<_, _>>().unwrap();
        match msgs[1] {
            Message::Data { payload, .. } => {
                let layout = w.layout(id).unwrap();
                let back = pbio_types::value::decode_native(payload, layout).unwrap();
                assert_eq!(back, value);
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shared_server_gives_consistent_ids() {
        let server = crate::registry::FormatServer::new();
        let mut w1 = Writer::with_server(&ArchProfile::X86, server.clone());
        let mut w2 = Writer::with_server(&ArchProfile::X86, server.clone());
        let id1 = w1.register(&schema()).unwrap();
        let id2 = w2.register(&schema()).unwrap();
        assert_eq!(id1, id2, "same format, same id on both connections");
        // A different-architecture writer produces a different format.
        let mut w3 = Writer::with_server(&ArchProfile::SPARC_V8, server.clone());
        let id3 = w3.register(&schema()).unwrap();
        assert_ne!(id1, id3);
        assert_eq!(server.len(), 2);
        // Re-registering on one writer is idempotent.
        assert_eq!(w1.register(&schema()).unwrap(), id1);
        assert_eq!(w1.format_count(), 1);
    }

    #[test]
    fn reset_announcements_resends_meta() {
        let mut w = Writer::new(&ArchProfile::X86);
        let id = w.register(&schema()).unwrap();
        let native = vec![0u8; w.layout(id).unwrap().size()];
        let mut out = Vec::new();
        w.write(id, &native, &mut out).unwrap();
        w.reset_announcements();
        let mut out2 = Vec::new();
        w.write(id, &native, &mut out2).unwrap();
        let msgs: Vec<_> = MessageIter::new(&out2).collect::<Result<_, _>>().unwrap();
        assert!(matches!(msgs[0], Message::Format { .. }));
    }
}
