//! The crate-wide error type.

use std::fmt;

use pbio_types::error::TypeError;
use pbio_vrisc::ExecError;

/// Errors from encoding, decoding, conversion and protocol handling.
#[derive(Debug, Clone, PartialEq)]
pub enum PbioError {
    /// An error from the type/layout layer.
    Type(TypeError),
    /// The generated conversion program faulted (truncated message).
    Exec(ExecError),
    /// Malformed message framing.
    Protocol(String),
    /// A data message referenced a format id that was never registered.
    UnknownFormat(u32),
    /// A record payload was shorter than its format requires.
    TruncatedRecord {
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
        /// What was being read.
        context: String,
    },
}

impl fmt::Display for PbioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PbioError::Type(e) => write!(f, "type error: {e}"),
            PbioError::Exec(e) => write!(f, "conversion fault: {e}"),
            PbioError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            PbioError::UnknownFormat(id) => write!(f, "unknown format id {id}"),
            PbioError::TruncatedRecord {
                need,
                have,
                context,
            } => {
                write!(
                    f,
                    "truncated record while {context}: need {need} bytes, have {have}"
                )
            }
        }
    }
}

impl std::error::Error for PbioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PbioError::Type(e) => Some(e),
            PbioError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TypeError> for PbioError {
    fn from(e: TypeError) -> PbioError {
        PbioError::Type(e)
    }
}

impl From<ExecError> for PbioError {
    fn from(e: ExecError) -> PbioError {
        PbioError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = PbioError::from(TypeError::DuplicateField("q".into()));
        assert!(e.to_string().contains('q'));
        assert!(std::error::Error::source(&e).is_some());
        let p = PbioError::Protocol("short header".into());
        assert!(p.to_string().contains("short header"));
        assert!(std::error::Error::source(&p).is_none());
    }
}
