//! Pre-resolved handles into the global obs registry for core hot paths.
//!
//! Handles resolve once per process (first use) and are plain `Arc`s after
//! that, so instrumented paths never take the registry lock. Names follow
//! the paper's component decomposition: `encode_ns` is the sender-side
//! encode stage, `convert_*_ns` the receiver-side convert stage, and
//! `plan_build_ns` / `dcg_compile_ns` the one-time per-format setup costs.

use std::sync::{Arc, OnceLock};

use pbio_obs::{Histogram, Registry};

macro_rules! global_hist {
    ($(#[$doc:meta])* $fn_name:ident => $metric:literal) => {
        $(#[$doc])*
        pub fn $fn_name() -> &'static Arc<Histogram> {
            static H: OnceLock<Arc<Histogram>> = OnceLock::new();
            H.get_or_init(|| Registry::global().histogram($metric))
        }
    };
}

global_hist!(
    /// Encode stage: [`crate::writer::Writer::write_value`].
    encode_ns => "encode_ns"
);
global_hist!(
    /// Conversion-plan construction: [`crate::plan::Plan::build`].
    plan_build_ns => "plan_build_ns"
);
global_hist!(
    /// Dynamic code generation: `DcgConverter::compile`.
    dcg_compile_ns => "dcg_compile_ns"
);
global_hist!(
    /// Convert stage through the generated-code converter.
    convert_dcg_ns => "convert_dcg_ns"
);
global_hist!(
    /// Convert stage through the interpreted converter.
    convert_interp_ns => "convert_interp_ns"
);
