//! # pbio — Portable Binary I/O with Natural Data Representation
//!
//! A from-scratch Rust reproduction of the system described in *"Efficient
//! Wire Formats for High Performance Computing"* (Bustamante, Eisenhauer,
//! Schwan, Widener — SC 2000).
//!
//! PBIO's thesis: instead of translating every record to a canonical wire
//! format (XDR, CDR, XML), transmit records in the **sender's native memory
//! layout** — the *Natural Data Representation* — accompanied, once per
//! format, by meta-information describing that layout. All heterogeneity is
//! handled at the receiver, which matches fields **by name** and converts
//! with routines produced by **dynamic code generation**:
//!
//! * sender-side cost is O(1) in record size (a header; no packing),
//! * homogeneous exchanges are **zero-copy** (records used directly from the
//!   receive buffer),
//! * heterogeneous exchanges pay one compiled conversion, near `memcpy`
//!   speed,
//! * formats can **evolve** (new fields ignored by old receivers; missing
//!   fields defaulted and reported) and be **reflected on** at run time.
//!
//! ## Quick start
//!
//! ```
//! use pbio::{Reader, Writer};
//! use pbio_types::{ArchProfile, Schema, FieldDecl, AtomType};
//! use pbio_types::value::{RecordValue, Value};
//!
//! // A mixed-field record, as the application would declare it.
//! let schema = Schema::new("sample", vec![
//!     FieldDecl::atom("seq", AtomType::CInt),
//!     FieldDecl::atom("pressure", AtomType::CDouble),
//! ]).unwrap();
//!
//! // Sender on a big-endian Sparc...
//! let mut writer = Writer::new(&ArchProfile::SPARC_V8);
//! let fmt = writer.register(&schema).unwrap();
//! let mut stream = Vec::new();
//! let rec = RecordValue::new().with("seq", 7i32).with("pressure", 101.3f64);
//! writer.write_value(fmt, &rec, &mut stream).unwrap();
//!
//! // ...receiver on a little-endian x86-64: conversion code is generated
//! // when the format is first seen, then applied per record.
//! let mut reader = Reader::new(&ArchProfile::X86_64);
//! reader.expect(&schema).unwrap();
//! reader.process(&stream, |view| {
//!     assert_eq!(view.get("seq"), Some(Value::I64(7)));
//!     assert_eq!(view.get("pressure"), Some(Value::F64(101.3)));
//! }).unwrap();
//! ```

#![warn(missing_docs)]

pub mod codegen;
pub mod error;
pub mod file;
pub mod interp;
pub mod message;
pub mod metrics;
pub mod plan;
pub mod pool;
pub mod reader;
pub mod registry;
pub mod view;
pub mod writer;

pub use codegen::{CodegenMode, CompileStats, DcgConverter};
pub use error::PbioError;
pub use file::{FileReader, FileWriter};
pub use interp::InterpConverter;
pub use plan::{FieldReport, FieldStatus, Plan, Step};
pub use pool::{BufPool, PoolStats, PooledBuf};
pub use reader::{ConversionMode, Reader};
pub use registry::FormatServer;
pub use view::{FieldHandle, RecordView};
pub use writer::{FormatId, Writer};
