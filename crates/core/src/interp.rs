//! The table-driven interpreted converter — PBIO's "initial choice" (§4.3).
//!
//! "Packages that marshal data themselves typically use … what amounts to a
//! table-driven interpreter. This interpreter marshals or unmarshals
//! application-defined data, making data movement and conversion decisions
//! based upon a description of the structure" (§4.3). This module is exactly
//! that: it walks the [`Plan`] step list for *every record*, dispatching on
//! step kind each time. Figure 4's gap between this converter and the DCG
//! converter ([`crate::codegen`]) is the paper's core performance result.

use std::sync::Arc;

use pbio_types::arch::Endianness;
use pbio_types::layout::round_up;
use pbio_types::prim;

use crate::error::PbioError;
use crate::plan::{Plan, ScalarKind, ScalarSig, Step};
use crate::pool::{BufPool, PooledBuf};

/// Alignment applied to payloads appended to the output variable region
/// (matches `pbio_types::value`'s encoder so converted images are comparable
/// to natively encoded ones).
const VAR_REGION_ALIGN: usize = 8;

/// Interpreted plan executor.
#[derive(Debug, Clone)]
pub struct InterpConverter {
    plan: Arc<Plan>,
}

impl InterpConverter {
    /// Wrap a plan for interpretation.
    pub fn new(plan: Arc<Plan>) -> InterpConverter {
        InterpConverter { plan }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Convert one incoming record to the receiver's native image.
    ///
    /// Allocates a fresh output per record — a convenience for tests and
    /// one-shot tools. Hot paths use [`InterpConverter::convert_into`] (a
    /// caller-reused buffer) or [`InterpConverter::convert_pooled`].
    pub fn convert(&self, src: &[u8]) -> Result<Vec<u8>, PbioError> {
        let mut out = Vec::new();
        self.convert_into(src, &mut out)?;
        Ok(out)
    }

    /// Convert into a buffer drawn from `pool` (it returns to the pool when
    /// the result drops): the steady state recycles a few buffers forever
    /// instead of allocating per record.
    pub fn convert_pooled(&self, src: &[u8], pool: &Arc<BufPool>) -> Result<PooledBuf, PbioError> {
        let mut out = pool.get(self.plan.dst.size());
        self.convert_into(src, &mut out)?;
        Ok(out)
    }

    /// Convert into a reusable buffer (cleared first). PBIO "reuses the
    /// receive buffer" where MPICH allocates a separate unpack buffer (§4.3);
    /// a caller-owned output buffer is the equivalent no-allocation path.
    pub fn convert_into(&self, src: &[u8], out: &mut Vec<u8>) -> Result<(), PbioError> {
        let _span = pbio_obs::Span::enter(crate::metrics::convert_interp_ns());
        let dst_size = self.plan.dst.size();
        out.clear();
        out.resize(dst_size, 0);
        exec_steps(
            &self.plan.fixed_steps,
            src,
            0,
            out,
            0,
            self.plan.src.endianness(),
            self.plan.dst.endianness(),
        )?;
        exec_steps(
            &self.plan.var_steps,
            src,
            0,
            out,
            0,
            self.plan.src.endianness(),
            self.plan.dst.endianness(),
        )?;
        Ok(())
    }
}

fn need(src: &[u8], at: usize, len: usize, what: &str) -> Result<(), PbioError> {
    if at.checked_add(len).is_none_or(|end| end > src.len()) {
        return Err(PbioError::TruncatedRecord {
            need: at + len,
            have: src.len(),
            context: what.to_owned(),
        });
    }
    Ok(())
}

/// Execute steps with the given record/element base offsets.
pub(crate) fn exec_steps(
    steps: &[Step],
    src: &[u8],
    sbase: usize,
    out: &mut Vec<u8>,
    dbase: usize,
    se: Endianness,
    de: Endianness,
) -> Result<(), PbioError> {
    for step in steps {
        match step {
            Step::CopyBytes {
                src: s,
                dst: d,
                len,
            } => {
                let at = sbase + s;
                need(src, at, *len, "copying bytes")?;
                out[dbase + d..dbase + d + len].copy_from_slice(&src[at..at + len]);
            }
            Step::SwapScalar { w, src: s, dst: d } => {
                let at = sbase + s;
                let w = *w as usize;
                need(src, at, w, "swapping scalar")?;
                let dat = dbase + d;
                for i in 0..w {
                    out[dat + i] = src[at + w - 1 - i];
                }
            }
            Step::SwapRun {
                w,
                src: s,
                dst: d,
                count,
            } => {
                let w = *w as usize;
                let at = sbase + s;
                need(src, at, w * count, "swapping scalar run")?;
                let dat = dbase + d;
                for e in 0..*count {
                    for i in 0..w {
                        out[dat + e * w + i] = src[at + e * w + w - 1 - i];
                    }
                }
            }
            Step::ConvScalar {
                from,
                to,
                src: s,
                dst: d,
            } => {
                let at = sbase + s;
                need(src, at, from.w as usize, "converting scalar")?;
                conv_scalar(*from, *to, src, at, out, dbase + d);
            }
            Step::ZeroFill { dst: d, len } => {
                out[dbase + d..dbase + d + len].fill(0);
            }
            Step::FixedLoop {
                count,
                src_stride,
                dst_stride,
                src: s,
                dst: d,
                body,
            } => {
                for i in 0..*count {
                    exec_steps(
                        body,
                        src,
                        sbase + s + i * src_stride,
                        out,
                        dbase + d + i * dst_stride,
                        se,
                        de,
                    )?;
                }
            }
            Step::VarBytes { src: s, dst: d } => {
                let at = sbase + s;
                need(src, at, 8, "reading string descriptor")?;
                let off = prim::read_uint(src, at, 4, se) as usize;
                let count = prim::read_uint(src, at + 4, 4, se) as usize;
                need(src, off, count, "reading string payload")?;
                let start = append_aligned(out);
                out.extend_from_slice(&src[off..off + count]);
                write_descriptor(out, dbase + d, de, start, count);
            }
            Step::VarLoop {
                src: s,
                dst: d,
                src_stride,
                dst_stride,
                body,
            } => {
                let at = sbase + s;
                need(src, at, 8, "reading array descriptor")?;
                let off = prim::read_uint(src, at, 4, se) as usize;
                let count = prim::read_uint(src, at + 4, 4, se) as usize;
                let total_src =
                    count
                        .checked_mul(*src_stride)
                        .ok_or(PbioError::TruncatedRecord {
                            need: usize::MAX,
                            have: src.len(),
                            context: "var array size overflow".into(),
                        })?;
                need(src, off, total_src, "reading var array payload")?;
                let start = append_aligned(out);
                out.resize(start + count * dst_stride, 0);
                for i in 0..count {
                    exec_steps(
                        body,
                        src,
                        off + i * src_stride,
                        out,
                        start + i * dst_stride,
                        se,
                        de,
                    )?;
                }
                write_descriptor(out, dbase + d, de, start, count);
            }
        }
    }
    Ok(())
}

fn append_aligned(out: &mut Vec<u8>) -> usize {
    let start = round_up(out.len(), VAR_REGION_ALIGN);
    out.resize(start, 0);
    start
}

fn write_descriptor(out: &mut [u8], at: usize, de: Endianness, start: usize, count: usize) {
    prim::write_uint(out, at, 4, de, start as u64);
    prim::write_uint(out, at + 4, 4, de, count as u64);
}

/// General scalar conversion. Semantics deliberately match the DCG backend
/// instruction-for-instruction (C-like truncation on narrowing; unsigned
/// 64-bit to float goes through i64, as `CvtI64F64` does), so the two
/// converters are bit-identical on every input.
fn conv_scalar(from: ScalarSig, to: ScalarSig, src: &[u8], at: usize, out: &mut [u8], dat: usize) {
    match from.kind {
        ScalarKind::Float => {
            let v = prim::read_float(src, at, from.w, from.endian);
            match to.kind {
                ScalarKind::Float => prim::write_float(out, dat, to.w, to.endian, v),
                _ => prim::write_uint(out, dat, to.w, to.endian, (v as i64) as u64),
            }
        }
        ScalarKind::Signed => {
            let v = prim::read_int(src, at, from.w, from.endian);
            match to.kind {
                ScalarKind::Float => prim::write_float(out, dat, to.w, to.endian, v as f64),
                _ => prim::write_uint(out, dat, to.w, to.endian, v as u64),
            }
        }
        ScalarKind::Unsigned | ScalarKind::Char | ScalarKind::Bool => {
            let v = prim::read_uint(src, at, from.w, from.endian);
            match to.kind {
                ScalarKind::Float => {
                    prim::write_float(out, dat, to.w, to.endian, (v as i64) as f64)
                }
                _ => prim::write_uint(out, dat, to.w, to.endian, v),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbio_types::arch::ArchProfile;
    use pbio_types::layout::Layout;
    use pbio_types::schema::{AtomType, FieldDecl, Schema, TypeDesc};
    use pbio_types::value::{decode_native, encode_native, RecordValue, Value};

    fn convert_between(
        schema_s: &Schema,
        schema_d: &Schema,
        sp: &ArchProfile,
        dp: &ArchProfile,
        value: &RecordValue,
    ) -> RecordValue {
        let slay = Arc::new(Layout::of(schema_s, sp).unwrap());
        let dlay = Arc::new(Layout::of(schema_d, dp).unwrap());
        let wire = encode_native(value, &slay).unwrap();
        let conv = InterpConverter::new(Arc::new(Plan::build(slay, dlay.clone())));
        let native = conv.convert(&wire).unwrap();
        decode_native(&native, &dlay).unwrap()
    }

    fn mixed() -> Schema {
        Schema::new(
            "mixed",
            vec![
                FieldDecl::atom("tag", AtomType::Char),
                FieldDecl::atom("x", AtomType::CDouble),
                FieldDecl::atom("count", AtomType::CInt),
                FieldDecl::atom("flag", AtomType::Bool),
                FieldDecl::atom("id", AtomType::CLong),
                FieldDecl::atom("ratio", AtomType::CFloat),
            ],
        )
        .unwrap()
    }

    fn mixed_value() -> RecordValue {
        RecordValue::new()
            .with("tag", Value::Char(b'Q'))
            .with("x", -17.625f64)
            .with("count", 123_456i32)
            .with("flag", true)
            .with("id", -98_765i64)
            .with("ratio", 0.25f64)
    }

    #[test]
    fn every_profile_pair_round_trips() {
        let schema = mixed();
        let value = mixed_value();
        for sp in ArchProfile::all() {
            for dp in ArchProfile::all() {
                let got = convert_between(&schema, &schema, sp, dp, &value);
                assert_eq!(got, value, "{} -> {}", sp.name, dp.name);
            }
        }
    }

    #[test]
    fn negative_long_widens_correctly() {
        // The paper's example conversion: 4-byte integer -> 8-byte integer.
        let schema = Schema::new("l", vec![FieldDecl::atom("id", AtomType::CLong)]).unwrap();
        let value = RecordValue::new().with("id", -1i64);
        let got = convert_between(
            &schema,
            &schema,
            &ArchProfile::SPARC_V8, // long = 4, BE
            &ArchProfile::X86_64,   // long = 8, LE
            &value,
        );
        assert_eq!(got.get("id"), Some(&Value::I64(-1)));
    }

    #[test]
    fn long_narrowing_truncates_like_c() {
        let schema = Schema::new("l", vec![FieldDecl::atom("id", AtomType::CLong)]).unwrap();
        // 2^33 + 5 does not fit in an i32; C truncation keeps the low bits.
        let value = RecordValue::new().with("id", (1i64 << 33) + 5);
        let got = convert_between(
            &schema,
            &schema,
            &ArchProfile::X86_64,
            &ArchProfile::SPARC_V8,
            &value,
        );
        assert_eq!(got.get("id"), Some(&Value::I64(5)));
    }

    #[test]
    fn unexpected_leading_field_still_converts() {
        // Figure 6/7 scenario: sender prepends an unknown field.
        let sender = mixed()
            .with_field_prepended(FieldDecl::atom("extra", AtomType::CDouble))
            .unwrap();
        let mut value = mixed_value();
        value.set("extra", 9.75f64);
        let got = convert_between(
            &sender,
            &mixed(),
            &ArchProfile::X86,
            &ArchProfile::X86,
            &value,
        );
        assert_eq!(got, mixed_value());
    }

    #[test]
    fn missing_field_zero_filled() {
        let sender = mixed().without_field("count").unwrap();
        let mut value = mixed_value();
        let v = value.clone();
        // Remove count from sender's data.
        value = RecordValue::new();
        for (n, val) in v.fields() {
            if n != "count" {
                value.set(n.clone(), val.clone());
            }
        }
        let got = convert_between(
            &sender,
            &mixed(),
            &ArchProfile::SPARC_V8,
            &ArchProfile::X86,
            &value,
        );
        assert_eq!(got.get("count"), Some(&Value::I64(0)));
        assert_eq!(got.get("x"), Some(&Value::F64(-17.625)));
    }

    #[test]
    fn arrays_and_nested_records_convert() {
        let inner = std::sync::Arc::new(
            Schema::new(
                "inner",
                vec![
                    FieldDecl::atom("a", AtomType::CShort),
                    FieldDecl::atom("b", AtomType::CDouble),
                ],
            )
            .unwrap(),
        );
        let schema = Schema::new(
            "nested",
            vec![
                FieldDecl::new("pts", TypeDesc::array(AtomType::CDouble, 5)),
                FieldDecl::new("in", TypeDesc::Record(inner)),
            ],
        )
        .unwrap();
        let value = RecordValue::new()
            .with(
                "pts",
                Value::Array((0..5).map(|i| Value::F64(i as f64 * 1.5)).collect()),
            )
            .with(
                "in",
                Value::Record(RecordValue::new().with("a", -2i32).with("b", 6.5f64)),
            );
        let got = convert_between(
            &schema,
            &schema,
            &ArchProfile::SPARC_V9_64,
            &ArchProfile::X86,
            &value,
        );
        assert_eq!(got, value);
    }

    #[test]
    fn strings_and_var_arrays_convert() {
        let schema = Schema::new(
            "v",
            vec![
                FieldDecl::atom("n", AtomType::CInt),
                FieldDecl::new(
                    "data",
                    TypeDesc::Var(Box::new(TypeDesc::Atom(AtomType::CDouble)), "n".into()),
                ),
                FieldDecl::new("label", TypeDesc::String),
            ],
        )
        .unwrap();
        let value = RecordValue::new()
            .with("n", 4i32)
            .with(
                "data",
                Value::Array(vec![1.0.into(), 2.0.into(), 3.0.into(), 4.0.into()]),
            )
            .with("label", "heterogeneous");
        for (sp, dp) in [
            (&ArchProfile::SPARC_V8, &ArchProfile::X86),
            (&ArchProfile::X86, &ArchProfile::SPARC_V9_64),
            (&ArchProfile::ALPHA, &ArchProfile::MIPS_N32),
        ] {
            let got = convert_between(&schema, &schema, sp, dp, &value);
            assert_eq!(got, value, "{} -> {}", sp.name, dp.name);
        }
    }

    #[test]
    fn truncated_record_is_an_error_not_a_panic() {
        let schema = mixed();
        let slay = Arc::new(Layout::of(&schema, &ArchProfile::SPARC_V8).unwrap());
        let dlay = Arc::new(Layout::of(&schema, &ArchProfile::X86).unwrap());
        let wire = encode_native(&mixed_value(), &slay).unwrap();
        let conv = InterpConverter::new(Arc::new(Plan::build(slay, dlay)));
        for cut in [0, 1, wire.len() / 2, wire.len() - 1] {
            assert!(
                matches!(
                    conv.convert(&wire[..cut]),
                    Err(PbioError::TruncatedRecord { .. })
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn corrupt_var_descriptor_is_an_error() {
        let schema = Schema::new(
            "v",
            vec![
                FieldDecl::atom("n", AtomType::CInt),
                FieldDecl::new("label", TypeDesc::String),
            ],
        )
        .unwrap();
        let slay = Arc::new(Layout::of(&schema, &ArchProfile::X86).unwrap());
        let dlay = Arc::new(Layout::of(&schema, &ArchProfile::SPARC_V8).unwrap());
        let value = RecordValue::new().with("n", 1i32).with("label", "ok");
        let mut wire = encode_native(&value, &slay).unwrap();
        let off = slay.field("label").unwrap().offset;
        prim::write_uint(&mut wire, off + 4, 4, slay.endianness(), 1 << 20); // huge count
        let conv = InterpConverter::new(Arc::new(Plan::build(slay, dlay)));
        assert!(matches!(
            conv.convert(&wire),
            Err(PbioError::TruncatedRecord { .. })
        ));
    }

    #[test]
    fn convert_into_reuses_buffer() {
        let schema = mixed();
        let slay = Arc::new(Layout::of(&schema, &ArchProfile::SPARC_V8).unwrap());
        let dlay = Arc::new(Layout::of(&schema, &ArchProfile::X86).unwrap());
        let wire = encode_native(&mixed_value(), &slay).unwrap();
        let conv = InterpConverter::new(Arc::new(Plan::build(slay, dlay.clone())));
        let mut buf = Vec::with_capacity(1024);
        let cap_ptr = buf.as_ptr();
        conv.convert_into(&wire, &mut buf).unwrap();
        assert_eq!(buf.as_ptr(), cap_ptr, "no reallocation");
        assert_eq!(decode_native(&buf, &dlay).unwrap(), mixed_value());
    }
}
