//! Capacity-classed scratch-buffer pool.
//!
//! Conversion and receive paths need a byte buffer per record/frame whose
//! size varies with the traffic. Allocating one per use puts the allocator
//! on the hot path; a single reused buffer can't be shared across
//! connections or threads. [`BufPool`] is the middle ground: a freelist of
//! `Vec<u8>`s bucketed by power-of-two capacity class. [`BufPool::get`]
//! hands out a cleared buffer of at least the requested capacity
//! (recycled when the class has one — a *hit* — freshly allocated
//! otherwise — a *miss*); dropping the returned [`PooledBuf`] gives the
//! buffer back to its class. Steady-state traffic therefore runs at ~100%
//! hits: zero heap allocation, observable through [`BufPool::stats`].

use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex};

use pbio_obs::Counter;

/// Smallest capacity class, in bytes.
const MIN_CLASS_BYTES: usize = 64;

/// Number of power-of-two classes: 64 B, 128 B, … 1 MiB.
const NUM_CLASSES: usize = 15;

/// Buffers retained per class; extras are released to the allocator so an
/// idle pool doesn't pin a traffic burst's worth of memory forever.
const MAX_PER_CLASS: usize = 32;

/// Pool counters (monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `get` calls served by recycling a pooled buffer.
    pub hits: u64,
    /// `get` calls that had to allocate.
    pub misses: u64,
}

/// A thread-safe, capacity-classed freelist of byte buffers.
///
/// Constructed behind an [`Arc`] ([`BufPool::new`]) because the buffers it
/// hands out keep a handle back to it for their return trip.
pub struct BufPool {
    classes: Mutex<[Vec<Vec<u8>>; NUM_CLASSES]>,
    // Shared obs counters so an owning component can adopt them into its
    // metric registry (`Registry::register_counter`) without double counting.
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

/// Smallest class index whose buffers hold `n` bytes, if any class does.
fn class_holding(n: usize) -> Option<usize> {
    let size = n.max(MIN_CLASS_BYTES).next_power_of_two();
    let idx = (size / MIN_CLASS_BYTES).ilog2() as usize;
    (idx < NUM_CLASSES).then_some(idx)
}

/// Largest class index whose nominal size a capacity of `cap` satisfies —
/// the class a returning buffer files under.
fn class_of_capacity(cap: usize) -> Option<usize> {
    if cap < MIN_CLASS_BYTES {
        return None;
    }
    let idx = (cap / MIN_CLASS_BYTES).ilog2() as usize;
    // Oversized buffers (beyond twice the top class) are let go rather
    // than pinned; anything else files under the top class.
    if idx >= NUM_CLASSES && cap >= MIN_CLASS_BYTES << (NUM_CLASSES + 1) {
        return None;
    }
    Some(idx.min(NUM_CLASSES - 1))
}

/// Nominal byte size of a class.
fn class_bytes(idx: usize) -> usize {
    MIN_CLASS_BYTES << idx
}

impl BufPool {
    /// A fresh, empty pool.
    pub fn new() -> Arc<BufPool> {
        Arc::new(BufPool {
            classes: Mutex::new(std::array::from_fn(|_| Vec::new())),
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
        })
    }

    /// The hit counter, shareable with a metric registry.
    pub fn hit_counter(&self) -> &Arc<Counter> {
        &self.hits
    }

    /// The miss counter, shareable with a metric registry.
    pub fn miss_counter(&self) -> &Arc<Counter> {
        &self.misses
    }

    /// A cleared buffer with capacity for at least `capacity` bytes.
    ///
    /// Requests beyond the largest class are satisfied with a one-off
    /// allocation (counted as a miss) that will not be pooled on return.
    pub fn get(self: &Arc<Self>, capacity: usize) -> PooledBuf {
        let buf = match class_holding(capacity) {
            Some(idx) => {
                let recycled = {
                    let mut classes = self.classes.lock().unwrap_or_else(|p| p.into_inner());
                    classes[idx].pop()
                };
                match recycled {
                    Some(b) => {
                        self.hits.inc();
                        b
                    }
                    None => {
                        self.misses.inc();
                        Vec::with_capacity(class_bytes(idx))
                    }
                }
            }
            None => {
                self.misses.inc();
                Vec::with_capacity(capacity)
            }
        };
        debug_assert!(buf.is_empty());
        PooledBuf {
            buf,
            pool: Some(self.clone()),
        }
    }

    fn put(&self, mut buf: Vec<u8>) {
        let Some(idx) = class_of_capacity(buf.capacity()) else {
            return;
        };
        buf.clear();
        let mut classes = self.classes.lock().unwrap_or_else(|p| p.into_inner());
        if classes[idx].len() < MAX_PER_CLASS {
            classes[idx].push(buf);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
        }
    }
}

/// A byte buffer on loan from a [`BufPool`]; returns itself on drop.
///
/// Dereferences to `Vec<u8>`, so it grows, truncates and slices like the
/// buffer it wraps. Growing past its class is fine — it simply files under
/// the larger class on return.
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: Option<Arc<BufPool>>,
}

impl PooledBuf {
    /// Detach the buffer from the pool (it will not be returned).
    pub fn detach(mut self) -> Vec<u8> {
        self.pool = None;
        std::mem::take(&mut self.buf)
    }
}

impl Deref for PooledBuf {
    type Target = Vec<u8>;

    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.put(std::mem::take(&mut self.buf));
        }
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PooledBuf({} bytes, capacity {})",
            self.buf.len(),
            self.buf.capacity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_round_up_and_file_by_capacity() {
        assert_eq!(class_holding(0), Some(0));
        assert_eq!(class_holding(64), Some(0));
        assert_eq!(class_holding(65), Some(1));
        assert_eq!(class_holding(1 << 20), Some(NUM_CLASSES - 1));
        assert_eq!(class_holding((1 << 20) + 1), None);
        assert_eq!(class_of_capacity(63), None);
        assert_eq!(class_of_capacity(64), Some(0));
        assert_eq!(class_of_capacity(127), Some(0));
        assert_eq!(class_of_capacity(1 << 20), Some(NUM_CLASSES - 1));
        // Moderately oversized still files under the top class…
        assert_eq!(class_of_capacity(1 << 21), Some(NUM_CLASSES - 1));
        // …but grossly oversized buffers are released.
        assert_eq!(class_of_capacity(1 << 28), None);
    }

    #[test]
    fn second_get_is_a_hit() {
        let pool = BufPool::new();
        let mut b = pool.get(100);
        b.extend_from_slice(&[1, 2, 3]);
        assert!(b.capacity() >= 100);
        drop(b);
        let b2 = pool.get(100);
        assert!(b2.is_empty(), "recycled buffers come back cleared");
        assert_eq!(pool.stats(), PoolStats { hits: 1, misses: 1 });
    }

    #[test]
    fn different_classes_do_not_share() {
        let pool = BufPool::new();
        drop(pool.get(64));
        let _big = pool.get(4096);
        assert_eq!(pool.stats(), PoolStats { hits: 0, misses: 2 });
    }

    #[test]
    fn grown_buffer_returns_to_its_new_class() {
        let pool = BufPool::new();
        let mut b = pool.get(64);
        b.resize(5000, 0); // grows well past class 0
        drop(b);
        let b2 = pool.get(4096);
        assert!(b2.capacity() >= 4096);
        assert_eq!(pool.stats().hits, 1, "reused under the larger class");
    }

    #[test]
    fn detach_keeps_the_bytes_and_skips_the_pool() {
        let pool = BufPool::new();
        let mut b = pool.get(64);
        b.extend_from_slice(b"keep me");
        let v = b.detach();
        assert_eq!(v, b"keep me");
        let b2 = pool.get(64);
        assert_eq!(pool.stats().hits, 0, "detached buffer never came back");
        drop(b2);
    }

    #[test]
    fn per_class_retention_is_bounded() {
        let pool = BufPool::new();
        let held: Vec<_> = (0..MAX_PER_CLASS + 10).map(|_| pool.get(64)).collect();
        drop(held);
        let reused: Vec<_> = (0..MAX_PER_CLASS + 10).map(|_| pool.get(64)).collect();
        let s = pool.stats();
        assert_eq!(s.hits, MAX_PER_CLASS as u64);
        assert_eq!(s.misses, (MAX_PER_CLASS + 10 + 10) as u64);
        drop(reused);
    }

    #[test]
    fn pool_is_shared_across_threads() {
        let pool = BufPool::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let mut b = pool.get(256);
                        b.push(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 400);
        assert!(s.hits > 0);
    }
}
