//! Message framing for the PBIO record stream.
//!
//! A PBIO byte stream interleaves two message kinds:
//!
//! * **Format registration** — sent once per (format, connection): the format
//!   id plus the serialized layout meta-information (see
//!   [`pbio_types::meta`]). This is the "meta-information that identifies
//!   these formats" accompanying NDR data (§1).
//! * **Data** — the format id plus the record payload *in the sender's
//!   native representation*, copied verbatim from sender memory.
//!
//! Headers are fixed-size and big-endian (network order), like the protocol
//! headers of the systems the paper compares against; their cost is constant
//! and tiny, preserving the paper's cost model where per-record sender work
//! is O(1) for fixed-layout records.
//!
//! ```text
//! message  := kind:u8  format_id:u32be  len:u32be  body[len]
//! kind     := 0x01 (format registration) | 0x02 (data)
//! ```

use crate::error::PbioError;

/// Byte identifying a format-registration message.
pub const KIND_FORMAT: u8 = 0x01;
/// Byte identifying a data message.
pub const KIND_DATA: u8 = 0x02;
/// Size of the fixed message header.
pub const HEADER_SIZE: usize = 9;

/// A parsed message borrowing its body from the input buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Message<'a> {
    /// Format meta-information announcement.
    Format {
        /// Stream-scoped format id.
        id: u32,
        /// Serialized layout (see [`pbio_types::meta::deserialize_layout`]).
        meta: &'a [u8],
    },
    /// One record in the sender's native representation.
    Data {
        /// Stream-scoped format id.
        id: u32,
        /// The native record image (fixed part + variable region).
        payload: &'a [u8],
    },
}

/// Append a message header to `out`.
pub fn put_header(out: &mut Vec<u8>, kind: u8, id: u32, len: usize) {
    debug_assert!(len <= u32::MAX as usize);
    out.push(kind);
    out.extend_from_slice(&id.to_be_bytes());
    out.extend_from_slice(&(len as u32).to_be_bytes());
}

/// Parse one message from the front of `buf`. Returns the message and the
/// number of bytes consumed, or `Ok(None)` if the buffer holds an incomplete
/// message (more bytes needed).
pub fn parse_message(buf: &[u8]) -> Result<Option<(Message<'_>, usize)>, PbioError> {
    if buf.len() < HEADER_SIZE {
        return Ok(None);
    }
    let kind = buf[0];
    let id = u32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]);
    let len = u32::from_be_bytes([buf[5], buf[6], buf[7], buf[8]]) as usize;
    let total = HEADER_SIZE + len;
    if buf.len() < total {
        return Ok(None);
    }
    let body = &buf[HEADER_SIZE..total];
    let msg = match kind {
        KIND_FORMAT => Message::Format { id, meta: body },
        KIND_DATA => Message::Data { id, payload: body },
        other => {
            return Err(PbioError::Protocol(format!(
                "unknown message kind {other:#04x}"
            )))
        }
    };
    Ok(Some((msg, total)))
}

/// Iterate over all complete messages in `buf`.
pub struct MessageIter<'a> {
    buf: &'a [u8],
    pos: usize,
    failed: bool,
}

impl<'a> MessageIter<'a> {
    /// Iterate messages in `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> MessageIter<'a> {
        MessageIter {
            buf,
            pos: 0,
            failed: false,
        }
    }

    /// Bytes consumed so far (useful for stream buffering: unconsumed bytes
    /// are the prefix of the next read).
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

impl<'a> Iterator for MessageIter<'a> {
    type Item = Result<Message<'a>, PbioError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match parse_message(&self.buf[self.pos..]) {
            Ok(Some((msg, used))) => {
                self.pos += used;
                Some(Ok(msg))
            }
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let mut buf = Vec::new();
        put_header(&mut buf, KIND_DATA, 7, 3);
        buf.extend_from_slice(b"abc");
        let (msg, used) = parse_message(&buf).unwrap().unwrap();
        assert_eq!(used, 12);
        assert_eq!(
            msg,
            Message::Data {
                id: 7,
                payload: b"abc"
            }
        );
    }

    #[test]
    fn incomplete_messages_return_none() {
        let mut buf = Vec::new();
        put_header(&mut buf, KIND_FORMAT, 1, 10);
        buf.extend_from_slice(b"short");
        assert_eq!(parse_message(&buf).unwrap(), None);
        assert_eq!(parse_message(&buf[..3]).unwrap(), None);
        assert_eq!(parse_message(&[]).unwrap(), None);
    }

    #[test]
    fn unknown_kind_is_an_error() {
        let mut buf = Vec::new();
        put_header(&mut buf, 0x77, 1, 0);
        assert!(matches!(parse_message(&buf), Err(PbioError::Protocol(_))));
    }

    #[test]
    fn iterator_walks_stream_and_reports_consumed() {
        let mut buf = Vec::new();
        put_header(&mut buf, KIND_FORMAT, 1, 2);
        buf.extend_from_slice(b"m1");
        put_header(&mut buf, KIND_DATA, 1, 4);
        buf.extend_from_slice(b"d4ta");
        // Trailing partial message.
        put_header(&mut buf, KIND_DATA, 1, 100);
        buf.extend_from_slice(b"partial");

        let mut it = MessageIter::new(&buf);
        assert_eq!(
            it.next().unwrap().unwrap(),
            Message::Format { id: 1, meta: b"m1" }
        );
        assert_eq!(
            it.next().unwrap().unwrap(),
            Message::Data {
                id: 1,
                payload: b"d4ta"
            }
        );
        assert!(it.next().is_none());
        assert_eq!(it.consumed(), 11 + 13);
    }

    #[test]
    fn iterator_stops_after_error() {
        let mut buf = Vec::new();
        put_header(&mut buf, 0x55, 1, 0);
        put_header(&mut buf, KIND_DATA, 1, 0);
        let mut it = MessageIter::new(&buf);
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none());
    }
}
