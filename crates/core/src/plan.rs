//! Conversion planning: match an incoming wire format against the receiver's
//! native layout and produce an executable plan.
//!
//! PBIO's receiver establishes "correspondence between fields in incoming and
//! expected records … by field name, with no weight placed on size or
//! ordering" (§3). The plan built here captures every discrepancy the paper
//! enumerates: byte order, data type sizes (`long` vs `int`), and compiler
//! structure layout — plus the type-extension cases of §4.4 (unexpected
//! incoming fields are skipped; expected-but-missing fields are zero-filled
//! and reported).
//!
//! A [`Plan`] is backend-neutral: the table-driven interpreter
//! ([`crate::interp`]) walks it per record (the paper's "initial choice"),
//! while the DCG backend ([`crate::codegen`]) compiles it once into a
//! `pbio-vrisc` program.

use std::sync::Arc;

use pbio_types::arch::Endianness;
use pbio_types::layout::{ConcreteType, Layout};

/// Scalar classification used by conversion steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarKind {
    /// Two's-complement signed integer.
    Signed,
    /// Unsigned integer.
    Unsigned,
    /// IEEE-754 float.
    Float,
    /// Text character (1 byte).
    Char,
    /// Boolean (1 byte).
    Bool,
}

/// Width + kind + byte order of one scalar as it sits in a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalarSig {
    /// Width in bytes (1, 2, 4 or 8).
    pub w: u8,
    /// Scalar class.
    pub kind: ScalarKind,
    /// Byte order in the buffer.
    pub endian: Endianness,
}

impl ScalarSig {
    fn of(ty: &ConcreteType, endian: Endianness) -> Option<ScalarSig> {
        Some(match ty {
            ConcreteType::Int {
                bytes,
                signed: true,
            } => ScalarSig {
                w: *bytes,
                kind: ScalarKind::Signed,
                endian,
            },
            ConcreteType::Int {
                bytes,
                signed: false,
            } => ScalarSig {
                w: *bytes,
                kind: ScalarKind::Unsigned,
                endian,
            },
            ConcreteType::Float { bytes } => ScalarSig {
                w: *bytes,
                kind: ScalarKind::Float,
                endian,
            },
            ConcreteType::Char => ScalarSig {
                w: 1,
                kind: ScalarKind::Char,
                endian,
            },
            ConcreteType::Bool => ScalarSig {
                w: 1,
                kind: ScalarKind::Bool,
                endian,
            },
            _ => return None,
        })
    }

    /// True if a scalar with this signature can be moved to `dst` by a plain
    /// byte copy.
    pub fn copy_compatible(&self, dst: &ScalarSig) -> bool {
        self.w == dst.w && self.kind == dst.kind && (self.w == 1 || self.endian == dst.endian)
    }

    /// True if the only difference from `dst` is byte order.
    pub fn swap_compatible(&self, dst: &ScalarSig) -> bool {
        self.w == dst.w && self.kind == dst.kind && self.w > 1 && self.endian != dst.endian
    }
}

/// One conversion step. Offsets are relative to the current record (or array
/// element) base on each side.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Bytes are representation-identical: copy them verbatim.
    CopyBytes {
        /// Source offset.
        src: usize,
        /// Destination offset.
        dst: usize,
        /// Length in bytes.
        len: usize,
    },
    /// Same scalar, opposite byte order: swap while moving.
    SwapScalar {
        /// Scalar width (2, 4 or 8).
        w: u8,
        /// Source offset.
        src: usize,
        /// Destination offset.
        dst: usize,
    },
    /// `count` same-width swaps over dense runs on both sides — what a run
    /// of adjacent [`Step::SwapScalar`]s fuses into (the swap analogue of
    /// the contiguous-copy merge): one step, and one block instruction in
    /// the DCG backend, per run instead of per field.
    SwapRun {
        /// Scalar width (2, 4 or 8).
        w: u8,
        /// Source offset of element 0.
        src: usize,
        /// Destination offset of element 0.
        dst: usize,
        /// Number of scalars in the run.
        count: usize,
    },
    /// General scalar conversion (size, signedness, class and/or order).
    ConvScalar {
        /// Signature in the incoming buffer.
        from: ScalarSig,
        /// Signature expected by the receiver.
        to: ScalarSig,
        /// Source offset.
        src: usize,
        /// Destination offset.
        dst: usize,
    },
    /// Zero destination bytes (missing or incompatible source field, or the
    /// tail of a shrunken array).
    ZeroFill {
        /// Destination offset.
        dst: usize,
        /// Length in bytes.
        len: usize,
    },
    /// Convert `count` array elements; body offsets are element-relative.
    FixedLoop {
        /// Number of elements to convert.
        count: usize,
        /// Source element stride.
        src_stride: usize,
        /// Destination element stride.
        dst_stride: usize,
        /// Source offset of element 0.
        src: usize,
        /// Destination offset of element 0.
        dst: usize,
        /// Per-element steps.
        body: Vec<Step>,
    },
    /// Copy a string payload: read the source descriptor, append the bytes to
    /// the destination's variable region, write the destination descriptor.
    VarBytes {
        /// Source descriptor offset.
        src: usize,
        /// Destination descriptor offset.
        dst: usize,
    },
    /// Convert a variable-length array: runtime element count comes from the
    /// source descriptor.
    VarLoop {
        /// Source descriptor offset.
        src: usize,
        /// Destination descriptor offset.
        dst: usize,
        /// Source element stride.
        src_stride: usize,
        /// Destination element stride.
        dst_stride: usize,
        /// Per-element steps (element-relative offsets).
        body: Vec<Step>,
    },
}

impl Step {
    /// True if this step (or any nested step) touches the variable region.
    pub fn is_variable(&self) -> bool {
        match self {
            Step::VarBytes { .. } | Step::VarLoop { .. } => true,
            Step::FixedLoop { body, .. } => body.iter().any(Step::is_variable),
            _ => false,
        }
    }
}

/// Why a receiver field did or did not get data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldStatus {
    /// Matched a sender field by name.
    Matched,
    /// The sender does not provide this field; it was zero-filled.
    Missing,
    /// A sender field with this name exists but its shape is incompatible
    /// (e.g. scalar vs record); the receiver field was zero-filled.
    Incompatible,
}

/// Per-receiver-field match report.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldReport {
    /// Receiver field name.
    pub name: String,
    /// Outcome.
    pub status: FieldStatus,
}

/// A complete conversion plan from one wire format to one native layout.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The incoming (sender-native) layout.
    pub src: Arc<Layout>,
    /// The receiver's native layout.
    pub dst: Arc<Layout>,
    /// Steps whose effects stay within the fixed parts of both records.
    pub fixed_steps: Vec<Step>,
    /// Steps that produce variable-region data (strings, var arrays).
    pub var_steps: Vec<Step>,
    /// Per-receiver-field outcomes.
    pub reports: Vec<FieldReport>,
    /// True when the two layouts are bit-for-bit interchangeable.
    pub identical: bool,
    /// True when the receiver can use the wire record in place — either the
    /// layouts are identical, or the wire record is a compatible superset
    /// (extra fields appended without moving expected ones, §4.4). This is
    /// the condition for the zero-copy receive path.
    pub zero_copy: bool,
    /// Sender fields with no receiver counterpart (ignored, per §4.4).
    pub ignored_fields: Vec<String>,
}

impl Plan {
    /// Build a conversion plan from `src` (wire) to `dst` (native).
    pub fn build(src: Arc<Layout>, dst: Arc<Layout>) -> Plan {
        let _span = pbio_obs::Span::enter(crate::metrics::plan_build_ns());
        let identical = src.wire_identical(&dst);
        let zero_copy = identical || dst.zero_copy_prefix_of(&src);
        let mut fixed_steps = Vec::new();
        let mut var_steps = Vec::new();
        let mut reports = Vec::with_capacity(dst.fields().len());

        for dfield in dst.fields() {
            match src.field(&dfield.name) {
                None => {
                    reports.push(FieldReport {
                        name: dfield.name.clone(),
                        status: FieldStatus::Missing,
                    });
                    fixed_steps.push(Step::ZeroFill {
                        dst: dfield.offset,
                        len: dfield.size,
                    });
                }
                Some(sfield) => {
                    let mut steps = Vec::new();
                    let ok = build_pair(
                        &sfield.ty,
                        &dfield.ty,
                        sfield.offset,
                        dfield.offset,
                        src.endianness(),
                        dst.endianness(),
                        &mut steps,
                    );
                    if ok {
                        reports.push(FieldReport {
                            name: dfield.name.clone(),
                            status: FieldStatus::Matched,
                        });
                        for s in steps {
                            if s.is_variable() {
                                var_steps.push(s);
                            } else {
                                fixed_steps.push(s);
                            }
                        }
                    } else {
                        reports.push(FieldReport {
                            name: dfield.name.clone(),
                            status: FieldStatus::Incompatible,
                        });
                        fixed_steps.push(Step::ZeroFill {
                            dst: dfield.offset,
                            len: dfield.size,
                        });
                    }
                }
            }
        }

        let ignored_fields = src
            .fields()
            .iter()
            .filter(|sf| dst.field(&sf.name).is_none())
            .map(|sf| sf.name.clone())
            .collect();

        let fixed_steps = merge_copies(fixed_steps);
        Plan {
            src,
            dst,
            fixed_steps,
            var_steps,
            reports,
            identical,
            zero_copy,
            ignored_fields,
        }
    }

    /// All steps, fixed first (the order the interpreter executes them).
    pub fn steps(&self) -> impl Iterator<Item = &Step> {
        self.fixed_steps.iter().chain(self.var_steps.iter())
    }

    /// Report for one receiver field.
    pub fn report(&self, name: &str) -> Option<FieldStatus> {
        self.reports
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.status)
    }

    /// True if every receiver field matched a sender field.
    pub fn fully_matched(&self) -> bool {
        self.reports
            .iter()
            .all(|r| r.status == FieldStatus::Matched)
    }
}

/// Build steps converting one (src type, dst type) pair. Returns false if the
/// shapes are incompatible (caller zero-fills).
fn build_pair(
    sty: &ConcreteType,
    dty: &ConcreteType,
    soff: usize,
    doff: usize,
    se: Endianness,
    de: Endianness,
    out: &mut Vec<Step>,
) -> bool {
    // Scalar -> scalar.
    if let (Some(ssig), Some(dsig)) = (ScalarSig::of(sty, se), ScalarSig::of(dty, de)) {
        out.push(scalar_step(ssig, dsig, soff, doff));
        return true;
    }
    match (sty, dty) {
        (
            ConcreteType::FixedArray {
                elem: selem,
                count: scount,
                stride: sstride,
            },
            ConcreteType::FixedArray {
                elem: delem,
                count: dcount,
                stride: dstride,
            },
        ) => {
            let n = (*scount).min(*dcount);
            if !emit_array(selem, delem, *sstride, *dstride, n, soff, doff, se, de, out) {
                return false;
            }
            if dcount > scount {
                out.push(Step::ZeroFill {
                    dst: doff + n * dstride,
                    len: (dcount - n) * dstride,
                });
            }
            true
        }
        (ConcreteType::Record(slay), ConcreteType::Record(dlay)) => {
            // Recursive by-name matching of subfields, inlined with adjusted
            // offsets (the paper's "subroutines to convert complex subtypes").
            for df in dlay.fields() {
                match slay.field(&df.name) {
                    None => out.push(Step::ZeroFill {
                        dst: doff + df.offset,
                        len: df.size,
                    }),
                    Some(sf) => {
                        if !build_pair(
                            &sf.ty,
                            &df.ty,
                            soff + sf.offset,
                            doff + df.offset,
                            slay.endianness(),
                            dlay.endianness(),
                            out,
                        ) {
                            out.push(Step::ZeroFill {
                                dst: doff + df.offset,
                                len: df.size,
                            });
                        }
                    }
                }
            }
            true
        }
        (ConcreteType::String, ConcreteType::String) => {
            out.push(Step::VarBytes {
                src: soff,
                dst: doff,
            });
            true
        }
        (
            ConcreteType::VarArray {
                elem: selem,
                stride: sstride,
                ..
            },
            ConcreteType::VarArray {
                elem: delem,
                stride: dstride,
                ..
            },
        ) => {
            let mut body = Vec::new();
            if !build_pair(selem, delem, 0, 0, se, de, &mut body) {
                return false;
            }
            out.push(Step::VarLoop {
                src: soff,
                dst: doff,
                src_stride: *sstride,
                dst_stride: *dstride,
                body,
            });
            true
        }
        _ => false,
    }
}

fn scalar_step(from: ScalarSig, to: ScalarSig, src: usize, dst: usize) -> Step {
    if from.copy_compatible(&to) {
        Step::CopyBytes {
            src,
            dst,
            len: from.w as usize,
        }
    } else if from.swap_compatible(&to) {
        Step::SwapScalar {
            w: from.w,
            src,
            dst,
        }
    } else {
        Step::ConvScalar { from, to, src, dst }
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_array(
    selem: &ConcreteType,
    delem: &ConcreteType,
    sstride: usize,
    dstride: usize,
    n: usize,
    soff: usize,
    doff: usize,
    se: Endianness,
    de: Endianness,
    out: &mut Vec<Step>,
) -> bool {
    if n == 0 {
        return true;
    }
    let mut body = Vec::new();
    if !build_pair(selem, delem, 0, 0, se, de, &mut body) {
        return false;
    }
    // Whole-array fast paths when elements are dense on both sides.
    if body.len() == 1 {
        match body[0] {
            Step::CopyBytes {
                src: 0,
                dst: 0,
                len,
            } if len == sstride && len == dstride => {
                out.push(Step::CopyBytes {
                    src: soff,
                    dst: doff,
                    len: n * len,
                });
                return true;
            }
            _ => {}
        }
    }
    out.push(Step::FixedLoop {
        count: n,
        src_stride: sstride,
        dst_stride: dstride,
        src: soff,
        dst: doff,
        body,
    });
    true
}

/// Merge adjacent steps that are contiguous on both sides: `CopyBytes` runs
/// become one big copy (what makes the homogeneous mismatch case of Figure 7
/// cost roughly one `memcpy` per contiguous region rather than one per
/// field), `ZeroFill` runs coalesce, and runs of same-width `SwapScalar`s
/// whose scalars are dense on both sides fuse into a single
/// [`Step::SwapRun`] — one step (and one DCG block instruction) per run, so
/// a struct of many like-typed fields converts like an array.
fn merge_copies(steps: Vec<Step>) -> Vec<Step> {
    let mut out: Vec<Step> = Vec::with_capacity(steps.len());
    for s in steps {
        if let (
            Some(Step::CopyBytes {
                src: psrc,
                dst: pdst,
                len: plen,
            }),
            Step::CopyBytes { src, dst, len },
        ) = (out.last_mut(), &s)
        {
            if *psrc + *plen == *src && *pdst + *plen == *dst {
                *plen += *len;
                continue;
            }
        }
        // Merge adjacent zero-fills too.
        if let (
            Some(Step::ZeroFill {
                dst: pdst,
                len: plen,
            }),
            Step::ZeroFill { dst, len },
        ) = (out.last_mut(), &s)
        {
            if *pdst + *plen == *dst {
                *plen += *len;
                continue;
            }
        }
        // Fuse same-width byte-swaps over dense runs. A pair of adjacent
        // SwapScalars starts a SwapRun; further scalars extend it.
        if let Step::SwapScalar { w, src, dst } = &s {
            let stride = *w as usize;
            let pair = match out.last() {
                Some(Step::SwapScalar {
                    w: pw,
                    src: psrc,
                    dst: pdst,
                }) if pw == w && *psrc + stride == *src && *pdst + stride == *dst => {
                    Some(Step::SwapRun {
                        w: *w,
                        src: *psrc,
                        dst: *pdst,
                        count: 2,
                    })
                }
                _ => None,
            };
            if let Some(run) = pair {
                *out.last_mut().unwrap() = run;
                continue;
            }
            if let Some(Step::SwapRun {
                w: pw,
                src: psrc,
                dst: pdst,
                count,
            }) = out.last_mut()
            {
                if *pw == *w && *psrc + *count * stride == *src && *pdst + *count * stride == *dst {
                    *count += 1;
                    continue;
                }
            }
        }
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbio_types::arch::ArchProfile;
    use pbio_types::schema::{AtomType, FieldDecl, Schema, TypeDesc};

    fn layouts(schema: &Schema, sp: &ArchProfile, dp: &ArchProfile) -> (Arc<Layout>, Arc<Layout>) {
        (
            Arc::new(Layout::of(schema, sp).unwrap()),
            Arc::new(Layout::of(schema, dp).unwrap()),
        )
    }

    fn mixed() -> Schema {
        Schema::new(
            "mixed",
            vec![
                FieldDecl::atom("tag", AtomType::Char),
                FieldDecl::atom("x", AtomType::CDouble),
                FieldDecl::atom("count", AtomType::CInt),
                FieldDecl::atom("id", AtomType::CLong),
            ],
        )
        .unwrap()
    }

    #[test]
    fn identical_layouts_plan_is_zero_copy() {
        let (s, d) = layouts(&mixed(), &ArchProfile::SPARC_V8, &ArchProfile::SPARC_V8);
        let plan = Plan::build(s, d);
        assert!(plan.identical);
        assert!(plan.fully_matched());
    }

    #[test]
    fn heterogeneous_plan_swaps_and_resizes() {
        // sparc-v8 (BE, long=4) -> x86-64 (LE, long=8): doubles swap, longs
        // swap *and* widen.
        let (s, d) = layouts(&mixed(), &ArchProfile::SPARC_V8, &ArchProfile::X86_64);
        let plan = Plan::build(s, d);
        assert!(!plan.identical);
        assert!(plan.fully_matched());
        let has_swap = plan
            .fixed_steps
            .iter()
            .any(|s| matches!(s, Step::SwapScalar { .. }));
        let has_conv = plan
            .fixed_steps
            .iter()
            .any(|s| matches!(s, Step::ConvScalar { from, to, .. } if from.w == 4 && to.w == 8));
        assert!(has_swap, "{:?}", plan.fixed_steps);
        assert!(has_conv, "{:?}", plan.fixed_steps);
    }

    #[test]
    fn same_endian_layout_shift_uses_copies() {
        // sparc-v8 vs mips-64: both BE, but long width differs (4 vs 8) so
        // offsets shift; most fields become copies at different offsets.
        let (s, d) = layouts(&mixed(), &ArchProfile::SPARC_V8, &ArchProfile::MIPS_64);
        let plan = Plan::build(s, d);
        assert!(!plan.identical);
        assert!(plan.fully_matched());
        assert!(plan
            .fixed_steps
            .iter()
            .all(|s| !matches!(s, Step::SwapScalar { .. })));
    }

    #[test]
    fn contiguous_copies_merge() {
        // Homogeneous pair: every field is CopyBytes and everything is
        // contiguous -> a single merged copy of the full record.
        let (s, d) = layouts(&mixed(), &ArchProfile::X86, &ArchProfile::X86);
        let plan = Plan::build(s, d);
        // char@0 + pad + double/int/long contiguous from 4: two regions at
        // most; padding gaps break merges only where fields aren't adjacent.
        let copies: Vec<_> = plan
            .fixed_steps
            .iter()
            .filter(|s| matches!(s, Step::CopyBytes { .. }))
            .collect();
        assert!(copies.len() <= 2, "{copies:?}");
    }

    #[test]
    fn adjacent_swaps_fuse_into_a_run() {
        // 16 consecutive i32 fields across an endianness flip: dense,
        // same-width swaps on both sides fuse into one SwapRun.
        let schema = Schema::new(
            "regs",
            (0..16)
                .map(|i| FieldDecl::atom(format!("r{i}"), AtomType::I32))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let (s, d) = layouts(&schema, &ArchProfile::SPARC_V8, &ArchProfile::X86);
        let plan = Plan::build(s, d);
        assert_eq!(plan.fixed_steps.len(), 1, "{:?}", plan.fixed_steps);
        assert!(matches!(
            plan.fixed_steps[0],
            Step::SwapRun {
                w: 4,
                src: 0,
                dst: 0,
                count: 16
            }
        ));
    }

    #[test]
    fn swap_runs_stop_at_width_changes_and_gaps() {
        // i32 i32 | i64 i64 | i16: three runs (one per width; the pair
        // fusions), never one — widths must match and offsets stay dense.
        let schema = Schema::new(
            "mixedw",
            vec![
                FieldDecl::atom("a", AtomType::I32),
                FieldDecl::atom("b", AtomType::I32),
                FieldDecl::atom("c", AtomType::I64),
                FieldDecl::atom("d", AtomType::I64),
                FieldDecl::atom("e", AtomType::I16),
            ],
        )
        .unwrap();
        let (s, d) = layouts(&schema, &ArchProfile::SPARC_V8, &ArchProfile::X86);
        let plan = Plan::build(s, d);
        let runs: Vec<_> = plan
            .fixed_steps
            .iter()
            .filter_map(|s| match s {
                Step::SwapRun { w, count, .. } => Some((*w, *count)),
                _ => None,
            })
            .collect();
        assert_eq!(runs, vec![(4, 2), (8, 2)], "{:?}", plan.fixed_steps);
        assert!(plan
            .fixed_steps
            .iter()
            .any(|s| matches!(s, Step::SwapScalar { w: 2, .. })));
    }

    #[test]
    fn unexpected_field_is_ignored() {
        let sender = mixed()
            .with_field_prepended(FieldDecl::atom("extra", AtomType::CInt))
            .unwrap();
        let s = Arc::new(Layout::of(&sender, &ArchProfile::X86).unwrap());
        let d = Arc::new(Layout::of(&mixed(), &ArchProfile::X86).unwrap());
        let plan = Plan::build(s, d);
        assert!(plan.fully_matched());
        assert_eq!(plan.ignored_fields, vec!["extra".to_string()]);
        assert!(!plan.identical, "offsets shifted; conversion required");
    }

    #[test]
    fn missing_field_is_zero_filled_and_reported() {
        let sender = mixed().without_field("id").unwrap();
        let s = Arc::new(Layout::of(&sender, &ArchProfile::X86).unwrap());
        let d = Arc::new(Layout::of(&mixed(), &ArchProfile::X86).unwrap());
        let plan = Plan::build(s, d);
        assert_eq!(plan.report("id"), Some(FieldStatus::Missing));
        assert!(plan
            .fixed_steps
            .iter()
            .any(|s| matches!(s, Step::ZeroFill { .. })));
    }

    #[test]
    fn incompatible_shape_is_reported() {
        let sender = Schema::new(
            "mixed",
            vec![FieldDecl::new("x", TypeDesc::array(AtomType::CDouble, 2))],
        )
        .unwrap();
        let receiver = Schema::new("mixed", vec![FieldDecl::atom("x", AtomType::CDouble)]).unwrap();
        let s = Arc::new(Layout::of(&sender, &ArchProfile::X86).unwrap());
        let d = Arc::new(Layout::of(&receiver, &ArchProfile::X86).unwrap());
        let plan = Plan::build(s, d);
        assert_eq!(plan.report("x"), Some(FieldStatus::Incompatible));
    }

    #[test]
    fn dense_same_repr_array_becomes_single_copy() {
        let schema = Schema::new(
            "arr",
            vec![FieldDecl::new("v", TypeDesc::array(AtomType::CDouble, 100))],
        )
        .unwrap();
        let (s, d) = layouts(&schema, &ArchProfile::X86, &ArchProfile::X86_64);
        // Same endianness, same f64: the whole array is one CopyBytes.
        let plan = Plan::build(s, d);
        assert_eq!(plan.fixed_steps.len(), 1);
        assert!(matches!(
            plan.fixed_steps[0],
            Step::CopyBytes { len: 800, .. }
        ));
    }

    #[test]
    fn swapped_array_becomes_loop() {
        let schema = Schema::new(
            "arr",
            vec![FieldDecl::new("v", TypeDesc::array(AtomType::CDouble, 100))],
        )
        .unwrap();
        let (s, d) = layouts(&schema, &ArchProfile::SPARC_V8, &ArchProfile::X86);
        let plan = Plan::build(s, d);
        assert_eq!(plan.fixed_steps.len(), 1);
        match &plan.fixed_steps[0] {
            Step::FixedLoop {
                count: 100, body, ..
            } => {
                assert_eq!(body.len(), 1);
                assert!(matches!(body[0], Step::SwapScalar { w: 8, .. }));
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn array_shrink_and_grow() {
        let sender = Schema::new(
            "a",
            vec![FieldDecl::new("v", TypeDesc::array(AtomType::CInt, 4))],
        )
        .unwrap();
        let recv_small = Schema::new(
            "a",
            vec![FieldDecl::new("v", TypeDesc::array(AtomType::CInt, 2))],
        )
        .unwrap();
        let recv_big = Schema::new(
            "a",
            vec![FieldDecl::new("v", TypeDesc::array(AtomType::CInt, 8))],
        )
        .unwrap();
        let s = Arc::new(Layout::of(&sender, &ArchProfile::X86).unwrap());
        let d1 = Arc::new(Layout::of(&recv_small, &ArchProfile::X86).unwrap());
        let d2 = Arc::new(Layout::of(&recv_big, &ArchProfile::X86).unwrap());
        let p1 = Plan::build(s.clone(), d1);
        assert!(matches!(p1.fixed_steps[0], Step::CopyBytes { len: 8, .. }));
        let p2 = Plan::build(s, d2);
        assert!(p2
            .fixed_steps
            .iter()
            .any(|s| matches!(s, Step::ZeroFill { len: 16, .. })));
    }

    #[test]
    fn var_fields_split_into_var_steps() {
        let schema = Schema::new(
            "v",
            vec![
                FieldDecl::atom("n", AtomType::CInt),
                FieldDecl::new(
                    "data",
                    TypeDesc::Var(Box::new(TypeDesc::Atom(AtomType::CDouble)), "n".into()),
                ),
                FieldDecl::new("label", TypeDesc::String),
            ],
        )
        .unwrap();
        let (s, d) = layouts(&schema, &ArchProfile::SPARC_V8, &ArchProfile::X86);
        let plan = Plan::build(s, d);
        assert_eq!(plan.var_steps.len(), 2);
        assert!(matches!(plan.var_steps[0], Step::VarLoop { .. }));
        assert!(matches!(plan.var_steps[1], Step::VarBytes { .. }));
    }

    #[test]
    fn nested_record_fields_match_by_name() {
        let inner_s = Arc::new(
            Schema::new(
                "inner",
                vec![
                    FieldDecl::atom("a", AtomType::CInt),
                    FieldDecl::atom("b", AtomType::CDouble),
                ],
            )
            .unwrap(),
        );
        // Receiver's inner record has reversed field order: matched by name.
        let inner_d = Arc::new(
            Schema::new(
                "inner",
                vec![
                    FieldDecl::atom("b", AtomType::CDouble),
                    FieldDecl::atom("a", AtomType::CInt),
                ],
            )
            .unwrap(),
        );
        let outer_s =
            Schema::new("o", vec![FieldDecl::new("in", TypeDesc::Record(inner_s))]).unwrap();
        let outer_d =
            Schema::new("o", vec![FieldDecl::new("in", TypeDesc::Record(inner_d))]).unwrap();
        let s = Arc::new(Layout::of(&outer_s, &ArchProfile::X86).unwrap());
        let d = Arc::new(Layout::of(&outer_d, &ArchProfile::X86).unwrap());
        let plan = Plan::build(s, d);
        assert!(plan.fully_matched());
        assert_eq!(
            plan.fixed_steps
                .iter()
                .filter(|s| matches!(s, Step::CopyBytes { .. }))
                .count(),
            2
        );
    }
}
