//! Zero-copy record views and typed field handles.
//!
//! When sender and receiver representations match, PBIO lets "received data
//! … be used directly from the message buffer" (§1). A [`RecordView`] is
//! that capability: it wraps bytes (borrowed straight from the receive
//! buffer on the zero-copy path, or owned after conversion) together with
//! the layout describing them, and offers field access without any up-front
//! decoding.
//!
//! [`FieldHandle`]s are the fast path: resolve a field once, then read it
//! per record with a couple of loads — the moral equivalent of a C program
//! casting the buffer to `struct foo *` and dereferencing members.

use std::borrow::Cow;
use std::sync::Arc;

use pbio_types::arch::Endianness;
use pbio_types::error::TypeError;
use pbio_types::layout::{ConcreteType, Layout};
use pbio_types::prim;
use pbio_types::value::{decode_native, RecordValue, Value};

/// A record's bytes plus the layout that gives them meaning.
#[derive(Debug, Clone)]
pub struct RecordView<'a> {
    bytes: Cow<'a, [u8]>,
    layout: Arc<Layout>,
    zero_copy: bool,
}

impl<'a> RecordView<'a> {
    /// A view borrowing directly from the receive buffer (homogeneous path).
    pub fn borrowed(bytes: &'a [u8], layout: Arc<Layout>) -> RecordView<'a> {
        RecordView {
            bytes: Cow::Borrowed(bytes),
            layout,
            zero_copy: true,
        }
    }

    /// A view over converted (owned) bytes.
    pub fn owned(bytes: Vec<u8>, layout: Arc<Layout>) -> RecordView<'static> {
        RecordView {
            bytes: Cow::Owned(bytes),
            layout,
            zero_copy: false,
        }
    }

    /// A view over converted bytes held in a caller-owned scratch buffer
    /// (borrowed, but *not* zero-copy: a conversion produced these bytes).
    pub fn converted(bytes: &'a [u8], layout: Arc<Layout>) -> RecordView<'a> {
        RecordView {
            bytes: Cow::Borrowed(bytes),
            layout,
            zero_copy: false,
        }
    }

    /// The raw native image.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The layout describing [`RecordView::bytes`].
    pub fn layout(&self) -> &Arc<Layout> {
        &self.layout
    }

    /// True if this view aliases the receive buffer (no copy, no conversion
    /// happened — the paper's homogeneous fast path).
    pub fn is_zero_copy(&self) -> bool {
        self.zero_copy
    }

    /// Resolve a field into a reusable [`FieldHandle`].
    pub fn handle(&self, name: &str) -> Option<FieldHandle> {
        FieldHandle::resolve(&self.layout, name)
    }

    /// Read one field dynamically (reflection-style access).
    pub fn get(&self, name: &str) -> Option<Value> {
        let field = self.layout.field(name)?;
        read_value(
            &self.bytes,
            &field.ty,
            field.offset,
            self.layout.endianness(),
        )
        .ok()
    }

    /// Decode the whole record into a [`RecordValue`].
    pub fn to_value(&self) -> Result<RecordValue, TypeError> {
        decode_native(&self.bytes, &self.layout)
    }

    /// Convert into an owned view (copies if currently borrowed).
    pub fn into_owned(self) -> RecordView<'static> {
        RecordView {
            bytes: Cow::Owned(self.bytes.into_owned()),
            layout: self.layout,
            zero_copy: false,
        }
    }
}

fn read_value(
    bytes: &[u8],
    ty: &ConcreteType,
    offset: usize,
    endian: Endianness,
) -> Result<Value, TypeError> {
    // Reuse the decoder in pbio-types by decoding a single-field record
    // would allocate; instead mirror the scalar fast cases and fall back to
    // decode for aggregates.
    match ty {
        ConcreteType::Int {
            bytes: w,
            signed: true,
        } => {
            check(bytes, offset, *w as usize)?;
            Ok(Value::I64(prim::read_int(bytes, offset, *w, endian)))
        }
        ConcreteType::Int {
            bytes: w,
            signed: false,
        } => {
            check(bytes, offset, *w as usize)?;
            Ok(Value::U64(prim::read_uint(bytes, offset, *w, endian)))
        }
        ConcreteType::Float { bytes: w } => {
            check(bytes, offset, *w as usize)?;
            Ok(Value::F64(prim::read_float(bytes, offset, *w, endian)))
        }
        ConcreteType::Char => {
            check(bytes, offset, 1)?;
            Ok(Value::Char(bytes[offset]))
        }
        ConcreteType::Bool => {
            check(bytes, offset, 1)?;
            Ok(Value::Bool(bytes[offset] != 0))
        }
        ConcreteType::FixedArray {
            elem,
            count,
            stride,
        } => {
            let mut items = Vec::with_capacity(*count);
            for i in 0..*count {
                items.push(read_value(bytes, elem, offset + i * stride, endian)?);
            }
            Ok(Value::Array(items))
        }
        ConcreteType::Record(sub) => {
            let mut rv = RecordValue::new();
            for f in sub.fields() {
                rv.set(
                    f.name.clone(),
                    read_value(bytes, &f.ty, offset + f.offset, endian)?,
                );
            }
            Ok(Value::Record(rv))
        }
        ConcreteType::String => {
            check(bytes, offset, 8)?;
            let start = prim::read_uint(bytes, offset, 4, endian) as usize;
            let count = prim::read_uint(bytes, offset + 4, 4, endian) as usize;
            check(bytes, start, count)?;
            let s = std::str::from_utf8(&bytes[start..start + count])
                .map_err(|_| TypeError::BadMeta("string payload is not UTF-8".into()))?;
            Ok(Value::Str(s.to_owned()))
        }
        ConcreteType::VarArray { elem, stride, .. } => {
            check(bytes, offset, 8)?;
            let start = prim::read_uint(bytes, offset, 4, endian) as usize;
            let count = prim::read_uint(bytes, offset + 4, 4, endian) as usize;
            check(bytes, start, count.saturating_mul(*stride))?;
            let mut items = Vec::with_capacity(count);
            for i in 0..count {
                items.push(read_value(bytes, elem, start + i * stride, endian)?);
            }
            Ok(Value::Array(items))
        }
    }
}

fn check(bytes: &[u8], offset: usize, len: usize) -> Result<(), TypeError> {
    if offset.checked_add(len).is_none_or(|e| e > bytes.len()) {
        return Err(TypeError::Truncated {
            context: format!("field access at offset {offset}"),
        });
    }
    Ok(())
}

/// What a [`FieldHandle`] reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HandleKind {
    Signed(u8),
    Unsigned(u8),
    Float(u8),
    Char,
    Bool,
    Str,
    Other,
}

/// A pre-resolved accessor for one scalar or string field: offset and shape
/// are looked up once, reads are then branch-light.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldHandle {
    offset: usize,
    endian: Endianness,
    kind: HandleKind,
}

impl FieldHandle {
    /// Resolve `name` against `layout`.
    pub fn resolve(layout: &Layout, name: &str) -> Option<FieldHandle> {
        let f = layout.field(name)?;
        let kind = match &f.ty {
            ConcreteType::Int {
                bytes,
                signed: true,
            } => HandleKind::Signed(*bytes),
            ConcreteType::Int {
                bytes,
                signed: false,
            } => HandleKind::Unsigned(*bytes),
            ConcreteType::Float { bytes } => HandleKind::Float(*bytes),
            ConcreteType::Char => HandleKind::Char,
            ConcreteType::Bool => HandleKind::Bool,
            ConcreteType::String => HandleKind::Str,
            _ => HandleKind::Other,
        };
        Some(FieldHandle {
            offset: f.offset,
            endian: layout.endianness(),
            kind,
        })
    }

    /// Read as a signed integer (integers, chars and bools widen).
    pub fn read_i64(&self, bytes: &[u8]) -> Option<i64> {
        match self.kind {
            HandleKind::Signed(w) => Some(prim::read_int(bytes, self.offset, w, self.endian)),
            HandleKind::Unsigned(w) => {
                i64::try_from(prim::read_uint(bytes, self.offset, w, self.endian)).ok()
            }
            HandleKind::Char | HandleKind::Bool => Some(bytes[self.offset] as i64),
            _ => None,
        }
    }

    /// Read as a float.
    pub fn read_f64(&self, bytes: &[u8]) -> Option<f64> {
        match self.kind {
            HandleKind::Float(w) => Some(prim::read_float(bytes, self.offset, w, self.endian)),
            _ => None,
        }
    }

    /// Read a string field.
    pub fn read_str<'b>(&self, bytes: &'b [u8]) -> Option<&'b str> {
        if self.kind != HandleKind::Str {
            return None;
        }
        let start = prim::read_uint(bytes, self.offset, 4, self.endian) as usize;
        let count = prim::read_uint(bytes, self.offset + 4, 4, self.endian) as usize;
        std::str::from_utf8(bytes.get(start..start + count)?).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbio_types::arch::ArchProfile;
    use pbio_types::schema::{AtomType, FieldDecl, Schema, TypeDesc};
    use pbio_types::value::encode_native;

    fn schema() -> Schema {
        Schema::new(
            "s",
            vec![
                FieldDecl::atom("a", AtomType::CInt),
                FieldDecl::atom("b", AtomType::CDouble),
                FieldDecl::atom("c", AtomType::Char),
                FieldDecl::atom("d", AtomType::Bool),
                FieldDecl::new("v", TypeDesc::array(AtomType::CFloat, 3)),
                FieldDecl::new("s", TypeDesc::String),
            ],
        )
        .unwrap()
    }

    fn value() -> RecordValue {
        RecordValue::new()
            .with("a", -5i32)
            .with("b", 3.5f64)
            .with("c", Value::Char(b'x'))
            .with("d", true)
            .with("v", Value::Array(vec![1.0.into(), 2.0.into(), 3.0.into()]))
            .with("s", "zero copy")
    }

    #[test]
    fn views_read_fields_on_all_profiles() {
        for p in ArchProfile::all() {
            let layout = Arc::new(Layout::of(&schema(), p).unwrap());
            let img = encode_native(&value(), &layout).unwrap();
            let view = RecordView::borrowed(&img, layout);
            assert!(view.is_zero_copy());
            assert_eq!(view.get("a"), Some(Value::I64(-5)));
            assert_eq!(view.get("b"), Some(Value::F64(3.5)));
            assert_eq!(view.get("c"), Some(Value::Char(b'x')));
            assert_eq!(view.get("d"), Some(Value::Bool(true)));
            assert_eq!(view.get("s"), Some(Value::Str("zero copy".into())));
            assert_eq!(
                view.get("v"),
                Some(Value::Array(vec![1.0.into(), 2.0.into(), 3.0.into()]))
            );
            assert_eq!(view.get("nope"), None);
            assert_eq!(view.to_value().unwrap(), value());
        }
    }

    #[test]
    fn handles_are_fast_path_equivalents() {
        let layout = Arc::new(Layout::of(&schema(), &ArchProfile::SPARC_V8).unwrap());
        let img = encode_native(&value(), &layout).unwrap();
        let view = RecordView::borrowed(&img, layout);
        let ha = view.handle("a").unwrap();
        let hb = view.handle("b").unwrap();
        let hs = view.handle("s").unwrap();
        assert_eq!(ha.read_i64(view.bytes()), Some(-5));
        assert_eq!(ha.read_f64(view.bytes()), None);
        assert_eq!(hb.read_f64(view.bytes()), Some(3.5));
        assert_eq!(hs.read_str(view.bytes()), Some("zero copy"));
        assert_eq!(hs.read_i64(view.bytes()), None);
    }

    #[test]
    fn owned_views_are_not_zero_copy() {
        let layout = Arc::new(Layout::of(&schema(), &ArchProfile::X86).unwrap());
        let img = encode_native(&value(), &layout).unwrap();
        let view = RecordView::owned(img, layout);
        assert!(!view.is_zero_copy());
        assert_eq!(view.get("a"), Some(Value::I64(-5)));
        let owned = view.into_owned();
        assert!(!owned.is_zero_copy());
    }

    #[test]
    fn truncated_view_reads_fail_cleanly() {
        let layout = Arc::new(Layout::of(&schema(), &ArchProfile::X86).unwrap());
        let img = encode_native(&value(), &layout).unwrap();
        let view = RecordView::borrowed(&img[..4], layout);
        assert_eq!(view.get("b"), None);
        assert!(view.to_value().is_err());
    }
}
