//! A bounded ring buffer of recent trace events.
//!
//! The ring is preallocated at construction; pushing overwrites the oldest
//! slot and never allocates. Stages are `&'static str` so events are plain
//! `Copy` data.

use std::sync::Mutex;

use crate::registry::epoch_ns;

/// One recorded event: a stage label, a timestamp relative to the process
/// observation epoch, and a free-form value (duration, count, error code...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Stage label (e.g. `"drop_oldest"`, `"stats_tick"`).
    pub stage: &'static str,
    /// Nanoseconds since [`epoch_ns`]'s epoch at push time.
    pub at_ns: u64,
    /// Event-specific value.
    pub value: u64,
}

struct Inner {
    slots: Box<[TraceEvent]>,
    next: usize,
    len: usize,
}

/// Fixed-capacity ring of [`TraceEvent`]s.
pub struct TraceRing {
    inner: Mutex<Inner>,
}

impl TraceRing {
    /// Preallocate a ring holding `capacity` events (min 1).
    pub fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        let empty = TraceEvent {
            stage: "",
            at_ns: 0,
            value: 0,
        };
        TraceRing {
            inner: Mutex::new(Inner {
                slots: vec![empty; capacity].into_boxed_slice(),
                next: 0,
                len: 0,
            }),
        }
    }

    /// Append an event, overwriting the oldest when full.
    pub fn push(&self, stage: &'static str, value: u64) {
        let at_ns = epoch_ns();
        let mut inner = self.inner.lock().unwrap();
        let cap = inner.slots.len();
        let next = inner.next;
        inner.slots[next] = TraceEvent {
            stage,
            at_ns,
            value,
        };
        inner.next = (next + 1) % cap;
        inner.len = (inner.len + 1).min(cap);
    }

    /// The buffered events, oldest first.
    pub fn recent(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock().unwrap();
        let cap = inner.slots.len();
        let start = (inner.next + cap - inner.len) % cap;
        (0..inner.len)
            .map(|i| inner.slots[(start + i) % cap])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_the_most_recent() {
        let ring = TraceRing::new(3);
        for i in 0..5u64 {
            ring.push("tick", i);
        }
        let events = ring.recent();
        let values: Vec<u64> = events.iter().map(|e| e.value).collect();
        assert_eq!(values, [2, 3, 4]);
        assert!(events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    }

    #[test]
    fn partial_fill_in_order() {
        let ring = TraceRing::new(8);
        ring.push("a", 1);
        ring.push("b", 2);
        let stages: Vec<&str> = ring.recent().iter().map(|e| e.stage).collect();
        assert_eq!(stages, ["a", "b"]);
    }
}
