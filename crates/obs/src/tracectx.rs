//! Wire-propagated trace context and per-hop trace records.
//!
//! A sampled publish carries a compact [`TraceCtx`] in a fixed-size
//! trailer appended to the event's NDR bytes. Every stage that touches
//! the event — daemon ingress, filter evaluation, fan-out enqueue,
//! writer-thread flush, client decode — re-stamps the context into a
//! [`TraceHop`] record, which is buffered in a bounded [`TraceSink`] and
//! later exported over the reserved `$trace` channel as an ordinary PBIO
//! record (see [`crate::export::hop_schema`]).
//!
//! Head-based sampling lives in [`TraceSampler`]: when sampling is off
//! the decision is a single relaxed atomic load, so the tracing
//! machinery costs the untraced hot path no allocation and no lock.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// Byte length of the trace trailer carried on `PUBLISH`/`EVENT` frames:
/// `trace_id:u64be  origin_ns:u64be  span_id:u32be  flags:u8  reserved[3]`.
pub const TRACE_TRAILER_LEN: usize = 24;

/// [`TraceCtx::flags`] bit: this trace was selected by head-based
/// sampling at the publisher. Currently the only defined flag; a decoder
/// rejects trailers with unknown flag bits or nonzero reserved bytes.
pub const FLAG_SAMPLED: u8 = 0x01;

/// Hop kind: the publisher stamped the event (duration 0; the timestamp
/// is the trailer's origin).
pub const HOP_PUBLISH: u32 = 0;
/// Hop kind: the daemon read the event off the publisher's socket.
pub const HOP_INGRESS: u32 = 1;
/// Hop kind: subscriber filters were evaluated for the event's channel.
pub const HOP_FILTER: u32 = 2;
/// Hop kind: the event was enqueued on one subscriber's outbound queue.
pub const HOP_ENQUEUE: u32 = 3;
/// Hop kind: a reactor shard flushed the event's frame to the socket.
pub const HOP_FLUSH: u32 = 4;
/// Hop kind: a subscribing client decoded (or zero-copy viewed) the event.
pub const HOP_DECODE: u32 = 5;
/// Hop kind: the event crossed a daemon↔daemon mesh link — stamped once
/// per link crossing (publish forwarded to the channel's home daemon, or
/// a home-side event injected into a peer's local fan-out). Only meshed
/// deployments record it; single-daemon timelines never do.
pub const HOP_RELAY: u32 = 6;
/// Number of hop kinds (array-sizing bound for per-hop tables).
pub const HOP_COUNT: usize = 7;
/// Number of hop kinds every complete end-to-end timeline carries —
/// the kinds below [`HOP_RELAY`], which is optional (mesh-only).
pub const HOP_REQUIRED: usize = 6;

/// Human-readable name of a hop kind.
pub fn hop_name(hop: u32) -> &'static str {
    match hop {
        HOP_PUBLISH => "publish",
        HOP_INGRESS => "ingress",
        HOP_FILTER => "filter",
        HOP_ENQUEUE => "enqueue",
        HOP_FLUSH => "flush",
        HOP_DECODE => "decode",
        HOP_RELAY => "relay",
        _ => "unknown",
    }
}

/// The trace context a sampled event carries across the wire.
///
/// Timestamps are nanoseconds in the *daemon's* observation timebase:
/// clients stamp `origin_ns` already corrected through the clock offset
/// measured during the session handshake, so every hop of one trace is
/// directly comparable no matter which process recorded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Process-unique random id shared by every hop of one event.
    pub trace_id: u64,
    /// Publisher-assigned span id (0 for a root publish).
    pub span_id: u32,
    /// Publish timestamp, daemon timebase.
    pub origin_ns: u64,
    /// [`FLAG_SAMPLED`] and future bits.
    pub flags: u8,
}

impl TraceCtx {
    /// Whether the sampling bit is set.
    pub fn sampled(&self) -> bool {
        self.flags & FLAG_SAMPLED != 0
    }

    /// Serialize to the fixed-size wire trailer.
    pub fn encode(&self) -> [u8; TRACE_TRAILER_LEN] {
        let mut out = [0u8; TRACE_TRAILER_LEN];
        out[0..8].copy_from_slice(&self.trace_id.to_be_bytes());
        out[8..16].copy_from_slice(&self.origin_ns.to_be_bytes());
        out[16..20].copy_from_slice(&self.span_id.to_be_bytes());
        out[20] = self.flags;
        out
    }

    /// Parse a wire trailer. Returns `None` if the slice is not exactly
    /// [`TRACE_TRAILER_LEN`] bytes, carries unknown flag bits, or has
    /// nonzero reserved bytes — the "malformed trailer" protocol error.
    pub fn decode(trailer: &[u8]) -> Option<TraceCtx> {
        if trailer.len() != TRACE_TRAILER_LEN {
            return None;
        }
        let flags = trailer[20];
        if flags & !FLAG_SAMPLED != 0 || trailer[21..24] != [0, 0, 0] {
            return None;
        }
        Some(TraceCtx {
            trace_id: u64::from_be_bytes(trailer[0..8].try_into().unwrap()),
            origin_ns: u64::from_be_bytes(trailer[8..16].try_into().unwrap()),
            span_id: u32::from_be_bytes(trailer[16..20].try_into().unwrap()),
            flags,
        })
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Head-based trace sampler: selects 1 in `modulus` publishes and mints
/// fresh trace ids for them. A modulus of 0 disables sampling entirely;
/// the disabled check is one relaxed load, no allocation, no lock.
pub struct TraceSampler {
    counter: AtomicU64,
    modulus: AtomicU32,
    seed: AtomicU64,
}

impl TraceSampler {
    /// A sampler selecting 1 in `modulus` publishes (0 = off).
    pub fn new(modulus: u32) -> TraceSampler {
        let sampler = TraceSampler {
            counter: AtomicU64::new(0),
            modulus: AtomicU32::new(modulus),
            seed: AtomicU64::new(0),
        };
        // Seed trace-id generation from process identity and the
        // sampler's own address, so concurrent publisher processes mint
        // disjoint id streams without a shared randomness source.
        let addr = &sampler as *const TraceSampler as u64;
        let seed = splitmix64(crate::epoch_ns() ^ ((std::process::id() as u64) << 32) ^ addr);
        sampler.seed.store(seed, Ordering::Relaxed);
        sampler
    }

    /// Current sampling modulus (0 = off).
    pub fn modulus(&self) -> u32 {
        self.modulus.load(Ordering::Relaxed)
    }

    /// Change the sampling modulus (0 disables).
    pub fn set_modulus(&self, modulus: u32) {
        self.modulus.store(modulus, Ordering::Relaxed);
    }

    /// Head-based sampling decision for the next publish.
    #[inline]
    pub fn try_sample(&self) -> bool {
        let m = self.modulus.load(Ordering::Relaxed);
        if m == 0 {
            return false;
        }
        self.counter
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(u64::from(m))
    }

    /// Mint the context for a sampled publish stamped at `origin_ns`.
    pub fn next_ctx(&self, origin_ns: u64) -> TraceCtx {
        let n = self
            .seed
            .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
        TraceCtx {
            trace_id: splitmix64(n) | 1, // never 0, so 0 can mean "absent"
            span_id: 0,
            origin_ns,
            flags: FLAG_SAMPLED,
        }
    }
}

/// One completed hop of a trace: where an event was at `t_ns` and how
/// long that stage took. All fields are fixed-size scalars, so hop
/// records export as self-describing PBIO records with no string table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceHop {
    /// Trace id from the event's [`TraceCtx`].
    pub trace_id: u64,
    /// Span id (hop records stamp their hop kind here).
    pub span_id: u32,
    /// [`HOP_PUBLISH`]…[`HOP_DECODE`].
    pub hop: u32,
    /// Connection id of the session involved (0 when daemon-internal).
    pub conn: u32,
    /// Channel id the event travelled on.
    pub channel: u32,
    /// Stage completion time, daemon timebase.
    pub t_ns: u64,
    /// Stage duration in nanoseconds.
    pub dur_ns: u64,
}

/// A bounded buffer of completed [`TraceHop`]s awaiting export. Pushes
/// past the capacity evict the oldest record (fresh data beats stale
/// data, the same policy as the event queues the hops describe).
pub struct TraceSink {
    hops: Mutex<VecDeque<TraceHop>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl TraceSink {
    /// A sink holding at most `capacity` hop records (min 1).
    pub fn new(capacity: usize) -> TraceSink {
        TraceSink {
            hops: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append a hop record, evicting the oldest when full.
    pub fn push(&self, hop: TraceHop) {
        let mut hops = self.hops.lock().unwrap_or_else(|p| p.into_inner());
        if hops.len() >= self.capacity {
            hops.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        hops.push_back(hop);
    }

    /// Take every buffered hop record, oldest first.
    pub fn drain(&self) -> Vec<TraceHop> {
        let mut hops = self.hops.lock().unwrap_or_else(|p| p.into_inner());
        hops.drain(..).collect()
    }

    /// Number of buffered hop records.
    pub fn len(&self) -> usize {
        self.hops.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Whether the sink is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hop records evicted because the sink was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailer_round_trips() {
        let ctx = TraceCtx {
            trace_id: 0xdead_beef_1234_5678,
            span_id: 42,
            origin_ns: 987_654_321,
            flags: FLAG_SAMPLED,
        };
        let wire = ctx.encode();
        assert_eq!(wire.len(), TRACE_TRAILER_LEN);
        assert_eq!(TraceCtx::decode(&wire), Some(ctx));
    }

    #[test]
    fn malformed_trailers_are_rejected() {
        let ctx = TraceCtx {
            trace_id: 7,
            span_id: 0,
            origin_ns: 1,
            flags: FLAG_SAMPLED,
        };
        let good = ctx.encode();
        assert!(TraceCtx::decode(&good[..20]).is_none(), "short");
        let mut bad_flags = good;
        bad_flags[20] = 0x80;
        assert!(TraceCtx::decode(&bad_flags).is_none(), "unknown flag");
        let mut bad_reserved = good;
        bad_reserved[23] = 1;
        assert!(TraceCtx::decode(&bad_reserved).is_none(), "reserved");
    }

    #[test]
    fn sampler_selects_one_in_n() {
        let s = TraceSampler::new(4);
        let hits = (0..16).filter(|_| s.try_sample()).count();
        assert_eq!(hits, 4);
        s.set_modulus(0);
        assert!((0..100).all(|_| !s.try_sample()));
        s.set_modulus(1);
        assert!((0..10).all(|_| s.try_sample()));
    }

    #[test]
    fn sampler_mints_distinct_nonzero_ids() {
        let s = TraceSampler::new(1);
        let a = s.next_ctx(10);
        let b = s.next_ctx(20);
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.trace_id, b.trace_id);
        assert!(a.sampled());
        assert_eq!(a.origin_ns, 10);
    }

    #[test]
    fn sink_bounds_and_drains() {
        let sink = TraceSink::new(3);
        for i in 0..5u64 {
            sink.push(TraceHop {
                trace_id: i,
                ..TraceHop::default()
            });
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let ids: Vec<u64> = sink.drain().iter().map(|h| h.trace_id).collect();
        assert_eq!(ids, [2, 3, 4]);
        assert!(sink.is_empty());
    }
}
