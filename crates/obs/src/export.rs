//! Dogfooding: describe a registry [`Snapshot`] as a PBIO record.
//!
//! The stats record is an ordinary PBIO format — its schema is generated from
//! the snapshot's metric names, laid out for the publisher's architecture,
//! registered like any other format and published on the reserved `$stats`
//! channel. Heterogeneous subscribers therefore receive stats through the
//! exact conversion machinery the stats are measuring.
//!
//! Field mapping (all fixed-size, so the record stays zero-copy eligible):
//!
//! | metric              | fields                                            |
//! |---------------------|---------------------------------------------------|
//! | header              | `role: u32`, `id: u32`, `seq: u64`, `t_ns: u64`   |
//! | counter `x`         | `c_x: u64`                                        |
//! | gauge `x`           | `g_x: i64`                                        |
//! | histogram `x`       | `h_x_count: u64`, `h_x_sum: u64`, `h_x_b: u64[B]` |
//! | trace ring          | `tr_count: u64`, `tr_stage/tr_at/tr_value: u64[T]`|
//!
//! The trace-ring arrays are fixed at [`TRACE_EXPORT_CAP`] slots whether
//! or not the ring is full, so the schema — and hence the registered
//! format id — depends only on the metric set. Stage labels travel as
//! their first 8 bytes packed big-endian into a `u64`.
//!
//! The same dogfooding applies to distributed-tracing hop records
//! ([`crate::TraceHop`]): [`hop_schema`] describes them as an all-scalar
//! PBIO record published on the reserved `$trace` channel.

use pbio_types::schema::{AtomType, FieldDecl, Schema, TypeDesc};
use pbio_types::value::{RecordValue, Value};

use crate::flight::FlightEvent;
use crate::metric::{HistogramSnapshot, BUCKETS};
use crate::registry::{Snapshot, TRACE_EXPORT_CAP};
use crate::tracectx::TraceHop;

/// Name of the generated stats format and of the reserved channel.
pub const STATS_FORMAT_NAME: &str = "$stats";

/// Name of the hop-record format and of the reserved trace channel.
pub const TRACE_FORMAT_NAME: &str = "$trace";

/// Name of the topology-snapshot format and of the reserved channel.
pub const TOPO_FORMAT_NAME: &str = "$topo";

/// Name of the flight-recorder event format (used both for `$topo`
/// embedding and for segment-file dumps).
pub const FLIGHT_FORMAT_NAME: &str = "$flight";

/// Snapshot publisher roles carried in the `role` header field.
pub const ROLE_DAEMON: u32 = 0;
/// See [`ROLE_DAEMON`].
pub const ROLE_CLIENT: u32 = 1;

/// Identity of one stats record: who published it and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsHeader {
    /// [`ROLE_DAEMON`] or [`ROLE_CLIENT`].
    pub role: u32,
    /// Publisher id (daemon: 0; client: its connection id).
    pub id: u32,
    /// Monotonic sequence number per publisher.
    pub seq: u64,
    /// Publisher-local monotonic timestamp in ns (for rate computation).
    pub t_ns: u64,
    /// Guaranteed-monotonic snapshot time in ns, strictly process-local:
    /// never skew-corrected or remapped into a peer timebase, so a
    /// monitor can compute correct rates between two snapshots of the
    /// same publisher without assuming the publish interval. Records
    /// from pre-`snapshot_ns` publishers parse back as 0.
    pub snapshot_ns: u64,
}

/// Map a metric name to a PBIO field-name-safe form.
pub fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Generate the PBIO schema describing `snap`. Field order follows the
/// snapshot's (sorted) metric order, so equal metric sets produce equal
/// schemas — and equal serialized `FormatMeta`, letting the format registry
/// dedup successive publications.
pub fn stats_schema(snap: &Snapshot) -> Schema {
    let mut fields = vec![
        FieldDecl::atom("role", AtomType::U32),
        FieldDecl::atom("id", AtomType::U32),
        FieldDecl::atom("seq", AtomType::U64),
        FieldDecl::atom("t_ns", AtomType::U64),
        FieldDecl::atom("snapshot_ns", AtomType::U64),
    ];
    let mut push = |f: FieldDecl| {
        if !fields.iter().any(|e| e.name == f.name) {
            fields.push(f);
        }
    };
    for (name, _) in &snap.counters {
        push(FieldDecl::atom(
            format!("c_{}", sanitize_metric_name(name)),
            AtomType::U64,
        ));
    }
    for (name, _) in &snap.gauges {
        push(FieldDecl::atom(
            format!("g_{}", sanitize_metric_name(name)),
            AtomType::I64,
        ));
    }
    for (name, _) in &snap.histograms {
        let base = sanitize_metric_name(name);
        push(FieldDecl::atom(format!("h_{base}_count"), AtomType::U64));
        push(FieldDecl::atom(format!("h_{base}_sum"), AtomType::U64));
        // Precomputed quantile bounds ride alongside the raw buckets so
        // downstream consumers don't reimplement the quantile math.
        push(FieldDecl::atom(format!("h_{base}_p50"), AtomType::U64));
        push(FieldDecl::atom(format!("h_{base}_p90"), AtomType::U64));
        push(FieldDecl::atom(format!("h_{base}_p99"), AtomType::U64));
        push(FieldDecl::new(
            format!("h_{base}_b"),
            TypeDesc::array(AtomType::U64, BUCKETS),
        ));
    }
    fields.push(FieldDecl::atom("tr_count", AtomType::U64));
    for name in ["tr_stage", "tr_at", "tr_value"] {
        fields.push(FieldDecl::new(
            name,
            TypeDesc::array(AtomType::U64, TRACE_EXPORT_CAP),
        ));
    }
    Schema::new(STATS_FORMAT_NAME, fields).expect("stats schema is always valid")
}

/// Pack a stage label's first 8 bytes into a big-endian `u64`.
fn pack_stage(stage: &str) -> u64 {
    let mut bytes = [0u8; 8];
    let n = stage.len().min(8);
    bytes[..n].copy_from_slice(&stage.as_bytes()[..n]);
    u64::from_be_bytes(bytes)
}

/// Inverse of [`pack_stage`] (truncated labels stay truncated).
fn unpack_stage(packed: u64) -> String {
    let bytes = packed.to_be_bytes();
    let end = bytes.iter().position(|&b| b == 0).unwrap_or(8);
    String::from_utf8_lossy(&bytes[..end]).into_owned()
}

/// Build the record value carrying `snap` under `header`, matching
/// [`stats_schema`]`(snap)` field for field.
pub fn stats_value(header: &StatsHeader, snap: &Snapshot) -> RecordValue {
    let mut rv = RecordValue::new()
        .with("role", header.role)
        .with("id", header.id)
        .with("seq", header.seq)
        .with("t_ns", header.t_ns)
        .with("snapshot_ns", header.snapshot_ns);
    for (name, v) in &snap.counters {
        rv.set(format!("c_{}", sanitize_metric_name(name)), *v);
    }
    for (name, v) in &snap.gauges {
        rv.set(format!("g_{}", sanitize_metric_name(name)), *v);
    }
    for (name, h) in &snap.histograms {
        let base = sanitize_metric_name(name);
        rv.set(format!("h_{base}_count"), h.count);
        rv.set(format!("h_{base}_sum"), h.sum);
        rv.set(format!("h_{base}_p50"), h.quantile(0.50));
        rv.set(format!("h_{base}_p90"), h.quantile(0.90));
        rv.set(format!("h_{base}_p99"), h.quantile(0.99));
        rv.set(
            format!("h_{base}_b"),
            Value::Array(h.buckets.iter().map(|&b| Value::U64(b)).collect()),
        );
    }
    let traces = &snap.traces[snap.traces.len().saturating_sub(TRACE_EXPORT_CAP)..];
    rv.set("tr_count", traces.len() as u64);
    let column = |f: &dyn Fn(&(String, u64, u64)) -> u64| {
        let mut col: Vec<Value> = traces.iter().map(|t| Value::U64(f(t))).collect();
        col.resize(TRACE_EXPORT_CAP, Value::U64(0));
        Value::Array(col)
    };
    rv.set("tr_stage", column(&|t| pack_stage(&t.0)));
    rv.set("tr_at", column(&|t| t.1));
    rv.set("tr_value", column(&|t| t.2));
    rv
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) => u64::try_from(*n).ok(),
        _ => None,
    }
}

/// Parse a stats record (decoded or converted from the wire) back into a
/// header and snapshot. Unknown fields are ignored; returns `None` if the
/// record lacks the header fields entirely.
pub fn snapshot_from_value(rv: &RecordValue) -> Option<(StatsHeader, Snapshot)> {
    let header = StatsHeader {
        role: as_u64(rv.get("role")?)? as u32,
        id: as_u64(rv.get("id")?)? as u32,
        seq: as_u64(rv.get("seq")?)?,
        t_ns: as_u64(rv.get("t_ns")?)?,
        snapshot_ns: rv.get("snapshot_ns").and_then(as_u64).unwrap_or(0),
    };
    let mut snap = Snapshot::default();
    let tr_count = rv.get("tr_count").and_then(as_u64).unwrap_or(0) as usize;
    if tr_count > 0 {
        let col = |name: &str| -> Vec<u64> {
            rv.get(name)
                .and_then(|v| v.as_array())
                .map(|a| a.iter().filter_map(as_u64).collect())
                .unwrap_or_default()
        };
        let (stages, ats, values) = (col("tr_stage"), col("tr_at"), col("tr_value"));
        for i in 0..tr_count.min(stages.len()).min(ats.len()).min(values.len()) {
            snap.traces
                .push((unpack_stage(stages[i]), ats[i], values[i]));
        }
    }
    for (name, value) in rv.fields() {
        if let Some(rest) = name.strip_prefix("c_") {
            if let Some(v) = as_u64(value) {
                snap.counters.push((rest.to_owned(), v));
            }
        } else if let Some(rest) = name.strip_prefix("g_") {
            if let Some(v) = value.as_i64() {
                snap.gauges.push((rest.to_owned(), v));
            }
        } else if let Some(rest) = name.strip_prefix("h_") {
            // Keyed off the `_count` field; `_sum` and `_b` are looked up.
            let Some(base) = rest.strip_suffix("_count") else {
                continue;
            };
            let mut h = HistogramSnapshot {
                count: as_u64(value)?,
                ..HistogramSnapshot::default()
            };
            if let Some(sum) = rv.get(&format!("h_{base}_sum")).and_then(as_u64) {
                h.sum = sum;
            }
            if let Some(buckets) = rv.get(&format!("h_{base}_b")).and_then(|v| v.as_array()) {
                for (slot, v) in h.buckets.iter_mut().zip(buckets.iter()) {
                    *slot = as_u64(v).unwrap_or(0);
                }
            }
            snap.histograms.push((base.to_owned(), h));
        }
    }
    snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
    snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    Some((header, snap))
}

/// The PBIO schema for one distributed-tracing hop record — all scalar
/// fields, so homogeneous monitors view `$trace` events zero-copy.
pub fn hop_schema() -> Schema {
    Schema::new(
        TRACE_FORMAT_NAME,
        vec![
            FieldDecl::atom("trace_id", AtomType::U64),
            FieldDecl::atom("span_id", AtomType::U32),
            FieldDecl::atom("hop", AtomType::U32),
            FieldDecl::atom("conn", AtomType::U32),
            FieldDecl::atom("chan", AtomType::U32),
            FieldDecl::atom("t_ns", AtomType::U64),
            FieldDecl::atom("dur_ns", AtomType::U64),
        ],
    )
    .expect("hop schema is always valid")
}

/// Build the record value for one hop, matching [`hop_schema`].
pub fn hop_value(hop: &TraceHop) -> RecordValue {
    RecordValue::new()
        .with("trace_id", hop.trace_id)
        .with("span_id", hop.span_id)
        .with("hop", hop.hop)
        .with("conn", hop.conn)
        .with("chan", hop.channel)
        .with("t_ns", hop.t_ns)
        .with("dur_ns", hop.dur_ns)
}

/// Parse a hop record decoded (or converted) from the wire. Returns
/// `None` if any field is missing — e.g. the record isn't a hop at all.
pub fn hop_from_value(rv: &RecordValue) -> Option<TraceHop> {
    Some(TraceHop {
        trace_id: as_u64(rv.get("trace_id")?)?,
        span_id: as_u64(rv.get("span_id")?)? as u32,
        hop: as_u64(rv.get("hop")?)? as u32,
        conn: as_u64(rv.get("conn")?)? as u32,
        channel: as_u64(rv.get("chan")?)? as u32,
        t_ns: as_u64(rv.get("t_ns")?)?,
        dur_ns: as_u64(rv.get("dur_ns")?)?,
    })
}

// ---------------------------------------------------------------------
// Topology snapshots: live daemon state as one self-describing record.
// ---------------------------------------------------------------------

/// Connections carried per topology record (columnar, fixed).
pub const TOPO_CONN_CAP: usize = 64;
/// Channels carried per topology record.
pub const TOPO_CHAN_CAP: usize = 64;
/// Reactor shards carried per topology record.
pub const TOPO_SHARD_CAP: usize = 32;
/// Consumer-lag watermarks carried per topology record.
pub const TOPO_LAG_CAP: usize = 64;
/// Flight-recorder events embedded per topology record.
pub const FLIGHT_EXPORT_CAP: usize = 64;
/// Mesh peer links carried per topology record.
pub const TOPO_PEER_CAP: usize = 16;

/// Per-connection topology: one live session as the daemon sees it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopoConn {
    /// Daemon-assigned connection id.
    pub conn: u32,
    /// Reactor shard owning this connection's fd.
    pub shard: u32,
    /// Capability bits negotiated at the handshake.
    pub caps: u32,
    /// Event frames currently queued outbound (the backpressure signal).
    pub queue_depth: u64,
    /// Frame bytes written to this connection so far.
    pub bytes_sent: u64,
    /// Frames written to this connection so far.
    pub frames_sent: u64,
    /// Frames the wire tap captured on this connection (both directions;
    /// 0 when the tap is off or the daemon has none).
    pub tapped: u64,
    /// [`crate::epoch_ns`] of the last inbound activity (read or pong).
    pub last_active_ns: u64,
}

/// Per-channel topology: fan-out plus durable-log footprint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TopoChannel {
    /// Daemon-assigned channel id.
    pub id: u32,
    /// Channel name (truncated to 8 bytes on the wire).
    pub name: String,
    /// Live subscribers attached to the fan-out.
    pub subscribers: u64,
    /// Events published on this channel since the daemon started.
    pub publishes: u64,
    /// Whether the channel is backed by a segment log.
    pub durable: bool,
    /// Next offset the durable log will assign (0 when not durable).
    pub head: u64,
    /// Segment files backing the channel (0 when not durable).
    pub segments: u64,
    /// Bytes on disk across those segments (0 when not durable).
    pub disk_bytes: u64,
    /// Shard-map home: the mesh index of the daemon that owns this
    /// channel's fan-out (the snapshotting daemon's own index for local
    /// and reserved channels; always 0 without a mesh).
    pub home: u32,
}

/// One daemon↔daemon mesh link as the dialing side sees it: liveness
/// plus the relay counters `pbio-top` renders per peer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopoPeer {
    /// The peer daemon's mesh index.
    pub peer: u32,
    /// Whether the link session is currently established.
    pub connected: bool,
    /// Publishes forwarded to the peer (frames written to the link).
    pub relay_tx: u64,
    /// Relayed events received from the peer and injected locally.
    pub relay_rx: u64,
    /// Forwards dropped (pending-queue overflow while resolving ids or
    /// riding out a disconnect).
    pub relay_dropped: u64,
    /// Forwards parked awaiting id resolution or reconnect.
    pub pending: u64,
    /// [`crate::epoch_ns`] of the last frame received from the peer.
    pub last_rx_ns: u64,
}

/// Per-shard topology: one readiness reactor's load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopoShard {
    /// Shard index.
    pub shard: u32,
    /// Connections currently owned by this shard.
    pub conns: i64,
    /// File descriptors the last poll wakeup reported ready.
    pub ready: i64,
    /// Poll wakeups since the daemon started.
    pub wakeups: u64,
    /// CPU this shard's reactor thread is pinned to, or -1 when
    /// unpinned (pinning off, or `sched_setaffinity` unavailable).
    pub cpu: i64,
}

/// One consumer-lag watermark: how far a durable subscriber trails the
/// log head. `delivered` counts events delivered (equivalently: the next
/// offset due), so `lag() == 0` means fully caught up — including a
/// replay that has handed off to live delivery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopoLag {
    /// Channel id.
    pub chan: u32,
    /// Subscriber's connection id.
    pub conn: u32,
    /// Log head (next offset to be assigned) at snapshot time.
    pub head: u64,
    /// Events delivered to this subscriber (next offset due).
    pub delivered: u64,
}

impl TopoLag {
    /// Events between the log head and this consumer.
    pub fn lag(&self) -> u64 {
        self.head.saturating_sub(self.delivered)
    }
}

/// A whole topology capture: what `K_INSPECT` answers and the `$topo`
/// channel pushes. The `*_total` fields carry true population sizes so a
/// consumer can tell when the fixed wire caps truncated a section.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TopoSnapshot {
    /// [`crate::epoch_ns`] capture time (daemon timebase).
    pub t_ns: u64,
    /// Live connections (may exceed `conns.len()`).
    pub conn_total: u64,
    /// Channels (may exceed `channels.len()`).
    pub chan_total: u64,
    /// Lag watermarks (may exceed `lags.len()`).
    pub lag_total: u64,
    /// Flight events ever recorded (the ring keeps the newest).
    pub flight_total: u64,
    /// Per-connection rows, capped at [`TOPO_CONN_CAP`].
    pub conns: Vec<TopoConn>,
    /// Per-channel rows, capped at [`TOPO_CHAN_CAP`].
    pub channels: Vec<TopoChannel>,
    /// Per-shard rows, capped at [`TOPO_SHARD_CAP`].
    pub shards: Vec<TopoShard>,
    /// Consumer-lag watermarks, capped at [`TOPO_LAG_CAP`].
    pub lags: Vec<TopoLag>,
    /// Most recent flight events, capped at [`FLIGHT_EXPORT_CAP`].
    pub flight: Vec<FlightEvent>,
    /// Mesh peer links, capped at [`TOPO_PEER_CAP`] (empty without a
    /// mesh, and when parsing records from pre-mesh daemons).
    pub peers: Vec<TopoPeer>,
}

/// The fixed PBIO schema describing a [`TopoSnapshot`]. Like the trace
/// ring, every section is a fixed-capacity columnar array plus a count,
/// so the schema — and hence the registered format id — never varies
/// with daemon load.
pub fn topo_schema() -> Schema {
    let mut fields = vec![
        FieldDecl::atom("t_ns", AtomType::U64),
        FieldDecl::atom("cn_total", AtomType::U64),
        FieldDecl::atom("ch_total", AtomType::U64),
        FieldDecl::atom("lag_total", AtomType::U64),
        FieldDecl::atom("fl_total", AtomType::U64),
        FieldDecl::atom("cn_count", AtomType::U64),
        FieldDecl::atom("ch_count", AtomType::U64),
        FieldDecl::atom("sh_count", AtomType::U64),
        FieldDecl::atom("lag_count", AtomType::U64),
        FieldDecl::atom("fl_count", AtomType::U64),
        FieldDecl::atom("pe_count", AtomType::U64),
    ];
    let mut arrays = |names: &[&str], cap: usize| {
        for name in names {
            fields.push(FieldDecl::new(
                name.to_string(),
                TypeDesc::array(AtomType::U64, cap),
            ));
        }
    };
    arrays(
        &[
            "cn_id",
            "cn_shard",
            "cn_caps",
            "cn_queue",
            "cn_bytes",
            "cn_frames",
            "cn_tap",
            "cn_active_ns",
        ],
        TOPO_CONN_CAP,
    );
    arrays(
        &[
            "ch_id",
            "ch_name",
            "ch_subs",
            "ch_pubs",
            "ch_durable",
            "ch_head",
            "ch_segs",
            "ch_disk",
            "ch_home",
        ],
        TOPO_CHAN_CAP,
    );
    arrays(
        &["sh_id", "sh_conns", "sh_ready", "sh_wakeups", "sh_cpu"],
        TOPO_SHARD_CAP,
    );
    arrays(
        &["lag_chan", "lag_conn", "lag_head", "lag_delivered"],
        TOPO_LAG_CAP,
    );
    arrays(
        &["fl_t", "fl_kind", "fl_conn", "fl_chan", "fl_code", "fl_aux"],
        FLIGHT_EXPORT_CAP,
    );
    arrays(
        &[
            "pe_id",
            "pe_up",
            "pe_tx",
            "pe_rx",
            "pe_drop",
            "pe_pend",
            "pe_last_ns",
        ],
        TOPO_PEER_CAP,
    );
    Schema::new(TOPO_FORMAT_NAME, fields).expect("topo schema is always valid")
}

/// Build one fixed-capacity u64 column from the first `cap` items.
fn topo_column<T>(items: &[T], cap: usize, f: impl Fn(&T) -> u64) -> Value {
    let mut col: Vec<Value> = items.iter().take(cap).map(|t| Value::U64(f(t))).collect();
    col.resize(cap, Value::U64(0));
    Value::Array(col)
}

/// Build the record value for `topo`, matching [`topo_schema`] field for
/// field. Sections longer than their caps are truncated (the `*_total`
/// fields still carry the true sizes).
pub fn topo_value(topo: &TopoSnapshot) -> RecordValue {
    let mut rv = RecordValue::new()
        .with("t_ns", topo.t_ns)
        .with("cn_total", topo.conn_total)
        .with("ch_total", topo.chan_total)
        .with("lag_total", topo.lag_total)
        .with("fl_total", topo.flight_total)
        .with("cn_count", topo.conns.len().min(TOPO_CONN_CAP) as u64)
        .with("ch_count", topo.channels.len().min(TOPO_CHAN_CAP) as u64)
        .with("sh_count", topo.shards.len().min(TOPO_SHARD_CAP) as u64)
        .with("lag_count", topo.lags.len().min(TOPO_LAG_CAP) as u64)
        .with("fl_count", topo.flight.len().min(FLIGHT_EXPORT_CAP) as u64)
        .with("pe_count", topo.peers.len().min(TOPO_PEER_CAP) as u64);
    let cn = &topo.conns;
    rv.set(
        "cn_id",
        topo_column(cn, TOPO_CONN_CAP, |c| u64::from(c.conn)),
    );
    rv.set(
        "cn_shard",
        topo_column(cn, TOPO_CONN_CAP, |c| u64::from(c.shard)),
    );
    rv.set(
        "cn_caps",
        topo_column(cn, TOPO_CONN_CAP, |c| u64::from(c.caps)),
    );
    rv.set(
        "cn_queue",
        topo_column(cn, TOPO_CONN_CAP, |c| c.queue_depth),
    );
    rv.set("cn_bytes", topo_column(cn, TOPO_CONN_CAP, |c| c.bytes_sent));
    rv.set(
        "cn_frames",
        topo_column(cn, TOPO_CONN_CAP, |c| c.frames_sent),
    );
    rv.set("cn_tap", topo_column(cn, TOPO_CONN_CAP, |c| c.tapped));
    rv.set(
        "cn_active_ns",
        topo_column(cn, TOPO_CONN_CAP, |c| c.last_active_ns),
    );
    let ch = &topo.channels;
    rv.set("ch_id", topo_column(ch, TOPO_CHAN_CAP, |c| u64::from(c.id)));
    rv.set(
        "ch_name",
        topo_column(ch, TOPO_CHAN_CAP, |c| pack_stage(&c.name)),
    );
    rv.set("ch_subs", topo_column(ch, TOPO_CHAN_CAP, |c| c.subscribers));
    rv.set("ch_pubs", topo_column(ch, TOPO_CHAN_CAP, |c| c.publishes));
    rv.set(
        "ch_durable",
        topo_column(ch, TOPO_CHAN_CAP, |c| u64::from(c.durable)),
    );
    rv.set("ch_head", topo_column(ch, TOPO_CHAN_CAP, |c| c.head));
    rv.set("ch_segs", topo_column(ch, TOPO_CHAN_CAP, |c| c.segments));
    rv.set("ch_disk", topo_column(ch, TOPO_CHAN_CAP, |c| c.disk_bytes));
    rv.set(
        "ch_home",
        topo_column(ch, TOPO_CHAN_CAP, |c| u64::from(c.home)),
    );
    let sh = &topo.shards;
    rv.set(
        "sh_id",
        topo_column(sh, TOPO_SHARD_CAP, |s| u64::from(s.shard)),
    );
    rv.set(
        "sh_conns",
        topo_column(sh, TOPO_SHARD_CAP, |s| s.conns.max(0) as u64),
    );
    rv.set(
        "sh_ready",
        topo_column(sh, TOPO_SHARD_CAP, |s| s.ready.max(0) as u64),
    );
    rv.set("sh_wakeups", topo_column(sh, TOPO_SHARD_CAP, |s| s.wakeups));
    // CPU pins are biased by one on the wire so the all-zero padding of
    // an unused slot reads back as "unpinned", not "CPU 0".
    rv.set(
        "sh_cpu",
        topo_column(sh, TOPO_SHARD_CAP, |s| (s.cpu + 1).max(0) as u64),
    );
    let lag = &topo.lags;
    rv.set(
        "lag_chan",
        topo_column(lag, TOPO_LAG_CAP, |l| u64::from(l.chan)),
    );
    rv.set(
        "lag_conn",
        topo_column(lag, TOPO_LAG_CAP, |l| u64::from(l.conn)),
    );
    rv.set("lag_head", topo_column(lag, TOPO_LAG_CAP, |l| l.head));
    rv.set(
        "lag_delivered",
        topo_column(lag, TOPO_LAG_CAP, |l| l.delivered),
    );
    // Flight events: keep the *newest* when over cap.
    let fl_start = topo.flight.len().saturating_sub(FLIGHT_EXPORT_CAP);
    let fl = &topo.flight[fl_start..];
    rv.set("fl_t", topo_column(fl, FLIGHT_EXPORT_CAP, |e| e.t_ns));
    rv.set(
        "fl_kind",
        topo_column(fl, FLIGHT_EXPORT_CAP, |e| u64::from(e.kind)),
    );
    rv.set(
        "fl_conn",
        topo_column(fl, FLIGHT_EXPORT_CAP, |e| u64::from(e.conn)),
    );
    rv.set(
        "fl_chan",
        topo_column(fl, FLIGHT_EXPORT_CAP, |e| u64::from(e.chan)),
    );
    rv.set(
        "fl_code",
        topo_column(fl, FLIGHT_EXPORT_CAP, |e| u64::from(e.code)),
    );
    rv.set("fl_aux", topo_column(fl, FLIGHT_EXPORT_CAP, |e| e.aux));
    let pe = &topo.peers;
    rv.set(
        "pe_id",
        topo_column(pe, TOPO_PEER_CAP, |p| u64::from(p.peer)),
    );
    rv.set(
        "pe_up",
        topo_column(pe, TOPO_PEER_CAP, |p| u64::from(p.connected)),
    );
    rv.set("pe_tx", topo_column(pe, TOPO_PEER_CAP, |p| p.relay_tx));
    rv.set("pe_rx", topo_column(pe, TOPO_PEER_CAP, |p| p.relay_rx));
    rv.set(
        "pe_drop",
        topo_column(pe, TOPO_PEER_CAP, |p| p.relay_dropped),
    );
    rv.set("pe_pend", topo_column(pe, TOPO_PEER_CAP, |p| p.pending));
    rv.set(
        "pe_last_ns",
        topo_column(pe, TOPO_PEER_CAP, |p| p.last_rx_ns),
    );
    rv
}

/// Parse a topology record (decoded or converted from the wire) back
/// into a [`TopoSnapshot`]. Returns `None` if the record lacks the
/// topology counts entirely.
pub fn topo_from_value(rv: &RecordValue) -> Option<TopoSnapshot> {
    let col = |name: &str| -> Vec<u64> {
        rv.get(name)
            .and_then(|v| v.as_array())
            .map(|a| a.iter().filter_map(as_u64).collect())
            .unwrap_or_default()
    };
    let count = |name: &str| -> usize { rv.get(name).and_then(as_u64).unwrap_or(0) as usize };
    let mut topo = TopoSnapshot {
        t_ns: as_u64(rv.get("t_ns")?)?,
        conn_total: as_u64(rv.get("cn_total")?)?,
        chan_total: rv.get("ch_total").and_then(as_u64).unwrap_or(0),
        lag_total: rv.get("lag_total").and_then(as_u64).unwrap_or(0),
        flight_total: rv.get("fl_total").and_then(as_u64).unwrap_or(0),
        ..TopoSnapshot::default()
    };
    {
        let (id, shard, caps) = (col("cn_id"), col("cn_shard"), col("cn_caps"));
        let (queue, bytes) = (col("cn_queue"), col("cn_bytes"));
        let (frames, tap, active) = (col("cn_frames"), col("cn_tap"), col("cn_active_ns"));
        for (i, &id) in id.iter().enumerate().take(count("cn_count")) {
            topo.conns.push(TopoConn {
                conn: id as u32,
                shard: shard.get(i).copied().unwrap_or(0) as u32,
                caps: caps.get(i).copied().unwrap_or(0) as u32,
                queue_depth: queue.get(i).copied().unwrap_or(0),
                bytes_sent: bytes.get(i).copied().unwrap_or(0),
                frames_sent: frames.get(i).copied().unwrap_or(0),
                tapped: tap.get(i).copied().unwrap_or(0),
                last_active_ns: active.get(i).copied().unwrap_or(0),
            });
        }
    }
    {
        let (id, name, subs, pubs) = (col("ch_id"), col("ch_name"), col("ch_subs"), col("ch_pubs"));
        let (durable, head, segs, disk) = (
            col("ch_durable"),
            col("ch_head"),
            col("ch_segs"),
            col("ch_disk"),
        );
        let home = col("ch_home");
        for (i, &id) in id.iter().enumerate().take(count("ch_count")) {
            topo.channels.push(TopoChannel {
                id: id as u32,
                name: unpack_stage(name.get(i).copied().unwrap_or(0)),
                subscribers: subs.get(i).copied().unwrap_or(0),
                publishes: pubs.get(i).copied().unwrap_or(0),
                durable: durable.get(i).copied().unwrap_or(0) != 0,
                head: head.get(i).copied().unwrap_or(0),
                segments: segs.get(i).copied().unwrap_or(0),
                disk_bytes: disk.get(i).copied().unwrap_or(0),
                home: home.get(i).copied().unwrap_or(0) as u32,
            });
        }
    }
    {
        let (id, conns, ready, wakeups) = (
            col("sh_id"),
            col("sh_conns"),
            col("sh_ready"),
            col("sh_wakeups"),
        );
        let cpu = col("sh_cpu");
        for (i, &id) in id.iter().enumerate().take(count("sh_count")) {
            topo.shards.push(TopoShard {
                shard: id as u32,
                conns: conns.get(i).copied().unwrap_or(0) as i64,
                ready: ready.get(i).copied().unwrap_or(0) as i64,
                wakeups: wakeups.get(i).copied().unwrap_or(0),
                cpu: cpu.get(i).copied().unwrap_or(0) as i64 - 1,
            });
        }
    }
    {
        let (chan, conn, head, delivered) = (
            col("lag_chan"),
            col("lag_conn"),
            col("lag_head"),
            col("lag_delivered"),
        );
        for (i, &chan) in chan.iter().enumerate().take(count("lag_count")) {
            topo.lags.push(TopoLag {
                chan: chan as u32,
                conn: conn.get(i).copied().unwrap_or(0) as u32,
                head: head.get(i).copied().unwrap_or(0),
                delivered: delivered.get(i).copied().unwrap_or(0),
            });
        }
    }
    {
        let (t, kind, conn) = (col("fl_t"), col("fl_kind"), col("fl_conn"));
        let (chan, code, aux) = (col("fl_chan"), col("fl_code"), col("fl_aux"));
        for (i, &t) in t.iter().enumerate().take(count("fl_count")) {
            topo.flight.push(FlightEvent {
                t_ns: t,
                kind: kind.get(i).copied().unwrap_or(0) as u32,
                conn: conn.get(i).copied().unwrap_or(0) as u32,
                chan: chan.get(i).copied().unwrap_or(0) as u32,
                code: code.get(i).copied().unwrap_or(0) as u32,
                aux: aux.get(i).copied().unwrap_or(0),
            });
        }
    }
    {
        let (id, up, tx, rx) = (col("pe_id"), col("pe_up"), col("pe_tx"), col("pe_rx"));
        let (drop, pend, last) = (col("pe_drop"), col("pe_pend"), col("pe_last_ns"));
        for (i, &id) in id.iter().enumerate().take(count("pe_count")) {
            topo.peers.push(TopoPeer {
                peer: id as u32,
                connected: up.get(i).copied().unwrap_or(0) != 0,
                relay_tx: tx.get(i).copied().unwrap_or(0),
                relay_rx: rx.get(i).copied().unwrap_or(0),
                relay_dropped: drop.get(i).copied().unwrap_or(0),
                pending: pend.get(i).copied().unwrap_or(0),
                last_rx_ns: last.get(i).copied().unwrap_or(0),
            });
        }
    }
    Some(topo)
}

/// The PBIO schema for one flight-recorder event — all scalar fields,
/// used for segment-file dumps (one record per event).
pub fn flight_schema() -> Schema {
    Schema::new(
        FLIGHT_FORMAT_NAME,
        vec![
            FieldDecl::atom("t_ns", AtomType::U64),
            FieldDecl::atom("kind", AtomType::U32),
            FieldDecl::atom("conn", AtomType::U32),
            FieldDecl::atom("chan", AtomType::U32),
            FieldDecl::atom("code", AtomType::U32),
            FieldDecl::atom("aux", AtomType::U64),
        ],
    )
    .expect("flight schema is always valid")
}

/// Build the record value for one flight event, matching
/// [`flight_schema`].
pub fn flight_value(ev: &FlightEvent) -> RecordValue {
    RecordValue::new()
        .with("t_ns", ev.t_ns)
        .with("kind", ev.kind)
        .with("conn", ev.conn)
        .with("chan", ev.chan)
        .with("code", ev.code)
        .with("aux", ev.aux)
}

/// Parse a flight event decoded (or converted) from a dump. Returns
/// `None` if any field is missing.
pub fn flight_from_value(rv: &RecordValue) -> Option<FlightEvent> {
    Some(FlightEvent {
        t_ns: as_u64(rv.get("t_ns")?)?,
        kind: as_u64(rv.get("kind")?)? as u32,
        conn: as_u64(rv.get("conn")?)? as u32,
        chan: as_u64(rv.get("chan")?)? as u32,
        code: as_u64(rv.get("code")?)? as u32,
        aux: as_u64(rv.get("aux")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use pbio_types::arch::ArchProfile;
    use pbio_types::layout::Layout;
    use pbio_types::value::{decode_native, encode_native};

    fn sample() -> (StatsHeader, Snapshot) {
        let r = Registry::new();
        r.counter("events_in").add(17);
        r.counter("bytes.out").add(4096); // needs sanitizing
        r.gauge("active_connections").set(3);
        let h = r.histogram("encode_ns");
        h.record(0);
        h.record(800);
        h.record(70_000);
        let header = StatsHeader {
            role: ROLE_DAEMON,
            id: 0,
            seq: 9,
            t_ns: 123_456,
            snapshot_ns: 123_456,
        };
        (header, r.snapshot())
    }

    #[test]
    fn schema_and_value_field_sets_match() {
        let (header, snap) = sample();
        let schema = stats_schema(&snap);
        let value = stats_value(&header, &snap);
        assert_eq!(schema.fields().len(), value.len());
        for f in schema.fields() {
            assert!(value.get(&f.name).is_some(), "value missing {}", f.name);
        }
    }

    #[test]
    fn native_round_trip_preserves_snapshot() {
        let (header, snap) = sample();
        let schema = stats_schema(&snap);
        let value = stats_value(&header, &snap);
        let layout = Layout::of(&schema, &ArchProfile::X86_64).unwrap();
        let bytes = encode_native(&value, &layout).unwrap();
        let decoded = decode_native(&bytes, &layout).unwrap();
        let (header2, snap2) = snapshot_from_value(&decoded).unwrap();
        assert_eq!(header, header2);
        assert_eq!(snap2.counter("events_in"), Some(17));
        assert_eq!(snap2.counter("bytes_out"), Some(4096));
        assert_eq!(snap2.gauge("active_connections"), Some(3));
        let h = snap2.histogram("encode_ns").unwrap();
        assert_eq!(h, snap.histogram("encode_ns").unwrap());
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 70_800);
    }

    #[test]
    fn equal_metric_sets_produce_equal_schemas() {
        let (_, snap) = sample();
        let (_, snap2) = sample();
        assert_eq!(stats_schema(&snap), stats_schema(&snap2));
    }

    #[test]
    fn trace_ring_rides_the_stats_record() {
        let r = Registry::new();
        r.counter("events").inc();
        r.trace("drop", 3);
        r.trace("tick", 4);
        let snap = r.snapshot();
        assert_eq!(snap.traces.len(), 2);

        let header = StatsHeader::default();
        let schema = stats_schema(&snap);
        let value = stats_value(&header, &snap);
        let layout = Layout::of(&schema, &ArchProfile::X86_64).unwrap();
        let bytes = encode_native(&value, &layout).unwrap();
        let decoded = decode_native(&bytes, &layout).unwrap();
        let (_, snap2) = snapshot_from_value(&decoded).unwrap();
        assert_eq!(snap2.traces, snap.traces);

        // A fuller ring changes the payload but never the schema: the
        // arrays are fixed-size, so the format id stays dedupable.
        r.trace("more", 5);
        let snap3 = r.snapshot();
        assert_eq!(stats_schema(&snap3), schema);
    }

    #[test]
    fn stage_labels_pack_to_eight_bytes() {
        assert_eq!(unpack_stage(pack_stage("drop")), "drop");
        assert_eq!(unpack_stage(pack_stage("exactly8")), "exactly8");
        assert_eq!(unpack_stage(pack_stage("stats_publish")), "stats_pu");
        assert_eq!(unpack_stage(0), "");
    }

    #[test]
    fn quantiles_ride_the_stats_record() {
        let (header, snap) = sample();
        let schema = stats_schema(&snap);
        let value = stats_value(&header, &snap);
        let layout = Layout::of(&schema, &ArchProfile::X86_64).unwrap();
        let bytes = encode_native(&value, &layout).unwrap();
        let decoded = decode_native(&bytes, &layout).unwrap();
        let h = snap.histogram("encode_ns").unwrap();
        for (field, q) in [
            ("h_encode_ns_p50", 0.50),
            ("h_encode_ns_p90", 0.90),
            ("h_encode_ns_p99", 0.99),
        ] {
            assert_eq!(
                decoded.get(field).and_then(as_u64),
                Some(h.quantile(q)),
                "{field}"
            );
        }
        // And the precomputed fields don't confuse the snapshot parser.
        let (_, snap2) = snapshot_from_value(&decoded).unwrap();
        assert_eq!(snap2.histogram("encode_ns"), Some(h));
    }

    #[test]
    fn topo_snapshot_round_trips_natively() {
        let topo = TopoSnapshot {
            t_ns: 42,
            conn_total: 2,
            chan_total: 1,
            lag_total: 1,
            flight_total: 3,
            conns: vec![
                TopoConn {
                    conn: 1,
                    shard: 0,
                    caps: 0x7,
                    queue_depth: 5,
                    bytes_sent: 1024,
                    frames_sent: 10,
                    tapped: 6,
                    last_active_ns: 99,
                },
                TopoConn {
                    conn: 2,
                    shard: 1,
                    ..TopoConn::default()
                },
            ],
            channels: vec![TopoChannel {
                id: 3,
                name: "ticks".into(),
                subscribers: 2,
                publishes: 4000,
                durable: true,
                head: 4000,
                segments: 2,
                disk_bytes: 468_000,
                home: 1,
            }],
            shards: vec![
                TopoShard {
                    shard: 0,
                    conns: 2,
                    ready: 1,
                    wakeups: 77,
                    cpu: 3,
                },
                // An unpinned shard: -1 must survive the biased wire column.
                TopoShard {
                    shard: 1,
                    conns: 0,
                    ready: 0,
                    wakeups: 1,
                    cpu: -1,
                },
            ],
            lags: vec![TopoLag {
                chan: 3,
                conn: 2,
                head: 4000,
                delivered: 1500,
            }],
            flight: vec![FlightEvent {
                t_ns: 40,
                kind: crate::flight::FL_CONNECT,
                conn: 1,
                chan: 0,
                code: 0,
                aux: 7,
            }],
            peers: vec![
                TopoPeer {
                    peer: 1,
                    connected: true,
                    relay_tx: 300,
                    relay_rx: 120,
                    relay_dropped: 2,
                    pending: 5,
                    last_rx_ns: 41,
                },
                TopoPeer {
                    peer: 2,
                    ..TopoPeer::default()
                },
            ],
        };
        let schema = topo_schema();
        let layout = Layout::of(&schema, &ArchProfile::SPARC_V8).unwrap();
        let bytes = encode_native(&topo_value(&topo), &layout).unwrap();
        let decoded = decode_native(&bytes, &layout).unwrap();
        let back = topo_from_value(&decoded).unwrap();
        assert_eq!(back, topo);
        assert_eq!(back.lags[0].lag(), 2500);
        assert!(topo_from_value(&RecordValue::new()).is_none());
    }

    #[test]
    fn topo_value_truncates_but_reports_totals() {
        let mut topo = TopoSnapshot::default();
        for i in 0..(TOPO_CONN_CAP + 5) {
            topo.conns.push(TopoConn {
                conn: i as u32,
                ..TopoConn::default()
            });
        }
        topo.conn_total = topo.conns.len() as u64;
        let schema = topo_schema();
        let layout = Layout::of(&schema, &ArchProfile::X86_64).unwrap();
        let bytes = encode_native(&topo_value(&topo), &layout).unwrap();
        let back = topo_from_value(&decode_native(&bytes, &layout).unwrap()).unwrap();
        assert_eq!(back.conns.len(), TOPO_CONN_CAP);
        assert_eq!(back.conn_total, (TOPO_CONN_CAP + 5) as u64);
    }

    #[test]
    fn flight_event_round_trips_natively() {
        let ev = FlightEvent {
            t_ns: 1_000,
            kind: crate::flight::FL_REPLAY_FINISH,
            conn: 9,
            chan: 3,
            code: 0,
            aux: 4096,
        };
        let schema = flight_schema();
        let layout = Layout::of(&schema, &ArchProfile::X86_64).unwrap();
        let bytes = encode_native(&flight_value(&ev), &layout).unwrap();
        let decoded = decode_native(&bytes, &layout).unwrap();
        assert_eq!(flight_from_value(&decoded), Some(ev));
        assert!(flight_from_value(&RecordValue::new()).is_none());
    }

    #[test]
    fn hop_record_round_trips_natively() {
        let hop = TraceHop {
            trace_id: 0x1234_5678_9abc_def0,
            span_id: 3,
            hop: crate::HOP_FLUSH,
            conn: 7,
            channel: 2,
            t_ns: 1_000_000,
            dur_ns: 512,
        };
        let schema = hop_schema();
        let layout = Layout::of(&schema, &ArchProfile::SPARC_V8).unwrap();
        let bytes = encode_native(&hop_value(&hop), &layout).unwrap();
        let decoded = decode_native(&bytes, &layout).unwrap();
        assert_eq!(hop_from_value(&decoded), Some(hop));
        assert!(hop_from_value(&RecordValue::new()).is_none());
    }
}
