//! Dogfooding: describe a registry [`Snapshot`] as a PBIO record.
//!
//! The stats record is an ordinary PBIO format — its schema is generated from
//! the snapshot's metric names, laid out for the publisher's architecture,
//! registered like any other format and published on the reserved `$stats`
//! channel. Heterogeneous subscribers therefore receive stats through the
//! exact conversion machinery the stats are measuring.
//!
//! Field mapping (all fixed-size, so the record stays zero-copy eligible):
//!
//! | metric              | fields                                            |
//! |---------------------|---------------------------------------------------|
//! | header              | `role: u32`, `id: u32`, `seq: u64`, `t_ns: u64`   |
//! | counter `x`         | `c_x: u64`                                        |
//! | gauge `x`           | `g_x: i64`                                        |
//! | histogram `x`       | `h_x_count: u64`, `h_x_sum: u64`, `h_x_b: u64[B]` |
//! | trace ring          | `tr_count: u64`, `tr_stage/tr_at/tr_value: u64[T]`|
//!
//! The trace-ring arrays are fixed at [`TRACE_EXPORT_CAP`] slots whether
//! or not the ring is full, so the schema — and hence the registered
//! format id — depends only on the metric set. Stage labels travel as
//! their first 8 bytes packed big-endian into a `u64`.
//!
//! The same dogfooding applies to distributed-tracing hop records
//! ([`crate::TraceHop`]): [`hop_schema`] describes them as an all-scalar
//! PBIO record published on the reserved `$trace` channel.

use pbio_types::schema::{AtomType, FieldDecl, Schema, TypeDesc};
use pbio_types::value::{RecordValue, Value};

use crate::metric::{HistogramSnapshot, BUCKETS};
use crate::registry::{Snapshot, TRACE_EXPORT_CAP};
use crate::tracectx::TraceHop;

/// Name of the generated stats format and of the reserved channel.
pub const STATS_FORMAT_NAME: &str = "$stats";

/// Name of the hop-record format and of the reserved trace channel.
pub const TRACE_FORMAT_NAME: &str = "$trace";

/// Snapshot publisher roles carried in the `role` header field.
pub const ROLE_DAEMON: u32 = 0;
/// See [`ROLE_DAEMON`].
pub const ROLE_CLIENT: u32 = 1;

/// Identity of one stats record: who published it and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsHeader {
    /// [`ROLE_DAEMON`] or [`ROLE_CLIENT`].
    pub role: u32,
    /// Publisher id (daemon: 0; client: its connection id).
    pub id: u32,
    /// Monotonic sequence number per publisher.
    pub seq: u64,
    /// Publisher-local monotonic timestamp in ns (for rate computation).
    pub t_ns: u64,
}

/// Map a metric name to a PBIO field-name-safe form.
pub fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Generate the PBIO schema describing `snap`. Field order follows the
/// snapshot's (sorted) metric order, so equal metric sets produce equal
/// schemas — and equal serialized `FormatMeta`, letting the format registry
/// dedup successive publications.
pub fn stats_schema(snap: &Snapshot) -> Schema {
    let mut fields = vec![
        FieldDecl::atom("role", AtomType::U32),
        FieldDecl::atom("id", AtomType::U32),
        FieldDecl::atom("seq", AtomType::U64),
        FieldDecl::atom("t_ns", AtomType::U64),
    ];
    let mut push = |f: FieldDecl| {
        if !fields.iter().any(|e| e.name == f.name) {
            fields.push(f);
        }
    };
    for (name, _) in &snap.counters {
        push(FieldDecl::atom(
            format!("c_{}", sanitize_metric_name(name)),
            AtomType::U64,
        ));
    }
    for (name, _) in &snap.gauges {
        push(FieldDecl::atom(
            format!("g_{}", sanitize_metric_name(name)),
            AtomType::I64,
        ));
    }
    for (name, _) in &snap.histograms {
        let base = sanitize_metric_name(name);
        push(FieldDecl::atom(format!("h_{base}_count"), AtomType::U64));
        push(FieldDecl::atom(format!("h_{base}_sum"), AtomType::U64));
        push(FieldDecl::new(
            format!("h_{base}_b"),
            TypeDesc::array(AtomType::U64, BUCKETS),
        ));
    }
    fields.push(FieldDecl::atom("tr_count", AtomType::U64));
    for name in ["tr_stage", "tr_at", "tr_value"] {
        fields.push(FieldDecl::new(
            name,
            TypeDesc::array(AtomType::U64, TRACE_EXPORT_CAP),
        ));
    }
    Schema::new(STATS_FORMAT_NAME, fields).expect("stats schema is always valid")
}

/// Pack a stage label's first 8 bytes into a big-endian `u64`.
fn pack_stage(stage: &str) -> u64 {
    let mut bytes = [0u8; 8];
    let n = stage.len().min(8);
    bytes[..n].copy_from_slice(&stage.as_bytes()[..n]);
    u64::from_be_bytes(bytes)
}

/// Inverse of [`pack_stage`] (truncated labels stay truncated).
fn unpack_stage(packed: u64) -> String {
    let bytes = packed.to_be_bytes();
    let end = bytes.iter().position(|&b| b == 0).unwrap_or(8);
    String::from_utf8_lossy(&bytes[..end]).into_owned()
}

/// Build the record value carrying `snap` under `header`, matching
/// [`stats_schema`]`(snap)` field for field.
pub fn stats_value(header: &StatsHeader, snap: &Snapshot) -> RecordValue {
    let mut rv = RecordValue::new()
        .with("role", header.role)
        .with("id", header.id)
        .with("seq", header.seq)
        .with("t_ns", header.t_ns);
    for (name, v) in &snap.counters {
        rv.set(format!("c_{}", sanitize_metric_name(name)), *v);
    }
    for (name, v) in &snap.gauges {
        rv.set(format!("g_{}", sanitize_metric_name(name)), *v);
    }
    for (name, h) in &snap.histograms {
        let base = sanitize_metric_name(name);
        rv.set(format!("h_{base}_count"), h.count);
        rv.set(format!("h_{base}_sum"), h.sum);
        rv.set(
            format!("h_{base}_b"),
            Value::Array(h.buckets.iter().map(|&b| Value::U64(b)).collect()),
        );
    }
    let traces = &snap.traces[snap.traces.len().saturating_sub(TRACE_EXPORT_CAP)..];
    rv.set("tr_count", traces.len() as u64);
    let column = |f: &dyn Fn(&(String, u64, u64)) -> u64| {
        let mut col: Vec<Value> = traces.iter().map(|t| Value::U64(f(t))).collect();
        col.resize(TRACE_EXPORT_CAP, Value::U64(0));
        Value::Array(col)
    };
    rv.set("tr_stage", column(&|t| pack_stage(&t.0)));
    rv.set("tr_at", column(&|t| t.1));
    rv.set("tr_value", column(&|t| t.2));
    rv
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) => u64::try_from(*n).ok(),
        _ => None,
    }
}

/// Parse a stats record (decoded or converted from the wire) back into a
/// header and snapshot. Unknown fields are ignored; returns `None` if the
/// record lacks the header fields entirely.
pub fn snapshot_from_value(rv: &RecordValue) -> Option<(StatsHeader, Snapshot)> {
    let header = StatsHeader {
        role: as_u64(rv.get("role")?)? as u32,
        id: as_u64(rv.get("id")?)? as u32,
        seq: as_u64(rv.get("seq")?)?,
        t_ns: as_u64(rv.get("t_ns")?)?,
    };
    let mut snap = Snapshot::default();
    let tr_count = rv.get("tr_count").and_then(as_u64).unwrap_or(0) as usize;
    if tr_count > 0 {
        let col = |name: &str| -> Vec<u64> {
            rv.get(name)
                .and_then(|v| v.as_array())
                .map(|a| a.iter().filter_map(as_u64).collect())
                .unwrap_or_default()
        };
        let (stages, ats, values) = (col("tr_stage"), col("tr_at"), col("tr_value"));
        for i in 0..tr_count.min(stages.len()).min(ats.len()).min(values.len()) {
            snap.traces
                .push((unpack_stage(stages[i]), ats[i], values[i]));
        }
    }
    for (name, value) in rv.fields() {
        if let Some(rest) = name.strip_prefix("c_") {
            if let Some(v) = as_u64(value) {
                snap.counters.push((rest.to_owned(), v));
            }
        } else if let Some(rest) = name.strip_prefix("g_") {
            if let Some(v) = value.as_i64() {
                snap.gauges.push((rest.to_owned(), v));
            }
        } else if let Some(rest) = name.strip_prefix("h_") {
            // Keyed off the `_count` field; `_sum` and `_b` are looked up.
            let Some(base) = rest.strip_suffix("_count") else {
                continue;
            };
            let mut h = HistogramSnapshot {
                count: as_u64(value)?,
                ..HistogramSnapshot::default()
            };
            if let Some(sum) = rv.get(&format!("h_{base}_sum")).and_then(as_u64) {
                h.sum = sum;
            }
            if let Some(buckets) = rv.get(&format!("h_{base}_b")).and_then(|v| v.as_array()) {
                for (slot, v) in h.buckets.iter_mut().zip(buckets.iter()) {
                    *slot = as_u64(v).unwrap_or(0);
                }
            }
            snap.histograms.push((base.to_owned(), h));
        }
    }
    snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
    snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    Some((header, snap))
}

/// The PBIO schema for one distributed-tracing hop record — all scalar
/// fields, so homogeneous monitors view `$trace` events zero-copy.
pub fn hop_schema() -> Schema {
    Schema::new(
        TRACE_FORMAT_NAME,
        vec![
            FieldDecl::atom("trace_id", AtomType::U64),
            FieldDecl::atom("span_id", AtomType::U32),
            FieldDecl::atom("hop", AtomType::U32),
            FieldDecl::atom("conn", AtomType::U32),
            FieldDecl::atom("chan", AtomType::U32),
            FieldDecl::atom("t_ns", AtomType::U64),
            FieldDecl::atom("dur_ns", AtomType::U64),
        ],
    )
    .expect("hop schema is always valid")
}

/// Build the record value for one hop, matching [`hop_schema`].
pub fn hop_value(hop: &TraceHop) -> RecordValue {
    RecordValue::new()
        .with("trace_id", hop.trace_id)
        .with("span_id", hop.span_id)
        .with("hop", hop.hop)
        .with("conn", hop.conn)
        .with("chan", hop.channel)
        .with("t_ns", hop.t_ns)
        .with("dur_ns", hop.dur_ns)
}

/// Parse a hop record decoded (or converted) from the wire. Returns
/// `None` if any field is missing — e.g. the record isn't a hop at all.
pub fn hop_from_value(rv: &RecordValue) -> Option<TraceHop> {
    Some(TraceHop {
        trace_id: as_u64(rv.get("trace_id")?)?,
        span_id: as_u64(rv.get("span_id")?)? as u32,
        hop: as_u64(rv.get("hop")?)? as u32,
        conn: as_u64(rv.get("conn")?)? as u32,
        channel: as_u64(rv.get("chan")?)? as u32,
        t_ns: as_u64(rv.get("t_ns")?)?,
        dur_ns: as_u64(rv.get("dur_ns")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use pbio_types::arch::ArchProfile;
    use pbio_types::layout::Layout;
    use pbio_types::value::{decode_native, encode_native};

    fn sample() -> (StatsHeader, Snapshot) {
        let r = Registry::new();
        r.counter("events_in").add(17);
        r.counter("bytes.out").add(4096); // needs sanitizing
        r.gauge("active_connections").set(3);
        let h = r.histogram("encode_ns");
        h.record(0);
        h.record(800);
        h.record(70_000);
        let header = StatsHeader {
            role: ROLE_DAEMON,
            id: 0,
            seq: 9,
            t_ns: 123_456,
        };
        (header, r.snapshot())
    }

    #[test]
    fn schema_and_value_field_sets_match() {
        let (header, snap) = sample();
        let schema = stats_schema(&snap);
        let value = stats_value(&header, &snap);
        assert_eq!(schema.fields().len(), value.len());
        for f in schema.fields() {
            assert!(value.get(&f.name).is_some(), "value missing {}", f.name);
        }
    }

    #[test]
    fn native_round_trip_preserves_snapshot() {
        let (header, snap) = sample();
        let schema = stats_schema(&snap);
        let value = stats_value(&header, &snap);
        let layout = Layout::of(&schema, &ArchProfile::X86_64).unwrap();
        let bytes = encode_native(&value, &layout).unwrap();
        let decoded = decode_native(&bytes, &layout).unwrap();
        let (header2, snap2) = snapshot_from_value(&decoded).unwrap();
        assert_eq!(header, header2);
        assert_eq!(snap2.counter("events_in"), Some(17));
        assert_eq!(snap2.counter("bytes_out"), Some(4096));
        assert_eq!(snap2.gauge("active_connections"), Some(3));
        let h = snap2.histogram("encode_ns").unwrap();
        assert_eq!(h, snap.histogram("encode_ns").unwrap());
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 70_800);
    }

    #[test]
    fn equal_metric_sets_produce_equal_schemas() {
        let (_, snap) = sample();
        let (_, snap2) = sample();
        assert_eq!(stats_schema(&snap), stats_schema(&snap2));
    }

    #[test]
    fn trace_ring_rides_the_stats_record() {
        let r = Registry::new();
        r.counter("events").inc();
        r.trace("drop", 3);
        r.trace("tick", 4);
        let snap = r.snapshot();
        assert_eq!(snap.traces.len(), 2);

        let header = StatsHeader::default();
        let schema = stats_schema(&snap);
        let value = stats_value(&header, &snap);
        let layout = Layout::of(&schema, &ArchProfile::X86_64).unwrap();
        let bytes = encode_native(&value, &layout).unwrap();
        let decoded = decode_native(&bytes, &layout).unwrap();
        let (_, snap2) = snapshot_from_value(&decoded).unwrap();
        assert_eq!(snap2.traces, snap.traces);

        // A fuller ring changes the payload but never the schema: the
        // arrays are fixed-size, so the format id stays dedupable.
        r.trace("more", 5);
        let snap3 = r.snapshot();
        assert_eq!(stats_schema(&snap3), schema);
    }

    #[test]
    fn stage_labels_pack_to_eight_bytes() {
        assert_eq!(unpack_stage(pack_stage("drop")), "drop");
        assert_eq!(unpack_stage(pack_stage("exactly8")), "exactly8");
        assert_eq!(unpack_stage(pack_stage("stats_publish")), "stats_pu");
        assert_eq!(unpack_stage(0), "");
    }

    #[test]
    fn hop_record_round_trips_natively() {
        let hop = TraceHop {
            trace_id: 0x1234_5678_9abc_def0,
            span_id: 3,
            hop: crate::HOP_FLUSH,
            conn: 7,
            channel: 2,
            t_ns: 1_000_000,
            dur_ns: 512,
        };
        let schema = hop_schema();
        let layout = Layout::of(&schema, &ArchProfile::SPARC_V8).unwrap();
        let bytes = encode_native(&hop_value(&hop), &layout).unwrap();
        let decoded = decode_native(&bytes, &layout).unwrap();
        assert_eq!(hop_from_value(&decoded), Some(hop));
        assert!(hop_from_value(&RecordValue::new()).is_none());
    }
}
