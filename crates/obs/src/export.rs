//! Dogfooding: describe a registry [`Snapshot`] as a PBIO record.
//!
//! The stats record is an ordinary PBIO format — its schema is generated from
//! the snapshot's metric names, laid out for the publisher's architecture,
//! registered like any other format and published on the reserved `$stats`
//! channel. Heterogeneous subscribers therefore receive stats through the
//! exact conversion machinery the stats are measuring.
//!
//! Field mapping (all fixed-size, so the record stays zero-copy eligible):
//!
//! | metric              | fields                                            |
//! |---------------------|---------------------------------------------------|
//! | header              | `role: u32`, `id: u32`, `seq: u64`, `t_ns: u64`   |
//! | counter `x`         | `c_x: u64`                                        |
//! | gauge `x`           | `g_x: i64`                                        |
//! | histogram `x`       | `h_x_count: u64`, `h_x_sum: u64`, `h_x_b: u64[B]` |

use pbio_types::schema::{AtomType, FieldDecl, Schema, TypeDesc};
use pbio_types::value::{RecordValue, Value};

use crate::metric::{HistogramSnapshot, BUCKETS};
use crate::registry::Snapshot;

/// Name of the generated stats format and of the reserved channel.
pub const STATS_FORMAT_NAME: &str = "$stats";

/// Snapshot publisher roles carried in the `role` header field.
pub const ROLE_DAEMON: u32 = 0;
/// See [`ROLE_DAEMON`].
pub const ROLE_CLIENT: u32 = 1;

/// Identity of one stats record: who published it and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsHeader {
    /// [`ROLE_DAEMON`] or [`ROLE_CLIENT`].
    pub role: u32,
    /// Publisher id (daemon: 0; client: its connection id).
    pub id: u32,
    /// Monotonic sequence number per publisher.
    pub seq: u64,
    /// Publisher-local monotonic timestamp in ns (for rate computation).
    pub t_ns: u64,
}

/// Map a metric name to a PBIO field-name-safe form.
pub fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Generate the PBIO schema describing `snap`. Field order follows the
/// snapshot's (sorted) metric order, so equal metric sets produce equal
/// schemas — and equal serialized `FormatMeta`, letting the format registry
/// dedup successive publications.
pub fn stats_schema(snap: &Snapshot) -> Schema {
    let mut fields = vec![
        FieldDecl::atom("role", AtomType::U32),
        FieldDecl::atom("id", AtomType::U32),
        FieldDecl::atom("seq", AtomType::U64),
        FieldDecl::atom("t_ns", AtomType::U64),
    ];
    let mut push = |f: FieldDecl| {
        if !fields.iter().any(|e| e.name == f.name) {
            fields.push(f);
        }
    };
    for (name, _) in &snap.counters {
        push(FieldDecl::atom(
            format!("c_{}", sanitize_metric_name(name)),
            AtomType::U64,
        ));
    }
    for (name, _) in &snap.gauges {
        push(FieldDecl::atom(
            format!("g_{}", sanitize_metric_name(name)),
            AtomType::I64,
        ));
    }
    for (name, _) in &snap.histograms {
        let base = sanitize_metric_name(name);
        push(FieldDecl::atom(format!("h_{base}_count"), AtomType::U64));
        push(FieldDecl::atom(format!("h_{base}_sum"), AtomType::U64));
        push(FieldDecl::new(
            format!("h_{base}_b"),
            TypeDesc::array(AtomType::U64, BUCKETS),
        ));
    }
    Schema::new(STATS_FORMAT_NAME, fields).expect("stats schema is always valid")
}

/// Build the record value carrying `snap` under `header`, matching
/// [`stats_schema`]`(snap)` field for field.
pub fn stats_value(header: &StatsHeader, snap: &Snapshot) -> RecordValue {
    let mut rv = RecordValue::new()
        .with("role", header.role)
        .with("id", header.id)
        .with("seq", header.seq)
        .with("t_ns", header.t_ns);
    for (name, v) in &snap.counters {
        rv.set(format!("c_{}", sanitize_metric_name(name)), *v);
    }
    for (name, v) in &snap.gauges {
        rv.set(format!("g_{}", sanitize_metric_name(name)), *v);
    }
    for (name, h) in &snap.histograms {
        let base = sanitize_metric_name(name);
        rv.set(format!("h_{base}_count"), h.count);
        rv.set(format!("h_{base}_sum"), h.sum);
        rv.set(
            format!("h_{base}_b"),
            Value::Array(h.buckets.iter().map(|&b| Value::U64(b)).collect()),
        );
    }
    rv
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) => u64::try_from(*n).ok(),
        _ => None,
    }
}

/// Parse a stats record (decoded or converted from the wire) back into a
/// header and snapshot. Unknown fields are ignored; returns `None` if the
/// record lacks the header fields entirely.
pub fn snapshot_from_value(rv: &RecordValue) -> Option<(StatsHeader, Snapshot)> {
    let header = StatsHeader {
        role: as_u64(rv.get("role")?)? as u32,
        id: as_u64(rv.get("id")?)? as u32,
        seq: as_u64(rv.get("seq")?)?,
        t_ns: as_u64(rv.get("t_ns")?)?,
    };
    let mut snap = Snapshot::default();
    for (name, value) in rv.fields() {
        if let Some(rest) = name.strip_prefix("c_") {
            if let Some(v) = as_u64(value) {
                snap.counters.push((rest.to_owned(), v));
            }
        } else if let Some(rest) = name.strip_prefix("g_") {
            if let Some(v) = value.as_i64() {
                snap.gauges.push((rest.to_owned(), v));
            }
        } else if let Some(rest) = name.strip_prefix("h_") {
            // Keyed off the `_count` field; `_sum` and `_b` are looked up.
            let Some(base) = rest.strip_suffix("_count") else {
                continue;
            };
            let mut h = HistogramSnapshot {
                count: as_u64(value)?,
                ..HistogramSnapshot::default()
            };
            if let Some(sum) = rv.get(&format!("h_{base}_sum")).and_then(as_u64) {
                h.sum = sum;
            }
            if let Some(buckets) = rv.get(&format!("h_{base}_b")).and_then(|v| v.as_array()) {
                for (slot, v) in h.buckets.iter_mut().zip(buckets.iter()) {
                    *slot = as_u64(v).unwrap_or(0);
                }
            }
            snap.histograms.push((base.to_owned(), h));
        }
    }
    snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
    snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    Some((header, snap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use pbio_types::arch::ArchProfile;
    use pbio_types::layout::Layout;
    use pbio_types::value::{decode_native, encode_native};

    fn sample() -> (StatsHeader, Snapshot) {
        let r = Registry::new();
        r.counter("events_in").add(17);
        r.counter("bytes.out").add(4096); // needs sanitizing
        r.gauge("active_connections").set(3);
        let h = r.histogram("encode_ns");
        h.record(0);
        h.record(800);
        h.record(70_000);
        let header = StatsHeader {
            role: ROLE_DAEMON,
            id: 0,
            seq: 9,
            t_ns: 123_456,
        };
        (header, r.snapshot())
    }

    #[test]
    fn schema_and_value_field_sets_match() {
        let (header, snap) = sample();
        let schema = stats_schema(&snap);
        let value = stats_value(&header, &snap);
        assert_eq!(schema.fields().len(), value.len());
        for f in schema.fields() {
            assert!(value.get(&f.name).is_some(), "value missing {}", f.name);
        }
    }

    #[test]
    fn native_round_trip_preserves_snapshot() {
        let (header, snap) = sample();
        let schema = stats_schema(&snap);
        let value = stats_value(&header, &snap);
        let layout = Layout::of(&schema, &ArchProfile::X86_64).unwrap();
        let bytes = encode_native(&value, &layout).unwrap();
        let decoded = decode_native(&bytes, &layout).unwrap();
        let (header2, snap2) = snapshot_from_value(&decoded).unwrap();
        assert_eq!(header, header2);
        assert_eq!(snap2.counter("events_in"), Some(17));
        assert_eq!(snap2.counter("bytes_out"), Some(4096));
        assert_eq!(snap2.gauge("active_connections"), Some(3));
        let h = snap2.histogram("encode_ns").unwrap();
        assert_eq!(h, snap.histogram("encode_ns").unwrap());
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 70_800);
    }

    #[test]
    fn equal_metric_sets_produce_equal_schemas() {
        let (_, snap) = sample();
        let (_, snap2) = sample();
        assert_eq!(stats_schema(&snap), stats_schema(&snap2));
    }
}
