//! Flight recorder: a bounded lock-free ring of structured lifecycle
//! events — the daemon's black box.
//!
//! Unlike the metric registry (aggregates) and the trace ring (sampled
//! data-path hops), the flight recorder captures *discrete control-plane
//! moments*: a connection arrived, a session resumed, a peer was evicted,
//! a protocol error was answered, a torn tail was repaired, a replay
//! started or finished. Events are rare but their ordering is exactly
//! what a post-mortem needs, so recording must be safe from any thread
//! without a lock: each slot is a seqlock — the writer claims a unique
//! generation with one `fetch_add`, marks the slot in-progress, stores
//! the all-scalar payload, then publishes the generation. Readers detect
//! (and skip) slots torn by a concurrent wrap instead of blocking them.
//!
//! Dumps are decodable forever: [`crate::export::flight_schema`]
//! describes an event as an ordinary self-describing PBIO record, so a
//! recorder drained into a `pbio-store` segment file is readable by the
//! same machinery that replays durable channels.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::registry::epoch_ns;

/// A connection completed its handshake (`conn`, `aux` = granted caps).
pub const FL_CONNECT: u32 = 1;
/// A connection was torn down (`code` = caller-defined eviction reason).
pub const FL_EVICT: u32 = 2;
/// A session resumed under a new epoch (`aux` = epoch).
pub const FL_RESUME: u32 = 3;
/// A protocol error was answered (`code` = wire error code).
pub const FL_PROTO_ERROR: u32 = 4;
/// Deterministic fault injection armed (`aux` = seed).
pub const FL_FAULT: u32 = 5;
/// The store repaired a torn tail while appending (`aux` = total so far).
pub const FL_REPAIR: u32 = 6;
/// A historical replay started (`aux` = starting offset).
pub const FL_REPLAY_START: u32 = 7;
/// A historical replay handed off to live delivery (`aux` = end offset).
pub const FL_REPLAY_FINISH: u32 = 8;
/// The daemon began an orderly shutdown.
pub const FL_SHUTDOWN: u32 = 9;
/// The wire tap was switched on or reconfigured (`conn` = requester, 0
/// at boot; `code` = mode, `aux` = mode parameter).
pub const FL_TAP_START: u32 = 10;
/// The wire tap was switched off (`conn` = requester, `aux` = frames
/// captured so far).
pub const FL_TAP_STOP: u32 = 11;
/// The capture log rotated into a new segment (`aux` = segment count).
pub const FL_TAP_ROTATE: u32 = 12;
/// The capture ring overflowed and dropped frames (`aux` = total frames
/// dropped so far).
pub const FL_TAP_DROP: u32 = 13;

/// Human-readable name for a flight-event kind.
pub fn flight_kind_name(kind: u32) -> &'static str {
    match kind {
        FL_CONNECT => "connect",
        FL_EVICT => "evict",
        FL_RESUME => "resume",
        FL_PROTO_ERROR => "proto_error",
        FL_FAULT => "fault",
        FL_REPAIR => "repair",
        FL_REPLAY_START => "replay_start",
        FL_REPLAY_FINISH => "replay_finish",
        FL_SHUTDOWN => "shutdown",
        FL_TAP_START => "tap_start",
        FL_TAP_STOP => "tap_stop",
        FL_TAP_ROTATE => "tap_rotate",
        FL_TAP_DROP => "tap_drop",
        _ => "unknown",
    }
}

/// One recorded lifecycle event. All fields are scalars so the event
/// stores into ring slots atomically-per-field and exports as a
/// fixed-size PBIO record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlightEvent {
    /// [`epoch_ns`] timestamp stamped at record time.
    pub t_ns: u64,
    /// Event kind ([`FL_CONNECT`]…).
    pub kind: u32,
    /// Connection id, when the event concerns one (else 0).
    pub conn: u32,
    /// Channel id, when the event concerns one (else 0).
    pub chan: u32,
    /// Kind-specific code (eviction reason, protocol error code…).
    pub code: u32,
    /// Kind-specific auxiliary value (offset, epoch, seed…).
    pub aux: u64,
}

/// One seqlock slot. `seq` holds `generation + 1` once a write completes
/// and 0 while a write is in flight; readers accept a slot only when the
/// generation they expect is published both before and after the field
/// reads.
struct Slot {
    seq: AtomicU64,
    t_ns: AtomicU64,
    kind: AtomicU64,
    conn: AtomicU64,
    chan: AtomicU64,
    code: AtomicU64,
    aux: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            t_ns: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            conn: AtomicU64::new(0),
            chan: AtomicU64::new(0),
            code: AtomicU64::new(0),
            aux: AtomicU64::new(0),
        }
    }
}

/// Bounded lock-free ring of [`FlightEvent`]s, overwriting oldest-first.
///
/// Recording never blocks, never allocates, and never contends on a
/// lock: a `fetch_add` claims the slot, per-field relaxed stores fill
/// it, and a release store publishes it. The only losses are events
/// overwritten after the ring wraps (by design) and slots a reader
/// observes mid-write (skipped, not blocked on).
pub struct FlightRecorder {
    slots: Vec<Slot>,
    /// Total events ever recorded; `slot = generation % slots.len()`.
    head: AtomicU64,
}

impl FlightRecorder {
    /// New ring holding the most recent `capacity` events (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including ones since overwritten).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Record one event, stamped with [`epoch_ns`] now.
    pub fn record(&self, kind: u32, conn: u32, chan: u32, code: u32, aux: u64) {
        self.record_event(FlightEvent {
            t_ns: epoch_ns(),
            kind,
            conn,
            chan,
            code,
            aux,
        });
    }

    /// Record a pre-stamped event.
    pub fn record_event(&self, ev: FlightEvent) {
        let g = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(g % self.slots.len() as u64) as usize];
        // Mark in-progress; the RMW's acquire side keeps the field stores
        // below from being hoisted above it.
        slot.seq.swap(0, Ordering::AcqRel);
        slot.t_ns.store(ev.t_ns, Ordering::Relaxed);
        slot.kind.store(u64::from(ev.kind), Ordering::Relaxed);
        slot.conn.store(u64::from(ev.conn), Ordering::Relaxed);
        slot.chan.store(u64::from(ev.chan), Ordering::Relaxed);
        slot.code.store(u64::from(ev.code), Ordering::Relaxed);
        slot.aux.store(ev.aux, Ordering::Relaxed);
        // Publish: generation + 1 distinguishes "written as g" from the
        // in-progress 0 and from every other generation of this slot.
        slot.seq.store(g + 1, Ordering::Release);
    }

    /// Read the slot holding `g`, validating the seqlock; `None` when
    /// the slot was overwritten or is mid-write.
    fn read_gen(&self, g: u64) -> Option<FlightEvent> {
        let slot = &self.slots[(g % self.slots.len() as u64) as usize];
        let seq1 = slot.seq.load(Ordering::Acquire);
        if seq1 != g + 1 {
            return None;
        }
        let ev = FlightEvent {
            t_ns: slot.t_ns.load(Ordering::Relaxed),
            kind: slot.kind.load(Ordering::Relaxed) as u32,
            conn: slot.conn.load(Ordering::Relaxed) as u32,
            chan: slot.chan.load(Ordering::Relaxed) as u32,
            code: slot.code.load(Ordering::Relaxed) as u32,
            aux: slot.aux.load(Ordering::Relaxed),
        };
        fence(Ordering::Acquire);
        (slot.seq.load(Ordering::Relaxed) == g + 1).then_some(ev)
    }

    /// The most recent events still in the ring, oldest first. Slots torn
    /// by a concurrent writer are skipped, never blocked on.
    pub fn recent(&self) -> Vec<FlightEvent> {
        self.drain_since(0).0
    }

    /// Events with generation at or after `cursor` (clamped to what the
    /// ring still holds), oldest first, plus the next cursor — the basis
    /// for incremental dumps: pass the returned cursor back and only new
    /// events come out.
    pub fn drain_since(&self, cursor: u64) -> (Vec<FlightEvent>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let floor = head.saturating_sub(self.slots.len() as u64);
        let start = cursor.max(floor);
        let mut out = Vec::with_capacity((head - start) as usize);
        for g in start..head {
            if let Some(ev) = self.read_gen(g) {
                out.push(ev);
            }
        }
        (out, head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_and_reads_in_order() {
        let r = FlightRecorder::new(8);
        r.record(FL_CONNECT, 1, 0, 0, 0);
        r.record(FL_EVICT, 1, 0, 2, 0);
        let evs = r.recent();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, FL_CONNECT);
        assert_eq!(evs[1].kind, FL_EVICT);
        assert!(evs[0].t_ns <= evs[1].t_ns);
        assert_eq!(r.recorded(), 2);
    }

    #[test]
    fn wraps_keeping_newest() {
        let r = FlightRecorder::new(4);
        for i in 0..10u64 {
            r.record(FL_RESUME, i as u32, 0, 0, i);
        }
        let evs = r.recent();
        assert_eq!(evs.len(), 4);
        assert_eq!(
            evs.iter().map(|e| e.aux).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn incremental_drain_sees_each_event_once() {
        let r = FlightRecorder::new(16);
        r.record(FL_CONNECT, 1, 0, 0, 0);
        let (first, cursor) = r.drain_since(0);
        assert_eq!(first.len(), 1);
        let (none, cursor2) = r.drain_since(cursor);
        assert!(none.is_empty());
        assert_eq!(cursor2, cursor);
        r.record(FL_SHUTDOWN, 0, 0, 0, 0);
        let (next, _) = r.drain_since(cursor2);
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].kind, FL_SHUTDOWN);
    }

    #[test]
    fn concurrent_recording_never_yields_torn_events() {
        let r = Arc::new(FlightRecorder::new(32));
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for i in 0..2000u64 {
                        // Every valid event satisfies aux == conn * 10_000 + code.
                        let conn = (t * 2000 + i) as u32 % 97;
                        let code = i as u32 % 13;
                        r.record(
                            FL_EVICT,
                            conn,
                            0,
                            code,
                            u64::from(conn) * 10_000 + u64::from(code),
                        );
                    }
                })
            })
            .collect();
        let reader = {
            let r = r.clone();
            std::thread::spawn(move || {
                for _ in 0..200 {
                    for ev in r.recent() {
                        assert_eq!(
                            ev.aux,
                            u64::from(ev.conn) * 10_000 + u64::from(ev.code),
                            "torn event surfaced"
                        );
                    }
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(r.recorded(), 8000);
        assert_eq!(r.recent().len(), 32);
    }
}
