//! `pbio-obs` — low-overhead instrumentation for the PBIO stack.
//!
//! The paper's analysis (Figure 1) decomposes a message exchange into
//! encode / send / receive / convert; this crate provides the machinery to
//! measure those components on the live paths:
//!
//! * [`Counter`] / [`Gauge`] — single relaxed atomics;
//! * [`Histogram`] — fixed-bucket log2 latency histogram, sharded across a
//!   few cache lines so concurrent recorders don't contend;
//! * [`Registry`] — name → metric map; resolve a handle once, record through
//!   the `Arc` forever after (the hot path never touches the registry);
//! * [`Span`] — RAII timer recording elapsed ns into a histogram on drop,
//!   globally disableable via [`set_enabled`] for overhead comparisons;
//! * [`TraceRing`] — preallocated bounded ring of recent trace events;
//! * [`TraceCtx`] / [`TraceHop`] / [`TraceSampler`] / [`TraceSink`] —
//!   wire-propagated distributed tracing: a sampled publish carries a
//!   compact context in a frame trailer, every stage re-stamps it into a
//!   hop record, and completed hops export over the `$trace` channel;
//! * [`FlightRecorder`] — bounded lock-free seqlock ring of structured
//!   lifecycle events (connect/evict/resume, protocol errors, repairs,
//!   replays): the black box behind daemon post-mortems;
//! * [`export`] — describes a registry [`Snapshot`] as a PBIO record so
//!   stats travel the wire format they measure (the `$stats` channel),
//!   plus topology snapshots (`$topo`) and flight-event records.
//!
//! Module-level instrumentation (encoders, converters, frame I/O) records
//! into [`Registry::global`]; daemons and clients own per-instance
//! registries so components sharing a process keep separate books.

pub mod export;
mod flight;
mod metric;
mod registry;
mod span;
mod trace;
mod tracectx;

pub use flight::{
    flight_kind_name, FlightEvent, FlightRecorder, FL_CONNECT, FL_EVICT, FL_FAULT, FL_PROTO_ERROR,
    FL_REPAIR, FL_REPLAY_FINISH, FL_REPLAY_START, FL_RESUME, FL_SHUTDOWN, FL_TAP_DROP,
    FL_TAP_ROTATE, FL_TAP_START, FL_TAP_STOP,
};
pub use metric::{
    bucket_index, bucket_lower, bucket_upper, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS,
};
pub use registry::{
    enabled, epoch_ns, labeled, labeled2, set_enabled, Registry, Snapshot, TRACE_EXPORT_CAP,
};
pub use span::Span;
pub use trace::{TraceEvent, TraceRing};
pub use tracectx::{
    hop_name, TraceCtx, TraceHop, TraceSampler, TraceSink, FLAG_SAMPLED, HOP_COUNT, HOP_DECODE,
    HOP_ENQUEUE, HOP_FILTER, HOP_FLUSH, HOP_INGRESS, HOP_PUBLISH, HOP_RELAY, HOP_REQUIRED,
    TRACE_TRAILER_LEN,
};

/// Shorthand for [`Registry::global`].
pub fn global() -> &'static std::sync::Arc<Registry> {
    Registry::global()
}
