//! Sharded metric registry and whole-registry snapshots.
//!
//! Metric *lookup* (by name) takes a shard lock once; hot paths hold the
//! returned `Arc` handle and never touch the registry again. A process-global
//! registry backs module-level instrumentation (encode, convert, frame I/O);
//! daemons and clients own per-instance registries so parallel components in
//! one process keep separate books.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::trace::{TraceEvent, TraceRing};

const REG_SHARDS: usize = 8;

/// Most recent trace-ring events carried in a [`Snapshot`] (and exported
/// over the wire by [`crate::export`]).
pub const TRACE_EXPORT_CAP: usize = 64;

/// Render the canonical labeled metric name `name{key="value"}`.
///
/// Labels are resolved into ordinary registry entries: the composed name
/// allocates once, at handle-resolution time, and the returned handle is
/// then held by the hot path like any other metric — recording through
/// it never touches strings again.
pub fn labeled(name: &str, key: &str, value: &str) -> String {
    format!("{name}{{{key}=\"{value}\"}}")
}

/// Render a two-label metric name `name{k1="v1",k2="v2"}` — used for
/// per-(channel, connection) dimensions like consumer lag.
pub fn labeled2(name: &str, k1: &str, v1: &str, k2: &str, v2: &str) -> String {
    format!("{name}{{{k1}=\"{v1}\",{k2}=\"{v2}\"}}")
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics plus a bounded trace ring.
pub struct Registry {
    shards: [Mutex<Vec<(String, Metric)>>; REG_SHARDS],
    trace: TraceRing,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

fn shard_for(name: &str) -> usize {
    // FNV-1a; cheap and stable, only used at handle-resolution time.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h as usize) % REG_SHARDS
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Registry {
        Registry {
            shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
            trace: TraceRing::new(256),
        }
    }

    /// The process-global registry used by module-level instrumentation
    /// (encode/convert timings, frame-level byte counters).
    pub fn global() -> &'static Arc<Registry> {
        static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(Registry::new()))
    }

    fn resolve<T, F, G>(&self, name: &str, extract: F, create: G) -> Arc<T>
    where
        F: Fn(&Metric) -> Option<&Arc<T>>,
        G: FnOnce() -> (Arc<T>, Metric),
    {
        let mut shard = self.shards[shard_for(name)].lock().unwrap();
        if let Some((_, m)) = shard.iter().find(|(n, _)| n == name) {
            return extract(m)
                .unwrap_or_else(|| panic!("metric {name:?} already registered as a {}", m.kind()))
                .clone();
        }
        let (handle, metric) = create();
        shard.push((name.to_owned(), metric));
        handle
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.resolve(
            name,
            |m| match m {
                Metric::Counter(c) => Some(c),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::new());
                (c.clone(), Metric::Counter(c))
            },
        )
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.resolve(
            name,
            |m| match m {
                Metric::Gauge(g) => Some(g),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::new());
                (g.clone(), Metric::Gauge(g))
            },
        )
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.resolve(
            name,
            |m| match m {
                Metric::Histogram(h) => Some(h),
                _ => None,
            },
            || {
                let h = Arc::new(Histogram::new());
                (h.clone(), Metric::Histogram(h))
            },
        )
    }

    /// Get or create the counter `name{key="value"}` — per-dimension
    /// accounting (e.g. drops per channel) through one composed name.
    pub fn counter_labeled(&self, name: &str, key: &str, value: &str) -> Arc<Counter> {
        self.counter(&labeled(name, key, value))
    }

    /// Get or create the histogram `name{key="value"}`.
    pub fn histogram_labeled(&self, name: &str, key: &str, value: &str) -> Arc<Histogram> {
        self.histogram(&labeled(name, key, value))
    }

    /// Get or create the gauge `name{key="value"}` — per-dimension level
    /// tracking (e.g. connections per shard) through one composed name.
    pub fn gauge_labeled(&self, name: &str, key: &str, value: &str) -> Arc<Gauge> {
        self.gauge(&labeled(name, key, value))
    }

    /// Get or create the gauge `name{k1="v1",k2="v2"}` — two-dimensional
    /// level tracking (e.g. consumer lag per channel *and* connection).
    pub fn gauge_labeled2(&self, name: &str, k1: &str, v1: &str, k2: &str, v2: &str) -> Arc<Gauge> {
        self.gauge(&labeled2(name, k1, v1, k2, v2))
    }

    /// Register (or replace) `name` with an externally-owned counter — used to
    /// adopt counters that live inside another component (e.g. a `BufPool`).
    pub fn register_counter(&self, name: &str, counter: Arc<Counter>) {
        let mut shard = self.shards[shard_for(name)].lock().unwrap();
        if let Some(slot) = shard.iter_mut().find(|(n, _)| n == name) {
            slot.1 = Metric::Counter(counter);
        } else {
            shard.push((name.to_owned(), Metric::Counter(counter)));
        }
    }

    /// Append an event to the bounded trace ring.
    pub fn trace(&self, stage: &'static str, value: u64) {
        self.trace.push(stage, value);
    }

    /// The most recent trace events, oldest first.
    pub fn recent_traces(&self) -> Vec<TraceEvent> {
        self.trace.recent()
    }

    /// A consistent-enough copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            for (name, metric) in shard.iter() {
                match metric {
                    Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                    Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                    Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
                }
            }
        }
        let events = self.trace.recent();
        let skip = events.len().saturating_sub(TRACE_EXPORT_CAP);
        snap.traces = events[skip..]
            .iter()
            .map(|e| (e.stage.to_owned(), e.at_ns, e.value))
            .collect();
        snap.sort();
        snap
    }
}

/// A point-in-time copy of a registry's metrics, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// The most recent trace-ring events as `(stage, at_ns, value)`,
    /// oldest first, bounded to [`TRACE_EXPORT_CAP`].
    pub traces: Vec<(String, u64, u64)>,
}

impl Snapshot {
    fn sort(&mut self) {
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Merge another snapshot into this one: counters and gauges add,
    /// histograms merge bucket-wise, names union.
    pub fn merge_from(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some(slot) => slot.1 += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some(slot) => slot.1 += v,
                None => self.gauges.push((name.clone(), *v)),
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some(slot) => slot.1.merge(h),
                None => self.histograms.push((name.clone(), *h)),
            }
        }
        // Trace events interleave by time; the bound keeps the freshest.
        self.traces.extend(other.traces.iter().cloned());
        self.traces.sort_by_key(|&(_, at_ns, _)| at_ns);
        let skip = self.traces.len().saturating_sub(TRACE_EXPORT_CAP);
        self.traces.drain(..skip);
        self.sort();
    }
}

/// Whether span timing is enabled (checked by [`crate::Span::enter`]).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enable or disable span timing. Counters are unaffected; spans
/// become no-ops so the overhead of `Instant::now()` can be measured away.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span timing is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since the process-wide observation epoch (first call).
pub fn epoch_ns() -> u64 {
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(std::time::Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("events");
        let b = r.counter("events");
        a.add(3);
        b.inc();
        assert_eq!(r.snapshot().counter("events"), Some(4));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.histogram("x");
    }

    #[test]
    fn snapshot_is_sorted_and_merges() {
        let r = Registry::new();
        r.counter("b").add(1);
        r.counter("a").add(2);
        r.gauge("depth").set(-3);
        r.histogram("lat").record(100);

        let mut s1 = r.snapshot();
        let names: Vec<&str> = s1.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b"]);

        r.counter("c").add(7);
        r.histogram("lat").record(200);
        let s2 = r.snapshot();
        s1.merge_from(&s2);
        assert_eq!(s1.counter("a"), Some(4));
        assert_eq!(s1.counter("c"), Some(7));
        assert_eq!(s1.gauge("depth"), Some(-6));
        assert_eq!(s1.histogram("lat").unwrap().count, 3);
    }

    #[test]
    fn labeled_metrics_are_plain_entries() {
        let r = Registry::new();
        r.counter_labeled("dropped", "chan", "alpha").add(2);
        r.counter_labeled("dropped", "chan", "beta").inc();
        r.histogram_labeled("enqueue_ns", "chan", "alpha")
            .record(50);
        let snap = r.snapshot();
        assert_eq!(snap.counter("dropped{chan=\"alpha\"}"), Some(2));
        assert_eq!(snap.counter("dropped{chan=\"beta\"}"), Some(1));
        assert_eq!(
            snap.histogram(&labeled("enqueue_ns", "chan", "alpha"))
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn snapshot_carries_bounded_trace_ring() {
        let r = Registry::new();
        for i in 0..(TRACE_EXPORT_CAP as u64 + 10) {
            r.trace("tick", i);
        }
        let snap = r.snapshot();
        assert_eq!(snap.traces.len(), TRACE_EXPORT_CAP);
        assert_eq!(snap.traces[0].2, 10, "oldest beyond the cap trimmed");
        assert_eq!(snap.traces.last().unwrap().2, TRACE_EXPORT_CAP as u64 + 9);

        let mut merged = Snapshot::default();
        merged.merge_from(&snap);
        merged.merge_from(&snap);
        assert_eq!(merged.traces.len(), TRACE_EXPORT_CAP, "merge keeps bound");
    }

    #[test]
    fn adopted_counter_is_read_through() {
        let r = Registry::new();
        let external = Arc::new(Counter::new());
        external.add(41);
        r.register_counter("pool_hits", external.clone());
        external.inc();
        assert_eq!(r.snapshot().counter("pool_hits"), Some(42));
    }
}
