//! Lightweight span timers: `Span::enter` starts the clock, dropping the
//! guard records the elapsed nanoseconds into a histogram.
//!
//! When spans are disabled via [`crate::set_enabled`]`(false)` the guard is
//! inert — no `Instant::now()` call is made — so instrumented code can be
//! compared against an uninstrumented baseline at runtime.

use std::time::Instant;

use crate::metric::Histogram;
use crate::registry::enabled;

/// An RAII timing guard; records elapsed ns into its histogram on drop.
#[must_use = "a span records on drop; binding it to _ discards the timing"]
pub struct Span<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl<'a> Span<'a> {
    /// Start timing into `hist` (a no-op guard if spans are disabled).
    #[inline]
    pub fn enter(hist: &'a Histogram) -> Span<'a> {
        Span {
            hist,
            start: enabled().then(Instant::now),
        }
    }
}

impl Drop for Span<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record_duration(start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::set_enabled;

    // One test, not two: `set_enabled` is process-global and the test
    // harness runs tests concurrently.
    #[test]
    fn span_records_on_drop_and_disabling_makes_it_inert() {
        let h = Histogram::new();
        {
            let _span = Span::enter(&h);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.sum >= 1_000_000, "recorded {} ns", snap.sum);

        set_enabled(false);
        {
            let _span = Span::enter(&h);
        }
        set_enabled(true);
        assert_eq!(h.snapshot().count, 1);
    }
}
