//! Metric primitives: atomic counters, gauges, and sharded log2 histograms.
//!
//! All recording paths are lock-free and allocation-free: counters and gauges
//! are single relaxed atomics; histograms spread their buckets over a small
//! fixed number of shards indexed by a per-thread token so concurrent
//! recorders do not contend on one cache line.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of log2 buckets. Bucket 0 holds the value 0; bucket `k >= 1` holds
/// values in `[2^(k-1), 2^k)`; the last bucket absorbs everything above its
/// lower bound. 40 buckets cover nanosecond latencies up to ~9 minutes.
pub const BUCKETS: usize = 40;

/// Number of independent bucket shards per histogram.
const SHARDS: usize = 4;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed up/down gauge (e.g. active connections, queue depth).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The log2 bucket index for a value.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of bucket `i` (the last bucket is open-ended and
/// reports `u64::MAX`).
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[derive(Debug)]
struct HistShard {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistShard {
    fn new() -> HistShard {
        HistShard {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A fixed-bucket log2 histogram, sharded to keep concurrent recorders off
/// each other's cache lines. Recording is two relaxed `fetch_add`s plus one
/// for the running sum; no locks, no allocation.
#[derive(Debug)]
pub struct Histogram {
    shards: [HistShard; SHARDS],
}

static NEXT_THREAD_SHARD: AtomicUsize = AtomicUsize::new(0);

#[inline]
fn thread_shard() -> usize {
    thread_local! {
        static SHARD: usize =
            NEXT_THREAD_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            shards: std::array::from_fn(|_| HistShard::new()),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let shard = &self.shards[thread_shard()];
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
        shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Merge all shards into one snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for shard in &self.shards {
            out.count += shard.count.load(Ordering::Relaxed);
            out.sum += shard.sum.load(Ordering::Relaxed);
            for (acc, b) in out.buckets.iter_mut().zip(shard.buckets.iter()) {
                *acc += b.load(Ordering::Relaxed);
            }
        }
        out
    }
}

/// An immutable, mergeable copy of a histogram's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Add another snapshot's observations into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (`0.0..=1.0`).
    /// Returns 0 when empty. Log2 buckets bound the answer within 2x.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_log2_invariants() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        for i in 1..BUCKETS - 1 {
            // Every bucket's bounds map back to the bucket itself.
            assert_eq!(bucket_index(bucket_lower(i)), i, "lower bound of {i}");
            assert_eq!(bucket_index(bucket_upper(i)), i, "upper bound of {i}");
        }
    }

    #[test]
    fn record_and_snapshot() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 7, 100, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1_000_109);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 2); // the ones
        assert_eq!(s.buckets[bucket_index(7)], 1);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }

    #[test]
    fn quantile_brackets_the_value() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let median = s.quantile(0.5);
        // True median is 500; log2 buckets answer within its bucket bound.
        assert!(
            (256..=1023).contains(&median),
            "median bucket bound {median}"
        );
        assert_eq!(s.quantile(0.0), s.quantile(1.0 / 1000.0));
        assert!(s.quantile(1.0) >= 1000);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_observations() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(3);
        a.record(900);
        b.record(3);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 906);
        assert_eq!(m.buckets[bucket_index(3)], 2);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 8000);
    }
}
