//! Property tests for the log2 histogram: bucket invariants, merge
//! commutativity/associativity, and quantile bounds.

use pbio_obs::{bucket_index, bucket_lower, bucket_upper, Histogram, HistogramSnapshot, BUCKETS};
use proptest::collection::vec;
use proptest::prelude::*;

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut m = *a;
    m.merge(b);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every value lands in exactly the bucket whose bounds contain it.
    #[test]
    fn bucket_bounds_contain_their_values(v in 0u64..u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        prop_assert!(bucket_lower(i) <= v);
        prop_assert!(v <= bucket_upper(i));
        if i + 1 < BUCKETS {
            prop_assert!(bucket_upper(i) < bucket_lower(i + 1));
        }
    }

    /// count == #observations, sum == Σ values, buckets partition the count.
    #[test]
    fn snapshot_accounts_for_every_observation(values in vec(0u64..1u64 << 40, 0..200)) {
        let s = record_all(&values);
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().sum::<u64>());
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        for &v in &values {
            prop_assert!(s.buckets[bucket_index(v)] > 0);
        }
    }

    /// Recording two batches separately and merging equals recording them
    /// together, in either merge order.
    #[test]
    fn merge_is_commutative_and_matches_joint_recording(
        xs in vec(0u64..1u64 << 40, 0..100),
        ys in vec(0u64..1u64 << 40, 0..100),
    ) {
        let a = record_all(&xs);
        let b = record_all(&ys);
        let joint: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
        let ab = merged(&a, &b);
        prop_assert_eq!(ab, merged(&b, &a));
        prop_assert_eq!(ab, record_all(&joint));
    }

    /// Quantiles are monotone in q and bracket the extremes.
    #[test]
    fn quantiles_are_monotone_and_bracket(values in vec(0u64..1u64 << 40, 1..200)) {
        let s = record_all(&values);
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        let mut prev = 0u64;
        for step in 0..=10u32 {
            let q = s.quantile(f64::from(step) / 10.0);
            prop_assert!(q >= prev, "quantile not monotone");
            prev = q;
        }
        // The lowest quantile's bucket holds the minimum; the highest
        // quantile is an upper bound for the maximum.
        prop_assert_eq!(s.quantile(0.0), bucket_upper(bucket_index(min)));
        prop_assert!(s.quantile(1.0) >= max);
    }
}
