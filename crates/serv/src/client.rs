//! The blocking client: one TCP session with a serv daemon.
//!
//! A [`ServClient`] plays either or both protocol roles:
//!
//! * **publisher** — register formats once ([`ServClient::register_format`]
//!   ships the serialized layout; the daemon dedups it against every other
//!   session's), then [`ServClient::publish`] native bytes with no
//!   per-event encoding at all: the NDR sender-side O(1) cost.
//! * **subscriber** — [`ServClient::subscribe`] with an optional
//!   [`Predicate`] (evaluated on the daemon, against the publisher's wire
//!   format, before transmission), then [`ServClient::poll`] events. All
//!   receive-side conversion runs here, in an embedded [`pbio::Reader`]:
//!   homogeneous publisher/subscriber pairs stay zero-copy, heterogeneous
//!   pairs get a DCG conversion compiled on first contact with the format.
//!
//! With [`ClientConfig::resume`] enabled the session is **fault
//! tolerant**: a broken connection flips the client into an outage state
//! instead of erroring, publishes buffer locally (bounded, drop-oldest,
//! counted), and every subsequent call drives a reconnect with capped
//! exponential backoff plus deterministic jitter. On reconnect the client
//! resumes under a bumped session epoch ([`crate::protocol::K_RESUME`]),
//! replays its format registrations, channel opens, and subscriptions,
//! then flushes the buffered publishes — callers never see the outage
//! beyond the counters and the latency.

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pbio::{BufPool, PbioError, PooledBuf, Reader, RecordView};
use pbio_chan::filter::Predicate;
use pbio_chan::wire::serialize_predicate;
use pbio_net::clock::ClockSync;
use pbio_net::frame::{
    discard_frame_body, read_frame, read_frame_body, read_frame_header, write_frame_raw, Frame,
    FrameError, FRAME_HEADER_SIZE,
};
use pbio_obs::export::{
    hop_schema, hop_value, snapshot_from_value, stats_schema, stats_value, topo_from_value,
    StatsHeader, TopoSnapshot, ROLE_CLIENT,
};
use pbio_obs::{
    epoch_ns, Counter, Histogram, Registry, Snapshot, Span, TraceCtx, TraceHop, TraceSampler,
    TraceSink, HOP_DECODE, TRACE_TRAILER_LEN,
};
use pbio_types::arch::ArchProfile;
use pbio_types::layout::Layout;
use pbio_types::meta::{deserialize_layout, serialize_layout};
use pbio_types::schema::Schema;
use pbio_types::value::{decode_native, encode_native_into, RecordValue};

use crate::error::ServError;
use crate::protocol::*;

/// Smallest read timeout we arm (zero would disable the timeout entirely).
const MIN_TIMEOUT: Duration = Duration::from_millis(1);

/// Default per-call timeout for handshake and acknowledged requests.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(5);

/// One event delivered to a subscriber: the record, viewed through the
/// subscriber's own layout (converted if the publisher's architecture
/// differs, borrowed straight from the receive buffer if not).
pub struct Event<'a> {
    /// Channel the event arrived on.
    pub channel: u32,
    /// Daemon-global format id of the record.
    pub format: u32,
    /// The event's offset in the channel's segment log — present only on
    /// durable channels with the durable capability negotiated.
    pub offset: Option<u64>,
    /// The record itself.
    pub view: RecordView<'a>,
}

/// Client-side counters — the same shape of books the daemon keeps, so a
/// monitoring consumer can line both up stage by stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Events received.
    pub events: u64,
    /// Events used directly from the receive buffer (no conversion).
    pub zero_copy_events: u64,
    /// Events that went through a generated conversion.
    pub converted_events: u64,
    /// Frame bytes received (headers + bodies).
    pub bytes_in: u64,
    /// Frame bytes sent (headers + bodies).
    pub bytes_out: u64,
    /// Scratch-buffer requests served from the pool.
    pub pool_hits: u64,
    /// Scratch-buffer requests that had to allocate.
    pub pool_misses: u64,
    /// Events discarded because they raced an acknowledged request and
    /// overflowed the bounded pending queue.
    pub dropped: u64,
    /// Publish calls made (whether sent directly or buffered).
    pub publishes: u64,
    /// Publishes buffered locally during an outage (sent-direct count is
    /// `publishes - buffered`).
    pub buffered: u64,
    /// Buffered publishes replayed to the daemon after a reconnect.
    pub buffered_replayed: u64,
    /// Buffered publishes discarded by the outage buffer's drop-oldest
    /// bound before any reconnect succeeded.
    pub buffer_dropped: u64,
    /// Completed reconnect + resume + replay cycles.
    pub reconnects: u64,
    /// Inbound frames rejected (failed checksum or oversized length) and
    /// skipped without tearing the session down.
    pub frames_rejected: u64,
    /// Publishes the daemon acknowledged as durable (flushed to its
    /// segment log) via [`crate::protocol::K_PUBLISH_ACK`].
    pub publishes_acked: u64,
}

/// Pre-resolved handles into the client's per-instance registry.
struct ClientMetrics {
    events: Arc<Counter>,
    zero_copy_events: Arc<Counter>,
    converted_events: Arc<Counter>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    dropped: Arc<Counter>,
    publishes: Arc<Counter>,
    buffered: Arc<Counter>,
    buffered_replayed: Arc<Counter>,
    buffer_dropped: Arc<Counter>,
    reconnects: Arc<Counter>,
    frames_rejected: Arc<Counter>,
    publishes_acked: Arc<Counter>,
    /// Time encoding a [`RecordValue`] in [`ServClient::publish_value`].
    encode_ns: Arc<Histogram>,
    /// Time converting a received record that was not zero-copy.
    convert_ns: Arc<Histogram>,
}

impl ClientMetrics {
    fn resolve(reg: &Registry) -> ClientMetrics {
        ClientMetrics {
            events: reg.counter("client_events"),
            zero_copy_events: reg.counter("client_zero_copy_events"),
            converted_events: reg.counter("client_converted_events"),
            bytes_in: reg.counter("client_bytes_in"),
            bytes_out: reg.counter("client_bytes_out"),
            dropped: reg.counter("client_dropped"),
            publishes: reg.counter("client_publishes"),
            buffered: reg.counter("client_buffered"),
            buffered_replayed: reg.counter("client_buffered_replayed"),
            buffer_dropped: reg.counter("client_buffer_dropped"),
            reconnects: reg.counter("client_reconnects"),
            frames_rejected: reg.counter("client_frames_rejected"),
            publishes_acked: reg.counter("client_publishes_acked"),
            encode_ns: reg.histogram("client_encode_ns"),
            convert_ns: reg.histogram("client_convert_ns"),
        }
    }
}

/// Events buffered while awaiting an acknowledgement before drop-oldest
/// kicks in (control frames are never dropped).
const MAX_PENDING_EVENTS: usize = 256;

/// Bounded capacity of the client-side hop sink (decode hops accumulate
/// here until [`ServClient::publish_trace`] or
/// [`ServClient::take_trace_hops`] drains them).
const TRACE_SINK_CAPACITY: usize = 256;

/// Client connection options.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Offer the distributed-tracing capability in the handshake. When
    /// the daemon grants it, sampled publishes carry a trace trailer and
    /// received traced events are stamped with a `decode` hop. `false`
    /// makes this client indistinguishable from a pre-tracing one.
    pub trace: bool,
    /// Offer the session-resume capability and auto-reconnect on
    /// connection loss. When granted by the daemon, a broken socket is an
    /// *outage* rather than an error: publishes buffer locally and the
    /// session (formats, channels, subscriptions) is re-established
    /// transparently under a new epoch once the daemon is reachable.
    pub resume: bool,
    /// First reconnect backoff step; doubles per failed attempt.
    pub backoff_initial: Duration,
    /// Backoff ceiling (the "capped" in capped exponential backoff).
    pub backoff_max: Duration,
    /// Publishes buffered during an outage before drop-oldest discards
    /// the oldest (each discard is counted in
    /// [`ClientStats::buffer_dropped`]).
    pub outage_buffer: usize,
    /// Offer the durable-channels capability in the handshake. When the
    /// daemon grants it (it runs a store), events on durable channels
    /// arrive with their log offset, publishes are acknowledged once on
    /// disk ([`crate::protocol::K_PUBLISH_ACK`]), and
    /// [`ServClient::subscribe_from`] replays history. `false` makes
    /// this client indistinguishable from a pre-durability one.
    pub durable: bool,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            trace: true,
            resume: false,
            backoff_initial: Duration::from_millis(25),
            backoff_max: Duration::from_secs(1),
            outage_buffer: 256,
            durable: true,
        }
    }
}

/// Receive-buffer size: large enough that one of the daemon's coalesced
/// write batches arrives in a single read syscall.
const READ_BUF_SIZE: usize = 64 * 1024;

/// A blocking connection to a [`crate::ServDaemon`].
pub struct ServClient {
    /// Write half (and the socket handle timeouts are armed on).
    stream: TcpStream,
    /// Buffered read half of the same socket.
    rx: BufReader<TcpStream>,
    profile: ArchProfile,
    reader: Reader,
    /// Daemon-global format id -> this client's native layout (for
    /// encoding values to publish).
    formats: HashMap<u32, Arc<Layout>>,
    /// Frames that arrived while awaiting an acknowledgement.
    pending: VecDeque<Frame>,
    /// Scratch pool: frame bodies and value-encoding buffers cycle
    /// through it, so the steady-state decode path never allocates.
    pool: Arc<BufPool>,
    /// Body of the event currently viewed (zero-copy views borrow it);
    /// returns to the pool when the next event replaces it.
    event_buf: PooledBuf,
    timeout: Duration,
    next_token: u32,
    /// Daemon-assigned connection id (from the HELLO ack) — stamps this
    /// client's stats records.
    conn_id: u32,
    /// Per-client metric registry ([`ClientStats`] is a view of it).
    registry: Arc<Registry>,
    metrics: ClientMetrics,
    /// Wire layouts by format id, from ANNOUNCE frames: enough to decode
    /// any announced record without a declared expectation.
    wire_layouts: HashMap<u32, Arc<Layout>>,
    /// Cached `$stats` schema/format pair, re-registered only when the
    /// metric set (hence the schema) changes.
    stats_format: Option<(Schema, u32)>,
    stats_seq: u64,
    /// Capability bits granted by the daemon ([`CAP_TRACE`]…).
    caps: u32,
    /// Offset into the daemon's timebase, measured around the handshake;
    /// every trace stamp this client produces is pre-corrected through it.
    clock: ClockSync,
    /// Head-based publish sampler (modulus adopted from the HELLO ack;
    /// 0 whenever tracing is off, making [`TraceSampler::try_sample`] a
    /// single relaxed load on the publish path).
    sampler: TraceSampler,
    /// Decode hops recorded for received traced events.
    trace_hops: Arc<TraceSink>,
    /// Channel names by id (from [`ServClient::open_channel`]), for hop
    /// and drop metric labels.
    chan_names: HashMap<u32, String>,
    /// Per-channel `hop_decode_ns{chan=…}`, resolved lazily on the
    /// sampled path only.
    decode_hists: HashMap<u32, Arc<Histogram>>,
    /// Per-channel `client_dropped{chan=…}`, resolved lazily on the drop
    /// path only.
    drop_counters: HashMap<u32, Arc<Counter>>,
    /// Cached hop-record format id (registered on first
    /// [`ServClient::publish_trace`]).
    trace_format: Option<u32>,
    /// Connection options (resume, backoff, tracing offer).
    config: ClientConfig,
    /// Resolved daemon address, kept for reconnects.
    addr: SocketAddr,
    /// Process-unique identity this client resumes sessions under.
    client_id: u64,
    /// Monotonic session epoch: bumped for every [`K_RESUME`], so the
    /// daemon can tell the surviving connection from stale duplicates.
    epoch: u32,
    /// Resume was offered *and* granted: connection loss is an outage,
    /// not an error.
    resume_on: bool,
    /// Present while disconnected: the reconnect backoff schedule.
    outage: Option<Outage>,
    /// Publishes buffered during an outage (public channel + format ids,
    /// native bytes), drained oldest-first after a successful resume.
    outage_buf: VecDeque<(u32, u32, Vec<u8>)>,
    /// Format registrations in order, by public id, for session replay
    /// (the layout itself lives in `formats`).
    journal_formats: Vec<u32>,
    /// Channel opens in order: `(name, public id, flags)` — flags carry
    /// [`CHAN_DURABLE`] so a replayed open re-attaches the segment log.
    journal_channels: Vec<(String, u32, u32)>,
    /// Subscriptions in order: `(public channel, predicate flag,
    /// serialized predicate)`.
    journal_subs: Vec<(u32, u32, Vec<u8>)>,
    /// Offset subscriptions in order: `(public channel, starting
    /// offset)`. On resume each replays from
    /// `max(start, last seen offset + 1)` — lossless across the outage.
    journal_subs_from: Vec<(u32, u64)>,
    /// Per public channel: highest event offset seen by the poll loop
    /// (drives lossless `subscribe_from` resume).
    last_offsets: HashMap<u32, u64>,
    /// Per public channel: last offset the daemon acked as durable
    /// ([`K_PUBLISH_ACK`]).
    durable_offsets: HashMap<u32, u64>,
    /// Public→wire id maps. Public ids are what callers hold; wire ids
    /// are what the *current* daemon session assigned. Identity until a
    /// daemon restart makes them diverge.
    fmt_to_wire: HashMap<u32, u32>,
    fmt_from_wire: HashMap<u32, u32>,
    chan_to_wire: HashMap<u32, u32>,
    chan_from_wire: HashMap<u32, u32>,
    /// Mint for public ids whose wire id collided with an existing
    /// public id after a daemon restart.
    next_public: u32,
}

/// Reconnect schedule while disconnected.
struct Outage {
    /// Failed attempts so far (drives the exponential step).
    attempts: u32,
    /// Next moment a reconnect may be attempted.
    next_try: Instant,
}

/// One event delivered raw: the publisher's untouched NDR bytes plus the
/// wire layout they were announced with (see [`ServClient::poll_raw`]).
#[derive(Debug)]
pub struct RawEvent<'a> {
    /// Channel the event arrived on.
    pub channel: u32,
    /// Daemon-global format id of the record.
    pub format: u32,
    /// The event's offset in the channel's segment log — present only on
    /// durable channels with the durable capability negotiated.
    pub offset: Option<u64>,
    /// The publisher's layout, as announced.
    pub layout: Arc<Layout>,
    /// The record's native bytes, exactly as published.
    pub bytes: &'a [u8],
}

impl ServClient {
    /// Connect and complete the session handshake with default options
    /// (tracing offered; see [`ClientConfig`]).
    pub fn connect(
        addr: impl ToSocketAddrs,
        profile: &ArchProfile,
    ) -> Result<ServClient, ServError> {
        ServClient::connect_with(addr, profile, ClientConfig::default())
    }

    /// Connect and complete the session handshake.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        profile: &ArchProfile,
        config: ClientConfig,
    ) -> Result<ServClient, ServError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let rx = BufReader::with_capacity(READ_BUF_SIZE, stream.try_clone()?);
        let pool = BufPool::new();
        let event_buf = pool.get(0);
        let registry = Arc::new(Registry::new());
        let metrics = ClientMetrics::resolve(&registry);
        // Adopt the pool's counters so the registry reads them through.
        registry.register_counter("pool_hits", pool.hit_counter().clone());
        registry.register_counter("pool_misses", pool.miss_counter().clone());
        let mut client = ServClient {
            stream,
            rx,
            profile: profile.clone(),
            reader: Reader::new(profile),
            formats: HashMap::new(),
            pending: VecDeque::new(),
            pool,
            event_buf,
            timeout: DEFAULT_TIMEOUT,
            next_token: 0,
            conn_id: 0,
            registry,
            metrics,
            wire_layouts: HashMap::new(),
            stats_format: None,
            stats_seq: 0,
            caps: 0,
            clock: ClockSync::identity(),
            sampler: TraceSampler::new(0),
            trace_hops: Arc::new(TraceSink::new(TRACE_SINK_CAPACITY)),
            chan_names: HashMap::new(),
            decode_hists: HashMap::new(),
            drop_counters: HashMap::new(),
            trace_format: None,
            config,
            addr,
            client_id: fresh_client_id(),
            epoch: 0,
            resume_on: false,
            outage: None,
            outage_buf: VecDeque::new(),
            journal_formats: Vec::new(),
            journal_channels: Vec::new(),
            journal_subs: Vec::new(),
            journal_subs_from: Vec::new(),
            last_offsets: HashMap::new(),
            durable_offsets: HashMap::new(),
            fmt_to_wire: HashMap::new(),
            fmt_from_wire: HashMap::new(),
            chan_to_wire: HashMap::new(),
            chan_from_wire: HashMap::new(),
            next_public: 0,
        };
        client.handshake()?;
        if client.resume_on {
            // Register the resume identity immediately: epoch 1 for the
            // first session, so any later reconnect's epoch supersedes it.
            client.send_resume()?;
        }
        Ok(client)
    }

    /// The HELLO exchange over the current socket: version and
    /// capability negotiation plus the clock-offset sample. Used by the
    /// initial connect and every reconnect.
    fn handshake(&mut self) -> Result<(), ServError> {
        // The HELLO round trip doubles as the clock-offset exchange: the
        // daemon samples its clock while serving it, and the local stamps
        // bracketing the round trip bound the error to rtt/2.
        let mut offered = 0;
        if self.config.trace {
            offered |= CAP_TRACE;
        }
        if self.config.resume {
            offered |= CAP_RESUME;
        }
        if self.config.durable {
            offered |= CAP_DURABLE;
        }
        let name = self.profile.name.as_bytes().to_vec();
        let t_send = epoch_ns();
        self.send_raw(K_HELLO, PROTOCOL_VERSION, offered, &name)?;
        let ack = self.await_ack(K_HELLO_ACK, PROTOCOL_VERSION)?;
        let t_recv = epoch_ns();
        debug_assert_eq!(ack.kind, K_HELLO_ACK);
        self.conn_id = ack.b;
        self.caps = 0;
        // Old daemons send an empty ack body: no capabilities, no clock
        // sample, tracing stays off.
        if ack.body.len() >= 16 {
            let granted = u32::from_be_bytes(ack.body[0..4].try_into().unwrap());
            let t_peer = u64::from_be_bytes(ack.body[4..12].try_into().unwrap());
            let sample_mod = u32::from_be_bytes(ack.body[12..16].try_into().unwrap());
            self.caps = granted & offered;
            if self.caps & CAP_TRACE != 0 {
                self.clock = ClockSync::from_exchange(t_send, t_peer, t_recv);
                self.sampler.set_modulus(sample_mod);
            }
        }
        self.resume_on = self.config.resume && self.caps & CAP_RESUME != 0;
        Ok(())
    }

    /// Set the timeout applied to acknowledged requests (format and
    /// channel registration, subscription, disconnect).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout.max(MIN_TIMEOUT);
    }

    /// This client's architecture profile.
    pub fn profile(&self) -> &ArchProfile {
        &self.profile
    }

    /// Register a format for publishing. The layout is computed for this
    /// client's architecture, serialized, and shipped once; the returned
    /// id is the daemon-global format id (identical layouts registered by
    /// any session share it).
    /// The ids handed back are **public**: stable across reconnects.
    /// While the session never breaks they equal the daemon's wire ids;
    /// after a daemon restart the replay re-registers everything and the
    /// client maps between the caller's ids and the new session's.
    pub fn register_format(&mut self, schema: &Schema) -> Result<u32, ServError> {
        self.ensure_connected()?;
        let layout = Arc::new(Layout::of(schema, &self.profile).map_err(PbioError::from)?);
        let meta = serialize_layout(&layout);
        let wire = self.request_format(&meta)?;
        let public = match self.fmt_from_wire.get(&wire) {
            Some(&p) => p,
            None => {
                // Adopt the wire id as the public id unless a previous
                // session already claimed it for a different format.
                let p = if self.formats.contains_key(&wire) {
                    self.mint_public()
                } else {
                    wire
                };
                self.fmt_from_wire.insert(wire, p);
                self.fmt_to_wire.insert(p, wire);
                self.journal_formats.push(p);
                p
            }
        };
        self.formats.insert(public, layout);
        Ok(public)
    }

    /// Create or open the named channel; returns its (public) id.
    pub fn open_channel(&mut self, name: &str) -> Result<u32, ServError> {
        self.open_channel_flags(name, 0)
    }

    /// Create or open the named channel as **durable**: the daemon
    /// appends every event published on it to its segment log, acks
    /// publishers once bytes are flushed ([`ClientStats::publishes_acked`],
    /// [`ServClient::last_durable_offset`]), and serves history through
    /// [`ServClient::subscribe_from`]. Fails if the daemon runs without a
    /// store. Durability is sticky daemon-side: later plain opens of the
    /// same name share the durable channel.
    pub fn open_channel_durable(&mut self, name: &str) -> Result<u32, ServError> {
        self.open_channel_flags(name, CHAN_DURABLE)
    }

    fn open_channel_flags(&mut self, name: &str, flags: u32) -> Result<u32, ServError> {
        self.ensure_connected()?;
        let wire = self.request_channel(name, flags)?;
        let public = match self.chan_from_wire.get(&wire) {
            Some(&p) => {
                // An already-open channel re-opened with stronger flags:
                // upgrade the journal entry so a resume replays them.
                if flags != 0 {
                    if let Some(e) = self.journal_channels.iter_mut().find(|(n, _, _)| n == name) {
                        e.2 |= flags;
                    }
                }
                p
            }
            None => {
                let journaled = self
                    .journal_channels
                    .iter()
                    .find(|(n, _, _)| n == name)
                    .map(|&(_, p, _)| p);
                let p = match journaled {
                    Some(p) => p,
                    None => {
                        let p = if self.journal_channels.iter().any(|&(_, jp, _)| jp == wire) {
                            self.mint_public()
                        } else {
                            wire
                        };
                        self.journal_channels.push((name.to_owned(), p, flags));
                        p
                    }
                };
                self.chan_from_wire.insert(wire, p);
                self.chan_to_wire.insert(p, wire);
                p
            }
        };
        // Remember the name so per-channel metrics label by it rather
        // than by a bare id.
        self.chan_names
            .entry(public)
            .or_insert_with(|| name.to_owned());
        Ok(public)
    }

    /// One K_FORMAT round trip; returns the daemon's wire format id.
    fn request_format(&mut self, meta: &[u8]) -> Result<u32, ServError> {
        let token = self.next_token;
        self.next_token += 1;
        self.send_raw(K_FORMAT, token, 0, meta)?;
        Ok(self.await_ack(K_FORMAT_ACK, token)?.b)
    }

    /// One K_CHANNEL round trip; returns the daemon's wire channel id.
    fn request_channel(&mut self, name: &str, flags: u32) -> Result<u32, ServError> {
        let token = self.next_token;
        self.next_token += 1;
        self.send_raw(K_CHANNEL, token, flags, name.as_bytes())?;
        Ok(self.await_ack(K_CHANNEL_ACK, token)?.b)
    }

    /// A public id not colliding with any id a daemon session might
    /// assign (wire ids count up from zero; this mints from a high range).
    fn mint_public(&mut self) -> u32 {
        self.next_public += 1;
        0x4000_0000 + self.next_public
    }

    /// Register this client's resume identity under a freshly bumped
    /// epoch ([`K_RESUME`]). The daemon evicts any stale predecessor
    /// connection still holding the identity and acks; an `E_STALE`
    /// answer means *this* connection is the stale one.
    fn send_resume(&mut self) -> Result<(), ServError> {
        self.epoch += 1;
        let body = self.client_id.to_be_bytes();
        self.send_raw(K_RESUME, self.epoch, self.client_id as u32, &body)?;
        self.await_ack(K_RESUME_ACK, self.epoch)?;
        Ok(())
    }

    /// One full reconnect cycle: dial, handshake, resume under a new
    /// epoch, replay the session journal, flush the outage buffer. Any
    /// failure leaves the client disconnected for the caller to
    /// reschedule.
    fn reconnect_now(&mut self) -> Result<(), ServError> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        self.rx = BufReader::with_capacity(READ_BUF_SIZE, stream.try_clone()?);
        self.stream = stream;
        self.pending.clear();
        self.handshake()?;
        if !self.resume_on {
            return Err(ServError::Protocol(
                "daemon stopped granting session resume".into(),
            ));
        }
        self.send_resume()?;
        self.replay_session()?;
        self.outage = None;
        self.metrics.reconnects.inc();
        self.flush_outage()
    }

    /// Re-establish everything the caller set up before the outage:
    /// formats, channels, subscriptions — in registration order, against
    /// whatever wire ids the (possibly restarted) daemon now assigns.
    fn replay_session(&mut self) -> Result<(), ServError> {
        self.fmt_to_wire.clear();
        self.fmt_from_wire.clear();
        self.chan_to_wire.clear();
        self.chan_from_wire.clear();
        for public in self.journal_formats.clone() {
            let layout = self
                .formats
                .get(&public)
                .ok_or(ServError::UnknownFormat(public))?
                .clone();
            let meta = serialize_layout(&layout);
            let wire = self.request_format(&meta)?;
            self.fmt_to_wire.insert(public, wire);
            self.fmt_from_wire.insert(wire, public);
        }
        for (name, public, flags) in self.journal_channels.clone() {
            let wire = self.request_channel(&name, flags)?;
            self.chan_to_wire.insert(public, wire);
            self.chan_from_wire.insert(wire, public);
        }
        for (public, flagged, body) in self.journal_subs.clone() {
            let wire = self.chan_to_wire.get(&public).copied().unwrap_or(public);
            self.send_raw(K_SUBSCRIBE, wire, flagged, &body)?;
            self.await_ack(K_SUBSCRIBE_ACK, wire)?;
        }
        // Offset subscriptions resume from one past the last event this
        // client actually saw — the outage loses nothing: the daemon
        // replays the gap from its segment log.
        for (public, start) in self.journal_subs_from.clone() {
            let from = match self.last_offsets.get(&public) {
                Some(&last) => start.max(last + 1),
                None => start,
            };
            let wire = self.chan_to_wire.get(&public).copied().unwrap_or(public);
            self.send_raw(K_SUBSCRIBE_FROM, wire, 0, &from.to_be_bytes())?;
            self.await_ack(K_SUBSCRIBE_ACK, wire)?;
        }
        Ok(())
    }

    /// Replay buffered publishes oldest-first. On failure the unsent
    /// entry goes back to the front — nothing is lost to a reconnect that
    /// itself dies mid-flush.
    fn flush_outage(&mut self) -> Result<(), ServError> {
        while let Some((channel, format, native)) = self.outage_buf.pop_front() {
            match self.send_publish(channel, format, &native) {
                Ok(()) => self.metrics.buffered_replayed.inc(),
                Err(e) => {
                    self.outage_buf.push_front((channel, format, native));
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Enter the outage state (idempotent): first detection schedules an
    /// immediate reconnect attempt.
    fn mark_outage(&mut self) {
        if self.outage.is_none() {
            self.outage = Some(Outage {
                attempts: 0,
                next_try: Instant::now(),
            });
        }
    }

    /// Push the next attempt out by capped exponential backoff plus
    /// deterministic jitter (a hash of identity and attempt number — the
    /// same client replays the same schedule, which keeps seeded fault
    /// runs reproducible while still de-synchronizing distinct clients).
    fn schedule_retry(&mut self) {
        let Some(o) = self.outage.as_mut() else {
            return;
        };
        o.attempts += 1;
        let shift = (o.attempts - 1).min(10);
        let backoff = self
            .config
            .backoff_initial
            .saturating_mul(1u32 << shift)
            .min(self.config.backoff_max);
        let quarter = (backoff.as_nanos() as u64 / 4).max(1);
        let jitter = splitmix64(self.client_id ^ u64::from(o.attempts)) % quarter;
        o.next_try = Instant::now() + backoff + Duration::from_nanos(jitter);
    }

    /// One reconnect attempt right now; on failure the retry is
    /// rescheduled and `false` comes back.
    fn try_reconnect(&mut self) -> bool {
        match self.reconnect_now() {
            Ok(()) => true,
            Err(_) => {
                self.mark_outage();
                self.schedule_retry();
                false
            }
        }
    }

    /// `true` when connected — possibly by completing a due reconnect
    /// attempt on the spot. `false` while the backoff clock still runs.
    fn reconnect_if_due(&mut self) -> bool {
        match &self.outage {
            None => true,
            Some(o) if Instant::now() >= o.next_try => self.try_reconnect(),
            Some(_) => false,
        }
    }

    /// Block (bounded by the client timeout) until connected — the gate
    /// acknowledged requests go through, since unlike publishes they
    /// cannot be buffered.
    fn ensure_connected(&mut self) -> Result<(), ServError> {
        if self.outage.is_none() {
            return Ok(());
        }
        let deadline = Instant::now() + self.timeout;
        loop {
            if self.reconnect_if_due() {
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServError::Timeout);
            }
            let wait = self
                .outage
                .as_ref()
                .map(|o| o.next_try.saturating_duration_since(now))
                .unwrap_or_default()
                .min(deadline - now)
                .max(MIN_TIMEOUT);
            std::thread::sleep(wait);
        }
    }

    /// Subscribe to a channel. `schema` declares the record this
    /// subscriber expects (laid out for its own architecture; fields are
    /// matched by name, PBIO type-extension rules apply). `filter`, if
    /// given, is shipped to the daemon and evaluated there — at the
    /// source — so rejected events are never transmitted.
    pub fn subscribe(
        &mut self,
        channel: u32,
        schema: &Schema,
        filter: Option<&Predicate>,
    ) -> Result<(), ServError> {
        self.reader.expect(schema)?;
        self.subscribe_raw(channel, filter)
    }

    /// Subscribe without declaring an expected record schema. Events on
    /// such a channel must be consumed through [`ServClient::poll_raw`],
    /// which hands back the publisher's bytes and announced layout — the
    /// path for consumers (like stats monitors) that discover record
    /// shapes dynamically from the announcements themselves.
    pub fn subscribe_raw(
        &mut self,
        channel: u32,
        filter: Option<&Predicate>,
    ) -> Result<(), ServError> {
        self.ensure_connected()?;
        let (flagged, body) = match filter {
            Some(p) => (1, serialize_predicate(p)),
            None => (0, Vec::new()),
        };
        let wire = self.chan_to_wire.get(&channel).copied().unwrap_or(channel);
        self.send_raw(K_SUBSCRIBE, wire, flagged, &body)?;
        self.await_ack(K_SUBSCRIBE_ACK, wire)?;
        let entry = (channel, flagged, body);
        if !self.journal_subs.contains(&entry) {
            self.journal_subs.push(entry);
        }
        Ok(())
    }

    /// Subscribe to a **durable** channel starting at log offset `from`
    /// (0 = everything retained). The daemon streams history from its
    /// segment log — each event stamped with its offset — then hands off
    /// to live delivery with no gap and no duplicates. `schema` declares
    /// the expected record, as in [`ServClient::subscribe`].
    ///
    /// Requires the durable capability (offered by default, granted by
    /// daemons running a store) and a channel opened with
    /// [`ServClient::open_channel_durable`]. With resume negotiated, an
    /// outage resumes from one past the last offset this client saw —
    /// lossless reconnection.
    pub fn subscribe_from(
        &mut self,
        channel: u32,
        schema: &Schema,
        from: u64,
    ) -> Result<(), ServError> {
        self.reader.expect(schema)?;
        self.subscribe_from_raw(channel, from)
    }

    /// [`ServClient::subscribe_from`] without declaring a record schema;
    /// consume through [`ServClient::poll_raw`].
    pub fn subscribe_from_raw(&mut self, channel: u32, from: u64) -> Result<(), ServError> {
        self.ensure_connected()?;
        if self.caps & CAP_DURABLE == 0 {
            return Err(ServError::Protocol(
                "durable capability not negotiated with this daemon".into(),
            ));
        }
        let wire = self.chan_to_wire.get(&channel).copied().unwrap_or(channel);
        self.send_raw(K_SUBSCRIBE_FROM, wire, 0, &from.to_be_bytes())?;
        self.await_ack(K_SUBSCRIBE_ACK, wire)?;
        if !self.journal_subs_from.iter().any(|&(c, _)| c == channel) {
            self.journal_subs_from.push((channel, from));
        }
        Ok(())
    }

    /// Publish one event: the record's native bytes, sent as-is (no
    /// translation — the wire format *is* this machine's memory layout).
    /// Fire-and-forget; delivery errors surface on the daemon side.
    ///
    /// With resume negotiated, a dead connection never errors here: the
    /// publish lands in the bounded outage buffer (drop-oldest, counted)
    /// and is replayed after the next successful reconnect.
    pub fn publish(&mut self, channel: u32, format: u32, native: &[u8]) -> Result<(), ServError> {
        let layout = self
            .formats
            .get(&format)
            .ok_or(ServError::UnknownFormat(format))?;
        if native.len() < layout.size() {
            return Err(ServError::Protocol(format!(
                "payload is {} bytes, format {format} requires {}",
                native.len(),
                layout.size()
            )));
        }
        self.publish_native(channel, format, native)
    }

    /// The outage-aware publish tail: send directly while connected,
    /// buffer (bounded) while not, and convert a send that *discovers*
    /// the outage into a buffered publish rather than an error.
    fn publish_native(
        &mut self,
        channel: u32,
        format: u32,
        native: &[u8],
    ) -> Result<(), ServError> {
        self.metrics.publishes.inc();
        if !self.resume_on {
            return self.send_publish(channel, format, native);
        }
        if self.outage.is_some() && !self.reconnect_if_due() {
            self.buffer_publish(channel, format, native);
            return Ok(());
        }
        match self.send_publish(channel, format, native) {
            Ok(()) => Ok(()),
            Err(e) if is_disconnect(&e) => {
                self.mark_outage();
                self.buffer_publish(channel, format, native);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// The publish tail shared by [`ServClient::publish`] and
    /// [`ServClient::publish_value`]: map public ids to the current
    /// session's wire ids, then stamp a trace trailer onto the 1-in-N
    /// sampled publishes and send everything else untouched. With tracing
    /// off (not negotiated, or modulus 0) the extra cost is one relaxed
    /// atomic load — no branch on the wire, no allocation.
    fn send_publish(&mut self, channel: u32, format: u32, native: &[u8]) -> Result<(), ServError> {
        let wire_chan = self.chan_to_wire.get(&channel).copied().unwrap_or(channel);
        let wire_fmt = self.fmt_to_wire.get(&format).copied().unwrap_or(format);
        if self.caps & CAP_TRACE != 0 && self.sampler.try_sample() {
            let ctx = self.sampler.next_ctx(self.clock.to_peer(epoch_ns()));
            let mut buf = self.pool.get(native.len() + TRACE_TRAILER_LEN);
            buf.extend_from_slice(native);
            buf.extend_from_slice(&ctx.encode());
            return self.send_raw(K_PUBLISH, wire_chan, wire_fmt | TRACE_FLAG, &buf);
        }
        self.send_raw(K_PUBLISH, wire_chan, wire_fmt, native)
    }

    /// Park a publish in the outage buffer, evicting oldest-first past
    /// the configured bound. Every entry and eviction is counted, so
    /// `buffered == buffered_replayed + buffer_dropped` once the buffer
    /// drains.
    fn buffer_publish(&mut self, channel: u32, format: u32, native: &[u8]) {
        self.metrics.buffered.inc();
        self.outage_buf
            .push_back((channel, format, native.to_vec()));
        while self.outage_buf.len() > self.config.outage_buffer {
            self.outage_buf.pop_front();
            self.metrics.buffer_dropped.inc();
        }
    }

    /// Publish a dynamic value, encoding it through the registered
    /// layout first (convenience for tests and tools; hot paths publish
    /// native bytes directly).
    pub fn publish_value(
        &mut self,
        channel: u32,
        format: u32,
        value: &RecordValue,
    ) -> Result<(), ServError> {
        let layout = self
            .formats
            .get(&format)
            .ok_or(ServError::UnknownFormat(format))?
            .clone();
        let mut native = self.pool.get(layout.size());
        {
            let _span = Span::enter(&self.metrics.encode_ns);
            encode_native_into(value, &layout, &mut native).map_err(PbioError::from)?;
        }
        self.publish_native(channel, format, &native)
    }

    /// Wait up to `timeout` for the next event. Returns `Ok(None)` when
    /// the timeout elapses with no event. Format announcements are
    /// consumed transparently (they prepare the reader's conversion — or
    /// zero-copy — path before the first record of each format).
    pub fn poll(&mut self, timeout: Duration) -> Result<Option<Event<'_>>, ServError> {
        let deadline = Instant::now() + timeout;
        loop {
            let Some((kind, a, b, mut body)) = self.next_frame(deadline)? else {
                return Ok(None);
            };
            match kind {
                K_ANNOUNCE => {
                    self.note_wire_format(a, &body);
                    self.reader.on_format(a, &body)?;
                }
                K_EVENT => {
                    self.metrics.events.inc();
                    let (format, ctx, offset) = self.split_trailer(b, &mut body)?;
                    let zero_copy = self.reader.is_zero_copy(format);
                    if zero_copy {
                        self.metrics.zero_copy_events.inc();
                    } else {
                        self.metrics.converted_events.inc();
                    }
                    // The reader runs on wire ids (announcements carry
                    // them); the caller sees its stable public ids.
                    let channel_pub = self.chan_from_wire.get(&a).copied().unwrap_or(a);
                    let format_pub = self.fmt_from_wire.get(&format).copied().unwrap_or(format);
                    if let Some(off) = offset {
                        self.note_offset(channel_pub, off);
                    }
                    // The previous event's buffer returns to the pool
                    // here, ready for the next frame read.
                    self.event_buf = body;
                    if let Some(ctx) = ctx {
                        // Stamped before the conversion below, while the
                        // reader is still unborrowed.
                        self.record_decode_hop(channel_pub, &ctx);
                    }
                    let convert_hist = (!zero_copy).then(|| self.metrics.convert_ns.clone());
                    let _span = convert_hist.as_ref().map(|h| Span::enter(h));
                    let view = self.reader.on_data(format, &self.event_buf)?;
                    return Ok(Some(Event {
                        channel: channel_pub,
                        format: format_pub,
                        offset,
                        view,
                    }));
                }
                K_ERROR => {
                    return Err(ServError::Remote {
                        code: a,
                        message: String::from_utf8_lossy(&body).into_owned(),
                    })
                }
                other => {
                    return Err(ServError::Protocol(format!(
                        "unexpected frame kind {other:#04x} while polling"
                    )))
                }
            }
        }
    }

    /// [`ServClient::poll`] without the embedded reader: events come back
    /// as the publisher's untouched bytes plus the announced wire layout,
    /// for subscriptions made with [`ServClient::subscribe_raw`].
    pub fn poll_raw(&mut self, timeout: Duration) -> Result<Option<RawEvent<'_>>, ServError> {
        let deadline = Instant::now() + timeout;
        loop {
            let Some((kind, a, b, mut body)) = self.next_frame(deadline)? else {
                return Ok(None);
            };
            match kind {
                K_ANNOUNCE => self.note_wire_format(a, &body),
                K_EVENT => {
                    self.metrics.events.inc();
                    let (format, ctx, offset) = self.split_trailer(b, &mut body)?;
                    let Some(layout) = self.wire_layouts.get(&format).cloned() else {
                        return Err(ServError::Protocol(format!(
                            "event for unannounced format {format}"
                        )));
                    };
                    let channel_pub = self.chan_from_wire.get(&a).copied().unwrap_or(a);
                    let format_pub = self.fmt_from_wire.get(&format).copied().unwrap_or(format);
                    if let Some(off) = offset {
                        self.note_offset(channel_pub, off);
                    }
                    self.event_buf = body;
                    if let Some(ctx) = ctx {
                        self.record_decode_hop(channel_pub, &ctx);
                    }
                    return Ok(Some(RawEvent {
                        channel: channel_pub,
                        format: format_pub,
                        offset,
                        layout,
                        bytes: &self.event_buf,
                    }));
                }
                K_ERROR => {
                    return Err(ServError::Remote {
                        code: a,
                        message: String::from_utf8_lossy(&body).into_owned(),
                    })
                }
                other => {
                    return Err(ServError::Protocol(format!(
                        "unexpected frame kind {other:#04x} while polling"
                    )))
                }
            }
        }
    }

    /// Next frame as `(kind, a, b, body)`, from the pending queue or the
    /// socket; `None` once `deadline` passes. One frame per call: the
    /// steady state (frames read off the socket, bodies cycling through
    /// the pool) allocates nothing.
    ///
    /// Damaged input is survived rather than surfaced: oversized frames
    /// are drained and skipped, checksum failures are skipped (the body
    /// was consumed in full, so the stream stays in sync), and — with
    /// resume negotiated — a dead socket flips into the outage state and
    /// this keeps driving the reconnect schedule until `deadline`.
    fn next_frame(
        &mut self,
        deadline: Instant,
    ) -> Result<Option<(u8, u32, u32, PooledBuf)>, ServError> {
        if let Some(f) = self.pending.pop_front() {
            let mut buf = self.pool.get(f.body.len());
            buf.extend_from_slice(&f.body);
            return Ok(Some((f.kind, f.a, f.b, buf)));
        }
        loop {
            if self.outage.is_some() && !self.reconnect_if_due() {
                // Disconnected with the next attempt still scheduled:
                // sleep toward it (bounded by the caller's deadline)
                // instead of spinning.
                let now = Instant::now();
                if now >= deadline {
                    return Ok(None);
                }
                let wait = self
                    .outage
                    .as_ref()
                    .map(|o| o.next_try.saturating_duration_since(now))
                    .unwrap_or_default()
                    .min(deadline - now)
                    .max(MIN_TIMEOUT);
                std::thread::sleep(wait);
                continue;
            }
            // Arm the socket timeout only when the next read will actually
            // hit the socket; frames already sitting in the receive buffer
            // cost no syscalls at all.
            if self.rx.buffer().is_empty() {
                let now = Instant::now();
                if now >= deadline {
                    return Ok(None);
                }
                self.stream
                    .set_read_timeout(Some((deadline - now).max(MIN_TIMEOUT)))?;
            }
            let header = match read_frame_header(&mut self.rx) {
                Ok(h) => h,
                Err(FrameError::Timeout) => return Ok(None),
                Err(FrameError::TooLarge(len)) => {
                    // Hostile length field: drain without allocating
                    // proportionally, count, and stay in the session. A
                    // drain that fails (EOF, or a zero-progress stall —
                    // the stream is desynced and the bytes are never
                    // coming) means the connection is unusable: an
                    // outage for a resume client, an error otherwise.
                    match discard_frame_body(&mut self.rx, len) {
                        Ok(()) => {
                            self.metrics.frames_rejected.inc();
                            continue;
                        }
                        Err(_) if self.resume_on => {
                            self.mark_outage();
                            continue;
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
                Err(e) if self.resume_on && is_disconnect_frame(&e) => {
                    self.mark_outage();
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            let mut buf = self.pool.get(header.len);
            match read_frame_body(&mut self.rx, &header, &mut buf) {
                Ok(()) => {}
                Err(FrameError::Corrupt { .. }) => {
                    self.metrics.frames_rejected.inc();
                    continue;
                }
                Err(e) if self.resume_on && is_disconnect_frame(&e) => {
                    self.mark_outage();
                    continue;
                }
                Err(e) => return Err(e.into()),
            }
            self.metrics
                .bytes_in
                .add((FRAME_HEADER_SIZE + header.len) as u64);
            // Liveness probes are answered transparently from the poll
            // loop — a subscriber that never publishes still pongs.
            if header.kind == K_PING {
                self.send_raw(K_PONG, header.a, 0, &[])?;
                continue;
            }
            if header.kind == K_PONG {
                continue;
            }
            // Durability acks are bookkeeping, not payload: count them
            // and keep polling.
            if header.kind == K_PUBLISH_ACK {
                self.note_publish_ack(header.a, header.b, &buf);
                continue;
            }
            return Ok(Some((header.kind, header.a, header.b, buf)));
        }
    }

    /// Record the highest event offset seen per (public) channel — the
    /// resume point for lossless `subscribe_from` reconnection.
    fn note_offset(&mut self, channel: u32, offset: u64) {
        let e = self.last_offsets.entry(channel).or_insert(offset);
        *e = (*e).max(offset);
    }

    /// Account one [`K_PUBLISH_ACK`]: `b` events on (wire) channel `a`
    /// became durable, the last at the offset in the body.
    fn note_publish_ack(&mut self, wire_chan: u32, count: u32, body: &[u8]) {
        self.metrics.publishes_acked.add(u64::from(count));
        if body.len() >= 8 {
            let last = u64::from_be_bytes(body[..8].try_into().unwrap());
            let public = self
                .chan_from_wire
                .get(&wire_chan)
                .copied()
                .unwrap_or(wire_chan);
            let e = self.durable_offsets.entry(public).or_insert(last);
            *e = (*e).max(last);
        }
    }

    /// Remember the wire layout an ANNOUNCE carried (undecodable metadata
    /// is left for [`pbio::Reader::on_format`] to report).
    fn note_wire_format(&mut self, format: u32, meta: &[u8]) {
        if let Ok(layout) = deserialize_layout(meta) {
            self.wire_layouts.insert(format, Arc::new(layout));
        }
    }

    /// Strip the flagged trailers off an event body, outermost first:
    /// the offset stamp (durable channels), then the trace trailer.
    /// Returns the clean format id, the decoded trace context (sampled
    /// ones only) and the log offset; an unflagged event passes through
    /// untouched.
    fn split_trailer(
        &self,
        b: u32,
        body: &mut PooledBuf,
    ) -> Result<(u32, Option<TraceCtx>, Option<u64>), ServError> {
        let offset = if b & OFFSET_FLAG != 0 {
            if body.len() < OFFSET_TRAILER_LEN {
                return Err(ServError::Protocol(
                    "event shorter than its offset trailer".into(),
                ));
            }
            let split = body.len() - OFFSET_TRAILER_LEN;
            let off = u64::from_be_bytes(body[split..].try_into().unwrap());
            body.truncate(split);
            Some(off)
        } else {
            None
        };
        let b = b & !OFFSET_FLAG;
        if b & TRACE_FLAG == 0 {
            return Ok((b, None, offset));
        }
        let format = b & !TRACE_FLAG;
        if body.len() < TRACE_TRAILER_LEN {
            return Err(ServError::Protocol(
                "event shorter than its trace trailer".into(),
            ));
        }
        let split = body.len() - TRACE_TRAILER_LEN;
        let ctx = TraceCtx::decode(&body[split..])
            .ok_or_else(|| ServError::Protocol("malformed trace trailer".into()))?;
        body.truncate(split);
        Ok((format, Some(ctx).filter(|c| c.sampled()), offset))
    }

    /// Stamp the final hop of a traced event: it reached this subscriber
    /// and is about to be decoded. Times are mapped into the daemon's
    /// timebase so the hop lines up with the daemon-side stamps.
    fn record_decode_hop(&mut self, channel: u32, ctx: &TraceCtx) {
        let t = self.clock.to_peer(epoch_ns());
        let dur = t.saturating_sub(ctx.origin_ns);
        let hist = self.decode_hists.entry(channel).or_insert_with(|| {
            let label = self
                .chan_names
                .get(&channel)
                .cloned()
                .unwrap_or_else(|| channel.to_string());
            self.registry
                .histogram_labeled("hop_decode_ns", "chan", &label)
        });
        hist.record(dur);
        self.trace_hops.push(TraceHop {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            hop: HOP_DECODE,
            conn: self.conn_id,
            channel,
            t_ns: t,
            dur_ns: dur,
        });
    }

    /// Whether records of a format reach this subscriber zero-copy
    /// (unknown formats report `false`).
    pub fn is_zero_copy(&self, format: u32) -> bool {
        let wire = self.fmt_to_wire.get(&format).copied().unwrap_or(format);
        self.reader.is_zero_copy(wire)
    }

    /// DCG compile statistics for a format — `None` when no conversion
    /// was ever built (zero-copy path, or format not yet seen).
    pub fn dcg_stats(&self, format: u32) -> Option<pbio::CompileStats> {
        let wire = self.fmt_to_wire.get(&format).copied().unwrap_or(format);
        self.reader.dcg_stats(wire)
    }

    /// Counters (a fixed-field view of [`ServClient::registry`]).
    pub fn stats(&self) -> ClientStats {
        let pool = self.pool.stats();
        ClientStats {
            events: self.metrics.events.get(),
            zero_copy_events: self.metrics.zero_copy_events.get(),
            converted_events: self.metrics.converted_events.get(),
            bytes_in: self.metrics.bytes_in.get(),
            bytes_out: self.metrics.bytes_out.get(),
            pool_hits: pool.hits,
            pool_misses: pool.misses,
            dropped: self.metrics.dropped.get(),
            publishes: self.metrics.publishes.get(),
            buffered: self.metrics.buffered.get(),
            buffered_replayed: self.metrics.buffered_replayed.get(),
            buffer_dropped: self.metrics.buffer_dropped.get(),
            reconnects: self.metrics.reconnects.get(),
            frames_rejected: self.metrics.frames_rejected.get(),
            publishes_acked: self.metrics.publishes_acked.get(),
        }
    }

    /// Whether session resume was negotiated (offered *and* granted) —
    /// i.e. whether connection loss is an outage instead of an error.
    pub fn resume_negotiated(&self) -> bool {
        self.resume_on
    }

    /// The current session epoch (0 when resume was never negotiated;
    /// otherwise 1 for the initial session, +1 per reconnect).
    pub fn session_epoch(&self) -> u32 {
        self.epoch
    }

    /// Whether the client is currently in the outage state (disconnected,
    /// buffering publishes, driving the reconnect schedule).
    pub fn in_outage(&self) -> bool {
        self.outage.is_some()
    }

    /// Publishes currently parked in the outage buffer (awaiting replay
    /// after the next successful reconnect). With this term,
    /// `buffered == buffered_replayed + buffer_dropped + outage_backlog()`
    /// holds at every instant, not just after the buffer drains.
    pub fn outage_backlog(&self) -> usize {
        self.outage_buf.len()
    }

    /// This client's metric registry: every [`ClientStats`] field plus
    /// the encode/convert latency histograms.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The daemon-assigned connection id (echoed in the HELLO ack).
    pub fn conn_id(&self) -> u32 {
        self.conn_id
    }

    /// Whether the distributed-tracing capability was negotiated on this
    /// session (offered by this client *and* granted by the daemon).
    pub fn trace_negotiated(&self) -> bool {
        self.caps & CAP_TRACE != 0
    }

    /// Whether the durable-channels capability was negotiated (offered by
    /// this client *and* granted — i.e. the daemon runs a store).
    pub fn durable_negotiated(&self) -> bool {
        self.caps & CAP_DURABLE != 0
    }

    /// Last offset the daemon acknowledged as durable on `channel`
    /// (`None` until the first [`K_PUBLISH_ACK`] arrives). Everything at
    /// or below it survives a daemon crash.
    pub fn last_durable_offset(&self, channel: u32) -> Option<u64> {
        self.durable_offsets.get(&channel).copied()
    }

    /// Highest event offset this client has seen on `channel` (`None`
    /// before the first stamped event) — the basis for lossless
    /// `subscribe_from` resume.
    pub fn last_seen_offset(&self, channel: u32) -> Option<u64> {
        self.last_offsets.get(&channel).copied()
    }

    /// The clock offset measured against the daemon during the
    /// handshake (identity when tracing was not negotiated).
    pub fn clock_sync(&self) -> ClockSync {
        self.clock
    }

    /// Change this client's head-sampling modulus locally (0 disables
    /// stamping; the daemon's advertised default was adopted at connect).
    pub fn set_trace_sampling(&self, modulus: u32) {
        self.sampler.set_modulus(modulus);
    }

    /// Current head-sampling modulus (0 = off).
    pub fn trace_sampling(&self) -> u32 {
        self.sampler.modulus()
    }

    /// Set the *daemon's* sampling modulus ([`K_TRACE_CTL`]): the value
    /// advertised to sessions that connect from now on (0 disables).
    /// Returns the modulus that was in effect before.
    pub fn set_daemon_trace(&mut self, modulus: u32) -> Result<u32, ServError> {
        let token = self.next_token;
        self.next_token += 1;
        self.send_raw(K_TRACE_CTL, token, modulus, &[])?;
        Ok(self.await_ack(K_TRACE_CTL_ACK, token)?.b)
    }

    /// Switch the daemon's wire tap ([`K_TAP_CTL`]) to `mode`. Returns
    /// the wire code of the mode previously in effect. The daemon
    /// answers `ERROR` if it was started without
    /// [`crate::ServConfig::tap`], or for an unknown mode (including a
    /// zero sampling modulus) — both surface as [`ServError::Remote`].
    pub fn tap_ctl(&mut self, mode: crate::tap::TapMode) -> Result<u32, ServError> {
        let token = self.next_token;
        self.next_token += 1;
        let (mode, param) = mode.to_wire();
        let body: &[u8] = &param.to_be_bytes();
        // Parameterless modes send an empty body.
        let body = if param == 0 { &[] } else { body };
        self.send_raw(K_TAP_CTL, token, mode, body)?;
        Ok(self.await_ack(K_TAP_CTL_ACK, token)?.b)
    }

    /// Drain the decode hops recorded by this client's poll loop.
    pub fn take_trace_hops(&mut self) -> Vec<TraceHop> {
        self.trace_hops.drain()
    }

    /// Publish this client's accumulated decode hops on `channel`
    /// (normally the daemon's [`TRACE_CHANNEL`], opened by name). Hop
    /// records travel as self-describing PBIO records like everything
    /// else; this path never stamps trailers of its own, so exporting a
    /// trace cannot generate further traces. Returns the number of hop
    /// records published.
    pub fn publish_trace(&mut self, channel: u32) -> Result<usize, ServError> {
        let hops = self.trace_hops.drain();
        if hops.is_empty() {
            return Ok(0);
        }
        let format = match self.trace_format {
            Some(f) => f,
            None => {
                let f = self.register_format(&hop_schema())?;
                self.trace_format = Some(f);
                f
            }
        };
        let layout = self
            .formats
            .get(&format)
            .ok_or(ServError::UnknownFormat(format))?
            .clone();
        // Hop records never stamp trailers of their own, so this maps ids
        // and sends directly rather than going through `send_publish`.
        let wire_chan = self.chan_to_wire.get(&channel).copied().unwrap_or(channel);
        let wire_fmt = self.fmt_to_wire.get(&format).copied().unwrap_or(format);
        let mut buf = self.pool.get(layout.size());
        for hop in &hops {
            buf.clear();
            encode_native_into(&hop_value(hop), &layout, &mut buf).map_err(PbioError::from)?;
            self.send_raw(K_PUBLISH, wire_chan, wire_fmt, &buf)?;
        }
        Ok(hops.len())
    }

    /// Pull a one-shot stats snapshot from the daemon ([`K_STATS`]). The
    /// record arrives as native bytes in the daemon's own stats layout
    /// (announced first), and is decoded here — across architectures if
    /// need be — into a header plus [`Snapshot`].
    pub fn pull_stats(&mut self) -> Result<(StatsHeader, Snapshot), ServError> {
        let token = self.next_token;
        self.next_token += 1;
        self.send_raw(K_STATS, token, 0, &[])?;
        let ack = self.await_ack(K_STATS_ACK, token)?;
        let layout = self.wire_layouts.get(&ack.b).cloned().ok_or_else(|| {
            ServError::Protocol(format!("stats format {} was never announced", ack.b))
        })?;
        let value = decode_native(&ack.body, &layout).map_err(PbioError::from)?;
        snapshot_from_value(&value)
            .ok_or_else(|| ServError::Protocol("stats record lacks header fields".into()))
    }

    /// Pull a live topology snapshot from the daemon ([`K_INSPECT`]):
    /// per-connection queue depths and liveness, per-channel fan-out and
    /// durable-log footprint, per-shard reactor load, consumer-lag
    /// watermarks, and the flight-recorder tail — one self-describing
    /// PBIO record under the fixed `$topo` format, decoded here across
    /// architectures like any other event.
    pub fn inspect(&mut self) -> Result<TopoSnapshot, ServError> {
        let token = self.next_token;
        self.next_token += 1;
        self.send_raw(K_INSPECT, token, 0, &[])?;
        let ack = self.await_ack(K_INSPECT_ACK, token)?;
        let layout = self.wire_layouts.get(&ack.b).cloned().ok_or_else(|| {
            ServError::Protocol(format!("topology format {} was never announced", ack.b))
        })?;
        let value = decode_native(&ack.body, &layout).map_err(PbioError::from)?;
        topo_from_value(&value)
            .ok_or_else(|| ServError::Protocol("topology record lacks required fields".into()))
    }

    /// Publish a snapshot of this client's own registry on `channel`
    /// (normally the daemon's `$stats` channel, opened by name via
    /// [`ServClient::open_channel`]). The snapshot's schema is generated
    /// from the metric set and registered like any other format — stats
    /// travel the wire as ordinary PBIO records, laid out for *this*
    /// client's architecture.
    pub fn publish_stats(&mut self, channel: u32) -> Result<(), ServError> {
        let snap = self.registry.snapshot();
        let t = epoch_ns();
        let header = StatsHeader {
            role: ROLE_CLIENT,
            id: self.conn_id,
            seq: self.stats_seq,
            t_ns: t,
            snapshot_ns: t,
        };
        self.stats_seq += 1;
        let schema = stats_schema(&snap);
        let format = match &self.stats_format {
            Some((cached, id)) if *cached == schema => *id,
            _ => {
                let id = self.register_format(&schema)?;
                self.stats_format = Some((schema.clone(), id));
                id
            }
        };
        let value = stats_value(&header, &snap);
        self.publish_value(channel, format, &value)
    }

    /// Graceful disconnect: announce departure and wait for the daemon's
    /// acknowledgement (bounded by the client timeout), so queued frames
    /// are flushed on both sides before the socket closes.
    pub fn disconnect(mut self) -> Result<(), ServError> {
        self.send_raw(K_BYE, 0, 0, &[])?;
        let deadline = Instant::now() + self.timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(ServError::Timeout);
            }
            self.stream
                .set_read_timeout(Some((deadline - now).max(MIN_TIMEOUT)))?;
            match read_frame(&mut self.rx) {
                Ok(f) if f.kind == K_BYE_ACK => return Ok(()),
                // Late events/announcements/probes racing the goodbye:
                // discard.
                Ok(f)
                    if matches!(
                        f.kind,
                        K_EVENT | K_ANNOUNCE | K_PING | K_PONG | K_PUBLISH_ACK
                    ) =>
                {
                    continue
                }
                Ok(f) if f.kind == K_ERROR => return Err(remote_error(&f)),
                Ok(f) => {
                    return Err(ServError::Protocol(format!(
                        "unexpected frame kind {:#04x} during disconnect",
                        f.kind
                    )))
                }
                Err(FrameError::Timeout) => continue,
                Err(FrameError::Closed) => return Ok(()),
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Write one frame, borrowing the body from the caller: a stack
    /// header plus a vectored write, no intermediate buffer.
    fn send_raw(&mut self, kind: u8, a: u32, b: u32, body: &[u8]) -> Result<(), ServError> {
        write_frame_raw(&mut self.stream, kind, a, b, body)?;
        self.stream.flush()?;
        self.metrics
            .bytes_out
            .add((FRAME_HEADER_SIZE + body.len()) as u64);
        Ok(())
    }

    /// Read until the expected acknowledgement (kind + echoed token in
    /// `a`) arrives, buffering any events or announcements that race it.
    fn await_ack(&mut self, kind: u8, token: u32) -> Result<Frame, ServError> {
        let deadline = Instant::now() + self.timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(ServError::Timeout);
            }
            self.stream
                .set_read_timeout(Some((deadline - now).max(MIN_TIMEOUT)))?;
            match read_frame(&mut self.rx) {
                Ok(f) => {
                    self.metrics
                        .bytes_in
                        .add((FRAME_HEADER_SIZE + f.body.len()) as u64);
                    if f.kind == kind && f.a == token {
                        return Ok(f);
                    }
                    match f.kind {
                        // Note announced layouts immediately, so a reply
                        // that depends on one (K_STATS_ACK) can decode
                        // even though the frame itself is only buffered.
                        K_ANNOUNCE => {
                            self.note_wire_format(f.a, &f.body);
                            self.pending.push_back(f);
                        }
                        K_EVENT => self.buffer_event(f),
                        // Liveness probes are answered even mid-request:
                        // a client blocked in a long await must not look
                        // dead to the daemon.
                        K_PING => self.send_raw(K_PONG, f.a, 0, &[])?,
                        K_PONG => {}
                        K_PUBLISH_ACK => self.note_publish_ack(f.a, f.b, &f.body),
                        K_ERROR => return Err(remote_error(&f)),
                        other => {
                            return Err(ServError::Protocol(format!(
                                "expected frame kind {kind:#04x}, got {other:#04x}",
                            )))
                        }
                    }
                }
                Err(FrameError::Timeout) => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Buffer an event that raced an acknowledged request, dropping the
    /// oldest buffered *event* (never a control frame) once the bounded
    /// budget is exhausted — the client-side mirror of the daemon's
    /// outbound drop-oldest policy.
    fn buffer_event(&mut self, f: Frame) {
        let events = self.pending.iter().filter(|p| p.kind == K_EVENT).count();
        if events >= MAX_PENDING_EVENTS {
            if let Some(i) = self.pending.iter().position(|p| p.kind == K_EVENT) {
                let evicted = self.pending.remove(i);
                self.metrics.dropped.inc();
                // Attribute the drop to the channel it hit, not just the
                // global total — the label resolves once per channel.
                if let Some(evicted) = evicted {
                    let chan = evicted.a;
                    self.drop_counters
                        .entry(chan)
                        .or_insert_with(|| {
                            let label = self
                                .chan_names
                                .get(&chan)
                                .cloned()
                                .unwrap_or_else(|| chan.to_string());
                            self.registry
                                .counter_labeled("client_dropped", "chan", &label)
                        })
                        .inc();
                }
            }
        }
        self.pending.push_back(f);
    }
}

fn remote_error(frame: &Frame) -> ServError {
    ServError::Remote {
        code: frame.a,
        message: String::from_utf8_lossy(&frame.body).into_owned(),
    }
}

/// A process-unique resume identity: wall clock, a per-process sequence,
/// and the pid, mixed so two clients — even in two processes started the
/// same nanosecond — do not collide.
fn fresh_client_id() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    splitmix64(epoch_ns() ^ seq.rotate_left(32) ^ (u64::from(std::process::id()) << 16))
}

/// SplitMix64 finalizer: the dependency-free mixer behind client ids and
/// reconnect jitter.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Errors that mean "the connection is gone", as opposed to a protocol
/// violation or a caller mistake — only these flip a resuming client
/// into the outage state.
fn is_disconnect(e: &ServError) -> bool {
    match e {
        ServError::Io(_) => true,
        ServError::Frame(f) => is_disconnect_frame(f),
        _ => false,
    }
}

fn is_disconnect_frame(e: &FrameError) -> bool {
    matches!(e, FrameError::Closed | FrameError::Io(_))
}
