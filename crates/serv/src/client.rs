//! The blocking client: one TCP session with a serv daemon.
//!
//! A [`ServClient`] plays either or both protocol roles:
//!
//! * **publisher** — register formats once ([`ServClient::register_format`]
//!   ships the serialized layout; the daemon dedups it against every other
//!   session's), then [`ServClient::publish`] native bytes with no
//!   per-event encoding at all: the NDR sender-side O(1) cost.
//! * **subscriber** — [`ServClient::subscribe`] with an optional
//!   [`Predicate`] (evaluated on the daemon, against the publisher's wire
//!   format, before transmission), then [`ServClient::poll`] events. All
//!   receive-side conversion runs here, in an embedded [`pbio::Reader`]:
//!   homogeneous publisher/subscriber pairs stay zero-copy, heterogeneous
//!   pairs get a DCG conversion compiled on first contact with the format.

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pbio::{BufPool, PbioError, PooledBuf, Reader, RecordView};
use pbio_chan::filter::Predicate;
use pbio_chan::wire::serialize_predicate;
use pbio_net::frame::{
    read_frame, read_frame_body, read_frame_header, write_frame_raw, Frame, FrameError,
};
use pbio_types::arch::ArchProfile;
use pbio_types::layout::Layout;
use pbio_types::meta::serialize_layout;
use pbio_types::schema::Schema;
use pbio_types::value::{encode_native_into, RecordValue};

use crate::error::ServError;
use crate::protocol::*;

/// Smallest read timeout we arm (zero would disable the timeout entirely).
const MIN_TIMEOUT: Duration = Duration::from_millis(1);

/// Default per-call timeout for handshake and acknowledged requests.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(5);

/// One event delivered to a subscriber: the record, viewed through the
/// subscriber's own layout (converted if the publisher's architecture
/// differs, borrowed straight from the receive buffer if not).
pub struct Event<'a> {
    /// Channel the event arrived on.
    pub channel: u32,
    /// Daemon-global format id of the record.
    pub format: u32,
    /// The record itself.
    pub view: RecordView<'a>,
}

/// Client-side receive counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Events received.
    pub events: u64,
    /// Events used directly from the receive buffer (no conversion).
    pub zero_copy_events: u64,
    /// Events that went through a generated conversion.
    pub converted_events: u64,
}

/// Receive-buffer size: large enough that one of the daemon's coalesced
/// write batches arrives in a single read syscall.
const READ_BUF_SIZE: usize = 64 * 1024;

/// A blocking connection to a [`crate::ServDaemon`].
pub struct ServClient {
    /// Write half (and the socket handle timeouts are armed on).
    stream: TcpStream,
    /// Buffered read half of the same socket.
    rx: BufReader<TcpStream>,
    profile: ArchProfile,
    reader: Reader,
    /// Daemon-global format id -> this client's native layout (for
    /// encoding values to publish).
    formats: HashMap<u32, Arc<Layout>>,
    /// Frames that arrived while awaiting an acknowledgement.
    pending: VecDeque<Frame>,
    /// Scratch pool: frame bodies and value-encoding buffers cycle
    /// through it, so the steady-state decode path never allocates.
    pool: Arc<BufPool>,
    /// Body of the event currently viewed (zero-copy views borrow it);
    /// returns to the pool when the next event replaces it.
    event_buf: PooledBuf,
    timeout: Duration,
    next_token: u32,
    stats: ClientStats,
}

impl ServClient {
    /// Connect and complete the session handshake.
    pub fn connect(
        addr: impl ToSocketAddrs,
        profile: &ArchProfile,
    ) -> Result<ServClient, ServError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let rx = BufReader::with_capacity(READ_BUF_SIZE, stream.try_clone()?);
        let pool = BufPool::new();
        let event_buf = pool.get(0);
        let mut client = ServClient {
            stream,
            rx,
            profile: profile.clone(),
            reader: Reader::new(profile),
            formats: HashMap::new(),
            pending: VecDeque::new(),
            pool,
            event_buf,
            timeout: DEFAULT_TIMEOUT,
            next_token: 0,
            stats: ClientStats::default(),
        };
        client.send_raw(K_HELLO, PROTOCOL_VERSION, 0, profile.name.as_bytes())?;
        let ack = client.await_ack(K_HELLO_ACK, PROTOCOL_VERSION)?;
        debug_assert_eq!(ack.kind, K_HELLO_ACK);
        Ok(client)
    }

    /// Set the timeout applied to acknowledged requests (format and
    /// channel registration, subscription, disconnect).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout.max(MIN_TIMEOUT);
    }

    /// This client's architecture profile.
    pub fn profile(&self) -> &ArchProfile {
        &self.profile
    }

    /// Register a format for publishing. The layout is computed for this
    /// client's architecture, serialized, and shipped once; the returned
    /// id is the daemon-global format id (identical layouts registered by
    /// any session share it).
    pub fn register_format(&mut self, schema: &Schema) -> Result<u32, ServError> {
        let layout = Arc::new(Layout::of(schema, &self.profile).map_err(PbioError::from)?);
        let meta = serialize_layout(&layout);
        let token = self.next_token;
        self.next_token += 1;
        self.send_raw(K_FORMAT, token, 0, &meta)?;
        let ack = self.await_ack(K_FORMAT_ACK, token)?;
        self.formats.insert(ack.b, layout);
        Ok(ack.b)
    }

    /// Create or open the named channel; returns its id.
    pub fn open_channel(&mut self, name: &str) -> Result<u32, ServError> {
        let token = self.next_token;
        self.next_token += 1;
        self.send_raw(K_CHANNEL, token, 0, name.as_bytes())?;
        Ok(self.await_ack(K_CHANNEL_ACK, token)?.b)
    }

    /// Subscribe to a channel. `schema` declares the record this
    /// subscriber expects (laid out for its own architecture; fields are
    /// matched by name, PBIO type-extension rules apply). `filter`, if
    /// given, is shipped to the daemon and evaluated there — at the
    /// source — so rejected events are never transmitted.
    pub fn subscribe(
        &mut self,
        channel: u32,
        schema: &Schema,
        filter: Option<&Predicate>,
    ) -> Result<(), ServError> {
        self.reader.expect(schema)?;
        let (flagged, body) = match filter {
            Some(p) => (1, serialize_predicate(p)),
            None => (0, Vec::new()),
        };
        self.send_raw(K_SUBSCRIBE, channel, flagged, &body)?;
        self.await_ack(K_SUBSCRIBE_ACK, channel)?;
        Ok(())
    }

    /// Publish one event: the record's native bytes, sent as-is (no
    /// translation — the wire format *is* this machine's memory layout).
    /// Fire-and-forget; delivery errors surface on the daemon side.
    pub fn publish(&mut self, channel: u32, format: u32, native: &[u8]) -> Result<(), ServError> {
        let layout = self
            .formats
            .get(&format)
            .ok_or(ServError::UnknownFormat(format))?;
        if native.len() < layout.size() {
            return Err(ServError::Protocol(format!(
                "payload is {} bytes, format {format} requires {}",
                native.len(),
                layout.size()
            )));
        }
        self.send_raw(K_PUBLISH, channel, format, native)
    }

    /// Publish a dynamic value, encoding it through the registered
    /// layout first (convenience for tests and tools; hot paths publish
    /// native bytes directly).
    pub fn publish_value(
        &mut self,
        channel: u32,
        format: u32,
        value: &RecordValue,
    ) -> Result<(), ServError> {
        let layout = self
            .formats
            .get(&format)
            .ok_or(ServError::UnknownFormat(format))?
            .clone();
        let mut native = self.pool.get(layout.size());
        encode_native_into(value, &layout, &mut native).map_err(PbioError::from)?;
        self.send_raw(K_PUBLISH, channel, format, &native)
    }

    /// Wait up to `timeout` for the next event. Returns `Ok(None)` when
    /// the timeout elapses with no event. Format announcements are
    /// consumed transparently (they prepare the reader's conversion — or
    /// zero-copy — path before the first record of each format).
    pub fn poll(&mut self, timeout: Duration) -> Result<Option<Event<'_>>, ServError> {
        let deadline = Instant::now() + timeout;
        loop {
            // One frame per iteration: (kind, a, b) plus its body in a
            // pooled buffer. The steady state (frames read off the
            // socket, bodies cycling through the pool) allocates nothing.
            let (kind, a, b, body) = match self.pending.pop_front() {
                Some(f) => {
                    let mut buf = self.pool.get(f.body.len());
                    buf.extend_from_slice(&f.body);
                    (f.kind, f.a, f.b, buf)
                }
                None => {
                    // Arm the socket timeout only when the next read will
                    // actually hit the socket; frames already sitting in
                    // the receive buffer cost no syscalls at all.
                    if self.rx.buffer().is_empty() {
                        let now = Instant::now();
                        if now >= deadline {
                            return Ok(None);
                        }
                        self.stream
                            .set_read_timeout(Some((deadline - now).max(MIN_TIMEOUT)))?;
                    }
                    let header = match read_frame_header(&mut self.rx) {
                        Ok(h) => h,
                        Err(FrameError::Timeout) => return Ok(None),
                        Err(e) => return Err(e.into()),
                    };
                    let mut buf = self.pool.get(header.len);
                    read_frame_body(&mut self.rx, header.len, &mut buf)?;
                    (header.kind, header.a, header.b, buf)
                }
            };
            match kind {
                K_ANNOUNCE => {
                    self.reader.on_format(a, &body)?;
                }
                K_EVENT => {
                    self.stats.events += 1;
                    if self.reader.is_zero_copy(b) {
                        self.stats.zero_copy_events += 1;
                    } else {
                        self.stats.converted_events += 1;
                    }
                    // The previous event's buffer returns to the pool
                    // here, ready for the next frame read.
                    self.event_buf = body;
                    let view = self.reader.on_data(b, &self.event_buf)?;
                    return Ok(Some(Event {
                        channel: a,
                        format: b,
                        view,
                    }));
                }
                K_ERROR => {
                    return Err(ServError::Remote {
                        code: a,
                        message: String::from_utf8_lossy(&body).into_owned(),
                    })
                }
                other => {
                    return Err(ServError::Protocol(format!(
                        "unexpected frame kind {other:#04x} while polling"
                    )))
                }
            }
        }
    }

    /// Whether records of a format reach this subscriber zero-copy
    /// (unknown formats report `false`).
    pub fn is_zero_copy(&self, format: u32) -> bool {
        self.reader.is_zero_copy(format)
    }

    /// DCG compile statistics for a format — `None` when no conversion
    /// was ever built (zero-copy path, or format not yet seen).
    pub fn dcg_stats(&self, format: u32) -> Option<pbio::CompileStats> {
        self.reader.dcg_stats(format)
    }

    /// Receive counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Graceful disconnect: announce departure and wait for the daemon's
    /// acknowledgement (bounded by the client timeout), so queued frames
    /// are flushed on both sides before the socket closes.
    pub fn disconnect(mut self) -> Result<(), ServError> {
        self.send_raw(K_BYE, 0, 0, &[])?;
        let deadline = Instant::now() + self.timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(ServError::Timeout);
            }
            self.stream
                .set_read_timeout(Some((deadline - now).max(MIN_TIMEOUT)))?;
            match read_frame(&mut self.rx) {
                Ok(f) if f.kind == K_BYE_ACK => return Ok(()),
                // Late events/announcements racing the goodbye: discard.
                Ok(f) if f.kind == K_EVENT || f.kind == K_ANNOUNCE => continue,
                Ok(f) if f.kind == K_ERROR => return Err(remote_error(&f)),
                Ok(f) => {
                    return Err(ServError::Protocol(format!(
                        "unexpected frame kind {:#04x} during disconnect",
                        f.kind
                    )))
                }
                Err(FrameError::Timeout) => continue,
                Err(FrameError::Closed) => return Ok(()),
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Write one frame, borrowing the body from the caller: a stack
    /// header plus a vectored write, no intermediate buffer.
    fn send_raw(&mut self, kind: u8, a: u32, b: u32, body: &[u8]) -> Result<(), ServError> {
        write_frame_raw(&mut self.stream, kind, a, b, body)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Read until the expected acknowledgement (kind + echoed token in
    /// `a`) arrives, buffering any events or announcements that race it.
    fn await_ack(&mut self, kind: u8, token: u32) -> Result<Frame, ServError> {
        let deadline = Instant::now() + self.timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(ServError::Timeout);
            }
            self.stream
                .set_read_timeout(Some((deadline - now).max(MIN_TIMEOUT)))?;
            match read_frame(&mut self.rx) {
                Ok(f) if f.kind == kind && f.a == token => return Ok(f),
                Ok(f) if f.kind == K_EVENT || f.kind == K_ANNOUNCE => self.pending.push_back(f),
                Ok(f) if f.kind == K_ERROR => return Err(remote_error(&f)),
                Ok(f) => {
                    return Err(ServError::Protocol(format!(
                        "expected frame kind {kind:#04x}, got {:#04x}",
                        f.kind
                    )))
                }
                Err(FrameError::Timeout) => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }
}

fn remote_error(frame: &Frame) -> ServError {
    ServError::Remote {
        code: frame.a,
        message: String::from_utf8_lossy(&frame.body).into_owned(),
    }
}
