//! The blocking client: one TCP session with a serv daemon.
//!
//! A [`ServClient`] plays either or both protocol roles:
//!
//! * **publisher** — register formats once ([`ServClient::register_format`]
//!   ships the serialized layout; the daemon dedups it against every other
//!   session's), then [`ServClient::publish`] native bytes with no
//!   per-event encoding at all: the NDR sender-side O(1) cost.
//! * **subscriber** — [`ServClient::subscribe`] with an optional
//!   [`Predicate`] (evaluated on the daemon, against the publisher's wire
//!   format, before transmission), then [`ServClient::poll`] events. All
//!   receive-side conversion runs here, in an embedded [`pbio::Reader`]:
//!   homogeneous publisher/subscriber pairs stay zero-copy, heterogeneous
//!   pairs get a DCG conversion compiled on first contact with the format.

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pbio::{BufPool, PbioError, PooledBuf, Reader, RecordView};
use pbio_chan::filter::Predicate;
use pbio_chan::wire::serialize_predicate;
use pbio_net::clock::ClockSync;
use pbio_net::frame::{
    read_frame, read_frame_body, read_frame_header, write_frame_raw, Frame, FrameError,
    FRAME_HEADER_SIZE,
};
use pbio_obs::export::{
    hop_schema, hop_value, snapshot_from_value, stats_schema, stats_value, StatsHeader, ROLE_CLIENT,
};
use pbio_obs::{
    epoch_ns, Counter, Histogram, Registry, Snapshot, Span, TraceCtx, TraceHop, TraceSampler,
    TraceSink, HOP_DECODE, TRACE_TRAILER_LEN,
};
use pbio_types::arch::ArchProfile;
use pbio_types::layout::Layout;
use pbio_types::meta::{deserialize_layout, serialize_layout};
use pbio_types::schema::Schema;
use pbio_types::value::{decode_native, encode_native_into, RecordValue};

use crate::error::ServError;
use crate::protocol::*;

/// Smallest read timeout we arm (zero would disable the timeout entirely).
const MIN_TIMEOUT: Duration = Duration::from_millis(1);

/// Default per-call timeout for handshake and acknowledged requests.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(5);

/// One event delivered to a subscriber: the record, viewed through the
/// subscriber's own layout (converted if the publisher's architecture
/// differs, borrowed straight from the receive buffer if not).
pub struct Event<'a> {
    /// Channel the event arrived on.
    pub channel: u32,
    /// Daemon-global format id of the record.
    pub format: u32,
    /// The record itself.
    pub view: RecordView<'a>,
}

/// Client-side counters — the same shape of books the daemon keeps, so a
/// monitoring consumer can line both up stage by stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Events received.
    pub events: u64,
    /// Events used directly from the receive buffer (no conversion).
    pub zero_copy_events: u64,
    /// Events that went through a generated conversion.
    pub converted_events: u64,
    /// Frame bytes received (headers + bodies).
    pub bytes_in: u64,
    /// Frame bytes sent (headers + bodies).
    pub bytes_out: u64,
    /// Scratch-buffer requests served from the pool.
    pub pool_hits: u64,
    /// Scratch-buffer requests that had to allocate.
    pub pool_misses: u64,
    /// Events discarded because they raced an acknowledged request and
    /// overflowed the bounded pending queue.
    pub dropped: u64,
}

/// Pre-resolved handles into the client's per-instance registry.
struct ClientMetrics {
    events: Arc<Counter>,
    zero_copy_events: Arc<Counter>,
    converted_events: Arc<Counter>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    dropped: Arc<Counter>,
    /// Time encoding a [`RecordValue`] in [`ServClient::publish_value`].
    encode_ns: Arc<Histogram>,
    /// Time converting a received record that was not zero-copy.
    convert_ns: Arc<Histogram>,
}

impl ClientMetrics {
    fn resolve(reg: &Registry) -> ClientMetrics {
        ClientMetrics {
            events: reg.counter("client_events"),
            zero_copy_events: reg.counter("client_zero_copy_events"),
            converted_events: reg.counter("client_converted_events"),
            bytes_in: reg.counter("client_bytes_in"),
            bytes_out: reg.counter("client_bytes_out"),
            dropped: reg.counter("client_dropped"),
            encode_ns: reg.histogram("client_encode_ns"),
            convert_ns: reg.histogram("client_convert_ns"),
        }
    }
}

/// Events buffered while awaiting an acknowledgement before drop-oldest
/// kicks in (control frames are never dropped).
const MAX_PENDING_EVENTS: usize = 256;

/// Bounded capacity of the client-side hop sink (decode hops accumulate
/// here until [`ServClient::publish_trace`] or
/// [`ServClient::take_trace_hops`] drains them).
const TRACE_SINK_CAPACITY: usize = 256;

/// Client connection options.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Offer the distributed-tracing capability in the handshake. When
    /// the daemon grants it, sampled publishes carry a trace trailer and
    /// received traced events are stamped with a `decode` hop. `false`
    /// makes this client indistinguishable from a pre-tracing one.
    pub trace: bool,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig { trace: true }
    }
}

/// Receive-buffer size: large enough that one of the daemon's coalesced
/// write batches arrives in a single read syscall.
const READ_BUF_SIZE: usize = 64 * 1024;

/// A blocking connection to a [`crate::ServDaemon`].
pub struct ServClient {
    /// Write half (and the socket handle timeouts are armed on).
    stream: TcpStream,
    /// Buffered read half of the same socket.
    rx: BufReader<TcpStream>,
    profile: ArchProfile,
    reader: Reader,
    /// Daemon-global format id -> this client's native layout (for
    /// encoding values to publish).
    formats: HashMap<u32, Arc<Layout>>,
    /// Frames that arrived while awaiting an acknowledgement.
    pending: VecDeque<Frame>,
    /// Scratch pool: frame bodies and value-encoding buffers cycle
    /// through it, so the steady-state decode path never allocates.
    pool: Arc<BufPool>,
    /// Body of the event currently viewed (zero-copy views borrow it);
    /// returns to the pool when the next event replaces it.
    event_buf: PooledBuf,
    timeout: Duration,
    next_token: u32,
    /// Daemon-assigned connection id (from the HELLO ack) — stamps this
    /// client's stats records.
    conn_id: u32,
    /// Per-client metric registry ([`ClientStats`] is a view of it).
    registry: Arc<Registry>,
    metrics: ClientMetrics,
    /// Wire layouts by format id, from ANNOUNCE frames: enough to decode
    /// any announced record without a declared expectation.
    wire_layouts: HashMap<u32, Arc<Layout>>,
    /// Cached `$stats` schema/format pair, re-registered only when the
    /// metric set (hence the schema) changes.
    stats_format: Option<(Schema, u32)>,
    stats_seq: u64,
    /// Capability bits granted by the daemon ([`CAP_TRACE`]…).
    caps: u32,
    /// Offset into the daemon's timebase, measured around the handshake;
    /// every trace stamp this client produces is pre-corrected through it.
    clock: ClockSync,
    /// Head-based publish sampler (modulus adopted from the HELLO ack;
    /// 0 whenever tracing is off, making [`TraceSampler::try_sample`] a
    /// single relaxed load on the publish path).
    sampler: TraceSampler,
    /// Decode hops recorded for received traced events.
    trace_hops: Arc<TraceSink>,
    /// Channel names by id (from [`ServClient::open_channel`]), for hop
    /// and drop metric labels.
    chan_names: HashMap<u32, String>,
    /// Per-channel `hop_decode_ns{chan=…}`, resolved lazily on the
    /// sampled path only.
    decode_hists: HashMap<u32, Arc<Histogram>>,
    /// Per-channel `client_dropped{chan=…}`, resolved lazily on the drop
    /// path only.
    drop_counters: HashMap<u32, Arc<Counter>>,
    /// Cached hop-record format id (registered on first
    /// [`ServClient::publish_trace`]).
    trace_format: Option<u32>,
}

/// One event delivered raw: the publisher's untouched NDR bytes plus the
/// wire layout they were announced with (see [`ServClient::poll_raw`]).
#[derive(Debug)]
pub struct RawEvent<'a> {
    /// Channel the event arrived on.
    pub channel: u32,
    /// Daemon-global format id of the record.
    pub format: u32,
    /// The publisher's layout, as announced.
    pub layout: Arc<Layout>,
    /// The record's native bytes, exactly as published.
    pub bytes: &'a [u8],
}

impl ServClient {
    /// Connect and complete the session handshake with default options
    /// (tracing offered; see [`ClientConfig`]).
    pub fn connect(
        addr: impl ToSocketAddrs,
        profile: &ArchProfile,
    ) -> Result<ServClient, ServError> {
        ServClient::connect_with(addr, profile, ClientConfig::default())
    }

    /// Connect and complete the session handshake.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        profile: &ArchProfile,
        config: ClientConfig,
    ) -> Result<ServClient, ServError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let rx = BufReader::with_capacity(READ_BUF_SIZE, stream.try_clone()?);
        let pool = BufPool::new();
        let event_buf = pool.get(0);
        let registry = Arc::new(Registry::new());
        let metrics = ClientMetrics::resolve(&registry);
        // Adopt the pool's counters so the registry reads them through.
        registry.register_counter("pool_hits", pool.hit_counter().clone());
        registry.register_counter("pool_misses", pool.miss_counter().clone());
        let mut client = ServClient {
            stream,
            rx,
            profile: profile.clone(),
            reader: Reader::new(profile),
            formats: HashMap::new(),
            pending: VecDeque::new(),
            pool,
            event_buf,
            timeout: DEFAULT_TIMEOUT,
            next_token: 0,
            conn_id: 0,
            registry,
            metrics,
            wire_layouts: HashMap::new(),
            stats_format: None,
            stats_seq: 0,
            caps: 0,
            clock: ClockSync::identity(),
            sampler: TraceSampler::new(0),
            trace_hops: Arc::new(TraceSink::new(TRACE_SINK_CAPACITY)),
            chan_names: HashMap::new(),
            decode_hists: HashMap::new(),
            drop_counters: HashMap::new(),
            trace_format: None,
        };
        // The HELLO round trip doubles as the clock-offset exchange: the
        // daemon samples its clock while serving it, and the local stamps
        // bracketing the round trip bound the error to rtt/2.
        let offered = if config.trace { CAP_TRACE } else { 0 };
        let t_send = epoch_ns();
        client.send_raw(K_HELLO, PROTOCOL_VERSION, offered, profile.name.as_bytes())?;
        let ack = client.await_ack(K_HELLO_ACK, PROTOCOL_VERSION)?;
        let t_recv = epoch_ns();
        debug_assert_eq!(ack.kind, K_HELLO_ACK);
        client.conn_id = ack.b;
        // Old daemons send an empty ack body: no capabilities, no clock
        // sample, tracing stays off.
        if ack.body.len() >= 16 {
            let granted = u32::from_be_bytes(ack.body[0..4].try_into().unwrap());
            let t_peer = u64::from_be_bytes(ack.body[4..12].try_into().unwrap());
            let sample_mod = u32::from_be_bytes(ack.body[12..16].try_into().unwrap());
            client.caps = granted & offered;
            if client.caps & CAP_TRACE != 0 {
                client.clock = ClockSync::from_exchange(t_send, t_peer, t_recv);
                client.sampler.set_modulus(sample_mod);
            }
        }
        Ok(client)
    }

    /// Set the timeout applied to acknowledged requests (format and
    /// channel registration, subscription, disconnect).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout.max(MIN_TIMEOUT);
    }

    /// This client's architecture profile.
    pub fn profile(&self) -> &ArchProfile {
        &self.profile
    }

    /// Register a format for publishing. The layout is computed for this
    /// client's architecture, serialized, and shipped once; the returned
    /// id is the daemon-global format id (identical layouts registered by
    /// any session share it).
    pub fn register_format(&mut self, schema: &Schema) -> Result<u32, ServError> {
        let layout = Arc::new(Layout::of(schema, &self.profile).map_err(PbioError::from)?);
        let meta = serialize_layout(&layout);
        let token = self.next_token;
        self.next_token += 1;
        self.send_raw(K_FORMAT, token, 0, &meta)?;
        let ack = self.await_ack(K_FORMAT_ACK, token)?;
        self.formats.insert(ack.b, layout);
        Ok(ack.b)
    }

    /// Create or open the named channel; returns its id.
    pub fn open_channel(&mut self, name: &str) -> Result<u32, ServError> {
        let token = self.next_token;
        self.next_token += 1;
        self.send_raw(K_CHANNEL, token, 0, name.as_bytes())?;
        let id = self.await_ack(K_CHANNEL_ACK, token)?.b;
        // Remember the name so per-channel metrics label by it rather
        // than by a bare id.
        self.chan_names.entry(id).or_insert_with(|| name.to_owned());
        Ok(id)
    }

    /// Subscribe to a channel. `schema` declares the record this
    /// subscriber expects (laid out for its own architecture; fields are
    /// matched by name, PBIO type-extension rules apply). `filter`, if
    /// given, is shipped to the daemon and evaluated there — at the
    /// source — so rejected events are never transmitted.
    pub fn subscribe(
        &mut self,
        channel: u32,
        schema: &Schema,
        filter: Option<&Predicate>,
    ) -> Result<(), ServError> {
        self.reader.expect(schema)?;
        self.subscribe_raw(channel, filter)
    }

    /// Subscribe without declaring an expected record schema. Events on
    /// such a channel must be consumed through [`ServClient::poll_raw`],
    /// which hands back the publisher's bytes and announced layout — the
    /// path for consumers (like stats monitors) that discover record
    /// shapes dynamically from the announcements themselves.
    pub fn subscribe_raw(
        &mut self,
        channel: u32,
        filter: Option<&Predicate>,
    ) -> Result<(), ServError> {
        let (flagged, body) = match filter {
            Some(p) => (1, serialize_predicate(p)),
            None => (0, Vec::new()),
        };
        self.send_raw(K_SUBSCRIBE, channel, flagged, &body)?;
        self.await_ack(K_SUBSCRIBE_ACK, channel)?;
        Ok(())
    }

    /// Publish one event: the record's native bytes, sent as-is (no
    /// translation — the wire format *is* this machine's memory layout).
    /// Fire-and-forget; delivery errors surface on the daemon side.
    pub fn publish(&mut self, channel: u32, format: u32, native: &[u8]) -> Result<(), ServError> {
        let layout = self
            .formats
            .get(&format)
            .ok_or(ServError::UnknownFormat(format))?;
        if native.len() < layout.size() {
            return Err(ServError::Protocol(format!(
                "payload is {} bytes, format {format} requires {}",
                native.len(),
                layout.size()
            )));
        }
        self.send_publish(channel, format, native)
    }

    /// The publish tail shared by [`ServClient::publish`] and
    /// [`ServClient::publish_value`]: stamp a trace trailer onto the 1-in-N
    /// sampled publishes, send everything else untouched. With tracing off
    /// (not negotiated, or modulus 0) the extra cost is one relaxed atomic
    /// load — no branch on the wire, no allocation.
    fn send_publish(&mut self, channel: u32, format: u32, native: &[u8]) -> Result<(), ServError> {
        if self.caps & CAP_TRACE != 0 && self.sampler.try_sample() {
            let ctx = self.sampler.next_ctx(self.clock.to_peer(epoch_ns()));
            let mut buf = self.pool.get(native.len() + TRACE_TRAILER_LEN);
            buf.extend_from_slice(native);
            buf.extend_from_slice(&ctx.encode());
            return self.send_raw(K_PUBLISH, channel, format | TRACE_FLAG, &buf);
        }
        self.send_raw(K_PUBLISH, channel, format, native)
    }

    /// Publish a dynamic value, encoding it through the registered
    /// layout first (convenience for tests and tools; hot paths publish
    /// native bytes directly).
    pub fn publish_value(
        &mut self,
        channel: u32,
        format: u32,
        value: &RecordValue,
    ) -> Result<(), ServError> {
        let layout = self
            .formats
            .get(&format)
            .ok_or(ServError::UnknownFormat(format))?
            .clone();
        let mut native = self.pool.get(layout.size());
        {
            let _span = Span::enter(&self.metrics.encode_ns);
            encode_native_into(value, &layout, &mut native).map_err(PbioError::from)?;
        }
        self.send_publish(channel, format, &native)
    }

    /// Wait up to `timeout` for the next event. Returns `Ok(None)` when
    /// the timeout elapses with no event. Format announcements are
    /// consumed transparently (they prepare the reader's conversion — or
    /// zero-copy — path before the first record of each format).
    pub fn poll(&mut self, timeout: Duration) -> Result<Option<Event<'_>>, ServError> {
        let deadline = Instant::now() + timeout;
        loop {
            let Some((kind, a, b, mut body)) = self.next_frame(deadline)? else {
                return Ok(None);
            };
            match kind {
                K_ANNOUNCE => {
                    self.note_wire_format(a, &body);
                    self.reader.on_format(a, &body)?;
                }
                K_EVENT => {
                    self.metrics.events.inc();
                    let (format, ctx) = self.split_trailer(b, &mut body)?;
                    let zero_copy = self.reader.is_zero_copy(format);
                    if zero_copy {
                        self.metrics.zero_copy_events.inc();
                    } else {
                        self.metrics.converted_events.inc();
                    }
                    // The previous event's buffer returns to the pool
                    // here, ready for the next frame read.
                    self.event_buf = body;
                    if let Some(ctx) = ctx {
                        // Stamped before the conversion below, while the
                        // reader is still unborrowed.
                        self.record_decode_hop(a, &ctx);
                    }
                    let convert_hist = (!zero_copy).then(|| self.metrics.convert_ns.clone());
                    let _span = convert_hist.as_ref().map(|h| Span::enter(h));
                    let view = self.reader.on_data(format, &self.event_buf)?;
                    return Ok(Some(Event {
                        channel: a,
                        format,
                        view,
                    }));
                }
                K_ERROR => {
                    return Err(ServError::Remote {
                        code: a,
                        message: String::from_utf8_lossy(&body).into_owned(),
                    })
                }
                other => {
                    return Err(ServError::Protocol(format!(
                        "unexpected frame kind {other:#04x} while polling"
                    )))
                }
            }
        }
    }

    /// [`ServClient::poll`] without the embedded reader: events come back
    /// as the publisher's untouched bytes plus the announced wire layout,
    /// for subscriptions made with [`ServClient::subscribe_raw`].
    pub fn poll_raw(&mut self, timeout: Duration) -> Result<Option<RawEvent<'_>>, ServError> {
        let deadline = Instant::now() + timeout;
        loop {
            let Some((kind, a, b, mut body)) = self.next_frame(deadline)? else {
                return Ok(None);
            };
            match kind {
                K_ANNOUNCE => self.note_wire_format(a, &body),
                K_EVENT => {
                    self.metrics.events.inc();
                    let (format, ctx) = self.split_trailer(b, &mut body)?;
                    let Some(layout) = self.wire_layouts.get(&format).cloned() else {
                        return Err(ServError::Protocol(format!(
                            "event for unannounced format {format}"
                        )));
                    };
                    self.event_buf = body;
                    if let Some(ctx) = ctx {
                        self.record_decode_hop(a, &ctx);
                    }
                    return Ok(Some(RawEvent {
                        channel: a,
                        format,
                        layout,
                        bytes: &self.event_buf,
                    }));
                }
                K_ERROR => {
                    return Err(ServError::Remote {
                        code: a,
                        message: String::from_utf8_lossy(&body).into_owned(),
                    })
                }
                other => {
                    return Err(ServError::Protocol(format!(
                        "unexpected frame kind {other:#04x} while polling"
                    )))
                }
            }
        }
    }

    /// Next frame as `(kind, a, b, body)`, from the pending queue or the
    /// socket; `None` once `deadline` passes. One frame per call: the
    /// steady state (frames read off the socket, bodies cycling through
    /// the pool) allocates nothing.
    fn next_frame(
        &mut self,
        deadline: Instant,
    ) -> Result<Option<(u8, u32, u32, PooledBuf)>, ServError> {
        if let Some(f) = self.pending.pop_front() {
            let mut buf = self.pool.get(f.body.len());
            buf.extend_from_slice(&f.body);
            return Ok(Some((f.kind, f.a, f.b, buf)));
        }
        // Arm the socket timeout only when the next read will actually
        // hit the socket; frames already sitting in the receive buffer
        // cost no syscalls at all.
        if self.rx.buffer().is_empty() {
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            self.stream
                .set_read_timeout(Some((deadline - now).max(MIN_TIMEOUT)))?;
        }
        let header = match read_frame_header(&mut self.rx) {
            Ok(h) => h,
            Err(FrameError::Timeout) => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let mut buf = self.pool.get(header.len);
        read_frame_body(&mut self.rx, header.len, &mut buf)?;
        self.metrics
            .bytes_in
            .add((FRAME_HEADER_SIZE + header.len) as u64);
        Ok(Some((header.kind, header.a, header.b, buf)))
    }

    /// Remember the wire layout an ANNOUNCE carried (undecodable metadata
    /// is left for [`pbio::Reader::on_format`] to report).
    fn note_wire_format(&mut self, format: u32, meta: &[u8]) {
        if let Ok(layout) = deserialize_layout(meta) {
            self.wire_layouts.insert(format, Arc::new(layout));
        }
    }

    /// Strip a flagged trace trailer off an event body. Returns the
    /// clean format id and the decoded context (sampled ones only; an
    /// unflagged event passes through untouched).
    fn split_trailer(
        &self,
        b: u32,
        body: &mut PooledBuf,
    ) -> Result<(u32, Option<TraceCtx>), ServError> {
        if b & TRACE_FLAG == 0 {
            return Ok((b, None));
        }
        let format = b & !TRACE_FLAG;
        if body.len() < TRACE_TRAILER_LEN {
            return Err(ServError::Protocol(
                "event shorter than its trace trailer".into(),
            ));
        }
        let split = body.len() - TRACE_TRAILER_LEN;
        let ctx = TraceCtx::decode(&body[split..])
            .ok_or_else(|| ServError::Protocol("malformed trace trailer".into()))?;
        body.truncate(split);
        Ok((format, Some(ctx).filter(|c| c.sampled())))
    }

    /// Stamp the final hop of a traced event: it reached this subscriber
    /// and is about to be decoded. Times are mapped into the daemon's
    /// timebase so the hop lines up with the daemon-side stamps.
    fn record_decode_hop(&mut self, channel: u32, ctx: &TraceCtx) {
        let t = self.clock.to_peer(epoch_ns());
        let dur = t.saturating_sub(ctx.origin_ns);
        let hist = self.decode_hists.entry(channel).or_insert_with(|| {
            let label = self
                .chan_names
                .get(&channel)
                .cloned()
                .unwrap_or_else(|| channel.to_string());
            self.registry
                .histogram_labeled("hop_decode_ns", "chan", &label)
        });
        hist.record(dur);
        self.trace_hops.push(TraceHop {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            hop: HOP_DECODE,
            conn: self.conn_id,
            channel,
            t_ns: t,
            dur_ns: dur,
        });
    }

    /// Whether records of a format reach this subscriber zero-copy
    /// (unknown formats report `false`).
    pub fn is_zero_copy(&self, format: u32) -> bool {
        self.reader.is_zero_copy(format)
    }

    /// DCG compile statistics for a format — `None` when no conversion
    /// was ever built (zero-copy path, or format not yet seen).
    pub fn dcg_stats(&self, format: u32) -> Option<pbio::CompileStats> {
        self.reader.dcg_stats(format)
    }

    /// Counters (a fixed-field view of [`ServClient::registry`]).
    pub fn stats(&self) -> ClientStats {
        let pool = self.pool.stats();
        ClientStats {
            events: self.metrics.events.get(),
            zero_copy_events: self.metrics.zero_copy_events.get(),
            converted_events: self.metrics.converted_events.get(),
            bytes_in: self.metrics.bytes_in.get(),
            bytes_out: self.metrics.bytes_out.get(),
            pool_hits: pool.hits,
            pool_misses: pool.misses,
            dropped: self.metrics.dropped.get(),
        }
    }

    /// This client's metric registry: every [`ClientStats`] field plus
    /// the encode/convert latency histograms.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The daemon-assigned connection id (echoed in the HELLO ack).
    pub fn conn_id(&self) -> u32 {
        self.conn_id
    }

    /// Whether the distributed-tracing capability was negotiated on this
    /// session (offered by this client *and* granted by the daemon).
    pub fn trace_negotiated(&self) -> bool {
        self.caps & CAP_TRACE != 0
    }

    /// The clock offset measured against the daemon during the
    /// handshake (identity when tracing was not negotiated).
    pub fn clock_sync(&self) -> ClockSync {
        self.clock
    }

    /// Change this client's head-sampling modulus locally (0 disables
    /// stamping; the daemon's advertised default was adopted at connect).
    pub fn set_trace_sampling(&self, modulus: u32) {
        self.sampler.set_modulus(modulus);
    }

    /// Current head-sampling modulus (0 = off).
    pub fn trace_sampling(&self) -> u32 {
        self.sampler.modulus()
    }

    /// Set the *daemon's* sampling modulus ([`K_TRACE_CTL`]): the value
    /// advertised to sessions that connect from now on (0 disables).
    /// Returns the modulus that was in effect before.
    pub fn set_daemon_trace(&mut self, modulus: u32) -> Result<u32, ServError> {
        let token = self.next_token;
        self.next_token += 1;
        self.send_raw(K_TRACE_CTL, token, modulus, &[])?;
        Ok(self.await_ack(K_TRACE_CTL_ACK, token)?.b)
    }

    /// Drain the decode hops recorded by this client's poll loop.
    pub fn take_trace_hops(&mut self) -> Vec<TraceHop> {
        self.trace_hops.drain()
    }

    /// Publish this client's accumulated decode hops on `channel`
    /// (normally the daemon's [`TRACE_CHANNEL`], opened by name). Hop
    /// records travel as self-describing PBIO records like everything
    /// else; this path never stamps trailers of its own, so exporting a
    /// trace cannot generate further traces. Returns the number of hop
    /// records published.
    pub fn publish_trace(&mut self, channel: u32) -> Result<usize, ServError> {
        let hops = self.trace_hops.drain();
        if hops.is_empty() {
            return Ok(0);
        }
        let format = match self.trace_format {
            Some(f) => f,
            None => {
                let f = self.register_format(&hop_schema())?;
                self.trace_format = Some(f);
                f
            }
        };
        let layout = self
            .formats
            .get(&format)
            .ok_or(ServError::UnknownFormat(format))?
            .clone();
        let mut buf = self.pool.get(layout.size());
        for hop in &hops {
            buf.clear();
            encode_native_into(&hop_value(hop), &layout, &mut buf).map_err(PbioError::from)?;
            self.send_raw(K_PUBLISH, channel, format, &buf)?;
        }
        Ok(hops.len())
    }

    /// Pull a one-shot stats snapshot from the daemon ([`K_STATS`]). The
    /// record arrives as native bytes in the daemon's own stats layout
    /// (announced first), and is decoded here — across architectures if
    /// need be — into a header plus [`Snapshot`].
    pub fn pull_stats(&mut self) -> Result<(StatsHeader, Snapshot), ServError> {
        let token = self.next_token;
        self.next_token += 1;
        self.send_raw(K_STATS, token, 0, &[])?;
        let ack = self.await_ack(K_STATS_ACK, token)?;
        let layout = self.wire_layouts.get(&ack.b).cloned().ok_or_else(|| {
            ServError::Protocol(format!("stats format {} was never announced", ack.b))
        })?;
        let value = decode_native(&ack.body, &layout).map_err(PbioError::from)?;
        snapshot_from_value(&value)
            .ok_or_else(|| ServError::Protocol("stats record lacks header fields".into()))
    }

    /// Publish a snapshot of this client's own registry on `channel`
    /// (normally the daemon's `$stats` channel, opened by name via
    /// [`ServClient::open_channel`]). The snapshot's schema is generated
    /// from the metric set and registered like any other format — stats
    /// travel the wire as ordinary PBIO records, laid out for *this*
    /// client's architecture.
    pub fn publish_stats(&mut self, channel: u32) -> Result<(), ServError> {
        let snap = self.registry.snapshot();
        let header = StatsHeader {
            role: ROLE_CLIENT,
            id: self.conn_id,
            seq: self.stats_seq,
            t_ns: epoch_ns(),
        };
        self.stats_seq += 1;
        let schema = stats_schema(&snap);
        let format = match &self.stats_format {
            Some((cached, id)) if *cached == schema => *id,
            _ => {
                let id = self.register_format(&schema)?;
                self.stats_format = Some((schema.clone(), id));
                id
            }
        };
        let value = stats_value(&header, &snap);
        self.publish_value(channel, format, &value)
    }

    /// Graceful disconnect: announce departure and wait for the daemon's
    /// acknowledgement (bounded by the client timeout), so queued frames
    /// are flushed on both sides before the socket closes.
    pub fn disconnect(mut self) -> Result<(), ServError> {
        self.send_raw(K_BYE, 0, 0, &[])?;
        let deadline = Instant::now() + self.timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(ServError::Timeout);
            }
            self.stream
                .set_read_timeout(Some((deadline - now).max(MIN_TIMEOUT)))?;
            match read_frame(&mut self.rx) {
                Ok(f) if f.kind == K_BYE_ACK => return Ok(()),
                // Late events/announcements racing the goodbye: discard.
                Ok(f) if f.kind == K_EVENT || f.kind == K_ANNOUNCE => continue,
                Ok(f) if f.kind == K_ERROR => return Err(remote_error(&f)),
                Ok(f) => {
                    return Err(ServError::Protocol(format!(
                        "unexpected frame kind {:#04x} during disconnect",
                        f.kind
                    )))
                }
                Err(FrameError::Timeout) => continue,
                Err(FrameError::Closed) => return Ok(()),
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Write one frame, borrowing the body from the caller: a stack
    /// header plus a vectored write, no intermediate buffer.
    fn send_raw(&mut self, kind: u8, a: u32, b: u32, body: &[u8]) -> Result<(), ServError> {
        write_frame_raw(&mut self.stream, kind, a, b, body)?;
        self.stream.flush()?;
        self.metrics
            .bytes_out
            .add((FRAME_HEADER_SIZE + body.len()) as u64);
        Ok(())
    }

    /// Read until the expected acknowledgement (kind + echoed token in
    /// `a`) arrives, buffering any events or announcements that race it.
    fn await_ack(&mut self, kind: u8, token: u32) -> Result<Frame, ServError> {
        let deadline = Instant::now() + self.timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(ServError::Timeout);
            }
            self.stream
                .set_read_timeout(Some((deadline - now).max(MIN_TIMEOUT)))?;
            match read_frame(&mut self.rx) {
                Ok(f) => {
                    self.metrics
                        .bytes_in
                        .add((FRAME_HEADER_SIZE + f.body.len()) as u64);
                    if f.kind == kind && f.a == token {
                        return Ok(f);
                    }
                    match f.kind {
                        // Note announced layouts immediately, so a reply
                        // that depends on one (K_STATS_ACK) can decode
                        // even though the frame itself is only buffered.
                        K_ANNOUNCE => {
                            self.note_wire_format(f.a, &f.body);
                            self.pending.push_back(f);
                        }
                        K_EVENT => self.buffer_event(f),
                        K_ERROR => return Err(remote_error(&f)),
                        other => {
                            return Err(ServError::Protocol(format!(
                                "expected frame kind {kind:#04x}, got {other:#04x}",
                            )))
                        }
                    }
                }
                Err(FrameError::Timeout) => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Buffer an event that raced an acknowledged request, dropping the
    /// oldest buffered *event* (never a control frame) once the bounded
    /// budget is exhausted — the client-side mirror of the daemon's
    /// outbound drop-oldest policy.
    fn buffer_event(&mut self, f: Frame) {
        let events = self.pending.iter().filter(|p| p.kind == K_EVENT).count();
        if events >= MAX_PENDING_EVENTS {
            if let Some(i) = self.pending.iter().position(|p| p.kind == K_EVENT) {
                let evicted = self.pending.remove(i);
                self.metrics.dropped.inc();
                // Attribute the drop to the channel it hit, not just the
                // global total — the label resolves once per channel.
                if let Some(evicted) = evicted {
                    let chan = evicted.a;
                    self.drop_counters
                        .entry(chan)
                        .or_insert_with(|| {
                            let label = self
                                .chan_names
                                .get(&chan)
                                .cloned()
                                .unwrap_or_else(|| chan.to_string());
                            self.registry
                                .counter_labeled("client_dropped", "chan", &label)
                        })
                        .inc();
                }
            }
        }
        self.pending.push_back(f);
    }
}

fn remote_error(frame: &Frame) -> ServError {
    ServError::Remote {
        code: frame.a,
        message: String::from_utf8_lossy(&frame.body).into_owned(),
    }
}
