//! Client-side error type.

use std::fmt;
use std::io;

use pbio::PbioError;
use pbio_net::frame::FrameError;

/// Errors surfaced by [`crate::ServClient`].
#[derive(Debug)]
pub enum ServError {
    /// Socket-level failure.
    Io(io::Error),
    /// The session stream desynchronized or truncated.
    Frame(FrameError),
    /// A per-call timeout elapsed.
    Timeout,
    /// The peer violated the session protocol.
    Protocol(String),
    /// The daemon rejected a request (code from [`crate::protocol`]).
    Remote {
        /// Error code (`E_*` in [`crate::protocol`]).
        code: u32,
        /// Human-readable description from the daemon.
        message: String,
    },
    /// Publishing with a format id this client never registered.
    UnknownFormat(u32),
    /// PBIO encode/decode failure.
    Pbio(PbioError),
}

impl fmt::Display for ServError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServError::Io(e) => write!(f, "i/o error: {e}"),
            ServError::Frame(e) => write!(f, "session stream error: {e}"),
            ServError::Timeout => write!(f, "request timed out"),
            ServError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServError::Remote { code, message } => {
                write!(f, "daemon rejected request (code {code}): {message}")
            }
            ServError::UnknownFormat(id) => {
                write!(f, "format {id} was not registered on this client")
            }
            ServError::Pbio(e) => write!(f, "pbio error: {e}"),
        }
    }
}

impl std::error::Error for ServError {}

impl From<io::Error> for ServError {
    fn from(e: io::Error) -> ServError {
        ServError::Io(e)
    }
}

impl From<FrameError> for ServError {
    fn from(e: FrameError) -> ServError {
        match e {
            FrameError::Timeout => ServError::Timeout,
            other => ServError::Frame(other),
        }
    }
}

impl From<PbioError> for ServError {
    fn from(e: PbioError) -> ServError {
        ServError::Pbio(e)
    }
}
