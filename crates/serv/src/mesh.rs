//! Daemon↔daemon federation: sharded channels over a static peer mesh.
//!
//! A mesh of N daemons partitions the channel namespace by a
//! deterministic hash ([`home_of`]): every channel name has exactly one
//! *home* daemon, and that daemon's fan-out is the channel's single
//! ordering point. Any daemon accepts any publish — a publish arriving
//! at a non-home daemon is forwarded over one inter-daemon link to the
//! home, and the home fans it out to every subscriber, local or relayed.
//! Reserved `$`-channels (`$stats`, `$trace`, `$topo`) describe one
//! daemon and are always local — they never route.
//!
//! Links speak the ordinary frame protocol. Every daemon *dials* every
//! peer it knows about; a dialed link is a dedicated thread owning a
//! nonblocking socket, while the inbound half of each pairing rides the
//! acceptor's normal reactor path as a client that negotiated
//! [`CAP_PEER`](crate::protocol::CAP_PEER). All asymmetric state —
//! peer-namespace channel/format id maps, the pending-forward queue,
//! relay subscriptions — lives on the dialing side; the acceptor just
//! serves, with two exceptions keyed off the granted capability:
//!
//! * publishes arriving on a `CAP_PEER` connection always fan out
//!   locally and are never re-forwarded (the structural loop guard);
//! * granting `CAP_PEER` triggers a format-gossip dump, and fresh
//!   registrations are re-broadcast to every peer, so a layout
//!   registered anywhere decodes everywhere. Gossip converges because
//!   [`FormatServer`](pbio_core::registry::FormatServer) deduplicates
//!   by exact metadata bytes: a re-received layout is not fresh, so the
//!   echo dies after one round.
//!
//! Relay fan-out is the zero-copy property end to end: one `K_EVENT`
//! crossing a link becomes N local deliveries by refcount bumps on the
//! far side, exactly like a local publish. A sampled trace trailer
//! survives the crossing and each link stamps a
//! [`HOP_RELAY`](pbio_obs::HOP_RELAY) hop at egress and injection.
//!
//! Failure model: a link that loses its socket reconnects with the
//! capped backoff of [`pbio_net::dial`], re-subscribes its relay
//! subscriptions, and re-dumps formats (both dedup on the far side).
//! Forwards that cannot resolve — link down, channel or format id not
//! yet mapped — park in a bounded pending queue (drop-oldest, counted),
//! so the accounting invariant `attempted == relayed + dropped +
//! pending` holds at every instant and a healed partition drains its
//! backlog exactly once.

use std::collections::{HashMap, HashSet, VecDeque};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pbio_net::buf::WireBuf;
use pbio_net::dial::backoff_delay;
use pbio_net::frame::{read_frame, write_frame, write_frames_nonblocking, Frame, FrameHeader};
use pbio_obs::{epoch_ns, TraceCtx, TRACE_TRAILER_LEN};
use pbio_types::arch::ArchProfile;

use crate::protocol::*;

/// One peer in a [`MeshConfig`]: its mesh index and dialable address.
#[derive(Debug, Clone)]
pub struct PeerAddr {
    /// The peer's mesh index (its `MeshConfig::index`).
    pub index: u32,
    /// Address the peer's daemon listens on, e.g. `"127.0.0.1:7000"`.
    pub addr: String,
}

/// Static mesh membership for one daemon.
#[derive(Debug, Clone)]
pub struct MeshConfig {
    /// This daemon's position in the mesh, `0..size`.
    pub index: u32,
    /// Total daemon count the channel hash shards over. Every member
    /// must agree on `size` or they will disagree on channel homes.
    pub size: u32,
    /// The other members this daemon dials at bind time. Late joiners
    /// can be added with [`crate::ServDaemon::connect_peer`].
    pub peers: Vec<PeerAddr>,
}

impl MeshConfig {
    /// A convenience constructor for tests and benches.
    pub fn new(index: u32, size: u32, peers: Vec<PeerAddr>) -> MeshConfig {
        MeshConfig { index, size, peers }
    }
}

/// The home daemon of channel `name` in a mesh of `size` daemons:
/// FNV-1a of the name, mod `size`. Deterministic and dependency-free,
/// so every member computes the same shard map from the name alone.
/// Reserved `$`-channels are the caller's business — daemons pin them
/// local before consulting the hash.
pub fn home_of(name: &str, size: u32) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if size == 0 {
        return 0;
    }
    (h % u64::from(size)) as u32
}

/// A point-in-time view of one peer link, as surfaced by
/// [`crate::ServDaemon::peer_stats`] and the `$topo` peers section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerStats {
    /// The peer's mesh index.
    pub peer: u32,
    /// Whether the dialed link currently holds a live session.
    pub connected: bool,
    /// Publish forwards handed to the peer's socket.
    pub relay_tx: u64,
    /// Relayed events received from the peer and injected locally.
    pub relay_rx: u64,
    /// Forwards discarded by the pending queue's drop-oldest bound.
    pub relay_dropped: u64,
    /// Forwards parked awaiting link or id-map resolution.
    pub pending: u64,
    /// [`epoch_ns`] of the last frame received from this peer.
    pub last_rx_ns: u64,
    /// Sessions established on this link (1 = the initial connect).
    pub connects: u64,
}

/// What the mesh needs from the daemon it lives in, kept narrow so the
/// link machinery stays free of daemon internals (and testable without
/// them).
pub(crate) trait MeshHost: Send + Sync {
    /// Register serialized layout metadata, returning the local format
    /// id and whether this call created the entry.
    fn register_meta(&self, meta: &[u8]) -> Option<(u32, bool)>;
    /// Serialized metadata for a local format id.
    fn format_meta(&self, id: u32) -> Option<Arc<[u8]>>;
    /// Number of registered formats; ids are contiguous `0..count`.
    fn format_count(&self) -> u32;
    /// Fan a relayed event out on local channel `chan`. `format`
    /// carries the *local* format id plus any [`TRACE_FLAG`] /
    /// [`OFFSET_FLAG`] bits describing trailers still on `body`.
    fn inject_event(&self, chan: u32, format: u32, body: WireBuf, peer: u32);
    /// Record a [`HOP_RELAY`](pbio_obs::HOP_RELAY) trace hop against
    /// `peer`'s link.
    fn relay_hop(&self, ctx: &TraceCtx, chan: u32, peer: u32);
}

/// Work items the daemon hands a link thread.
enum LinkMsg {
    /// Forward a publish to the channel's home daemon.
    Forward {
        chan: Arc<str>,
        format: u32,
        traced: bool,
        body: WireBuf,
    },
    /// Ensure a relay subscription: events published on `chan` at the
    /// peer should flow back and fan out on local channel `local_chan`.
    Subscribe { chan: Arc<str>, local_chan: u32 },
    /// Announce a freshly registered local format to the peer.
    Gossip { format: u32 },
}

/// Counters shared between a link thread and observers.
struct LinkShared {
    connected: AtomicBool,
    relay_tx: AtomicU64,
    relay_rx: AtomicU64,
    relay_dropped: AtomicU64,
    pending: AtomicU64,
    last_rx_ns: AtomicU64,
    connects: AtomicU64,
    /// Test hook: while set, the link severs its socket and refuses to
    /// redial — a partition. Clearing it is the heal.
    partitioned: AtomicBool,
}

impl LinkShared {
    fn new() -> LinkShared {
        LinkShared {
            connected: AtomicBool::new(false),
            relay_tx: AtomicU64::new(0),
            relay_rx: AtomicU64::new(0),
            relay_dropped: AtomicU64::new(0),
            pending: AtomicU64::new(0),
            last_rx_ns: AtomicU64::new(0),
            connects: AtomicU64::new(0),
            partitioned: AtomicBool::new(false),
        }
    }
}

/// The daemon-side handle on one dialed link.
struct PeerHandle {
    tx: Sender<LinkMsg>,
    shared: Arc<LinkShared>,
    thread: Option<JoinHandle<()>>,
}

/// The mesh: this daemon's membership plus one dialed link per peer.
pub(crate) struct Mesh {
    pub(crate) index: u32,
    pub(crate) size: u32,
    links: Mutex<HashMap<u32, PeerHandle>>,
    shutdown: Arc<AtomicBool>,
}

impl Mesh {
    pub(crate) fn new(index: u32, size: u32) -> Mesh {
        Mesh {
            index,
            size: size.max(1),
            links: Mutex::new(HashMap::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The home daemon for `name`, with reserved `$`-channels pinned to
    /// this daemon.
    pub(crate) fn home(&self, name: &str) -> u32 {
        if name.starts_with('$') {
            self.index
        } else {
            home_of(name, self.size)
        }
    }

    /// Spawn (or replace) the dialed link to `peer` at `addr`.
    pub(crate) fn add_peer(&self, peer: u32, addr: String, host: Arc<dyn MeshHost>) {
        let (tx, rx) = channel();
        let shared = Arc::new(LinkShared::new());
        let ctx = LinkCtx {
            peer,
            addr,
            rx,
            shared: shared.clone(),
            shutdown: self.shutdown.clone(),
            host,
        };
        let thread = std::thread::Builder::new()
            .name(format!("pbio-serv-peer{peer}"))
            .spawn(move || link_loop(ctx))
            .ok();
        let mut links = self.links.lock().unwrap_or_else(|p| p.into_inner());
        // A replaced link winds down on its own: dropping its handle
        // drops its sender, and the orphaned thread exits when the
        // mailbox reports the disconnect within one tick.
        links.insert(peer, PeerHandle { tx, shared, thread });
    }

    /// Hand a publish to the link that dials `home`. Returns false when
    /// no such link exists (a home outside the configured mesh).
    pub(crate) fn forward(
        &self,
        home: u32,
        chan: Arc<str>,
        format: u32,
        traced: bool,
        body: WireBuf,
    ) -> bool {
        let links = self.links.lock().unwrap_or_else(|p| p.into_inner());
        match links.get(&home) {
            Some(l) => {
                l.tx.send(LinkMsg::Forward {
                    chan,
                    format,
                    traced,
                    body,
                })
                .is_ok()
            }
            None => false,
        }
    }

    /// Ensure events on `chan` (homed at `home`) relay back to local
    /// channel `local_chan`. Idempotent — the link dedups by name.
    pub(crate) fn ensure_relay_sub(&self, home: u32, chan: Arc<str>, local_chan: u32) {
        let links = self.links.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(l) = links.get(&home) {
            let _ = l.tx.send(LinkMsg::Subscribe { chan, local_chan });
        }
    }

    /// Broadcast a freshly registered local format to every peer link.
    pub(crate) fn gossip(&self, format: u32) {
        let links = self.links.lock().unwrap_or_else(|p| p.into_inner());
        for l in links.values() {
            let _ = l.tx.send(LinkMsg::Gossip { format });
        }
    }

    /// Snapshot every link's counters, sorted by peer index.
    pub(crate) fn peer_stats(&self) -> Vec<PeerStats> {
        let links = self.links.lock().unwrap_or_else(|p| p.into_inner());
        let mut out: Vec<PeerStats> = links
            .iter()
            .map(|(peer, l)| PeerStats {
                peer: *peer,
                connected: l.shared.connected.load(Ordering::Relaxed),
                relay_tx: l.shared.relay_tx.load(Ordering::Relaxed),
                relay_rx: l.shared.relay_rx.load(Ordering::Relaxed),
                relay_dropped: l.shared.relay_dropped.load(Ordering::Relaxed),
                pending: l.shared.pending.load(Ordering::Relaxed),
                last_rx_ns: l.shared.last_rx_ns.load(Ordering::Relaxed),
                connects: l.shared.connects.load(Ordering::Relaxed),
            })
            .collect();
        out.sort_by_key(|s| s.peer);
        out
    }

    /// Sever (or heal) the link to `peer`. Returns false for an unknown
    /// peer. A severed link parks forwards in its pending queue and
    /// drains them on heal.
    pub(crate) fn set_partitioned(&self, peer: u32, partitioned: bool) -> bool {
        let links = self.links.lock().unwrap_or_else(|p| p.into_inner());
        match links.get(&peer) {
            Some(l) => {
                l.shared.partitioned.store(partitioned, Ordering::Release);
                true
            }
            None => false,
        }
    }

    /// Stop every link thread and join it.
    pub(crate) fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let handles: Vec<JoinHandle<()>> = {
            let mut links = self.links.lock().unwrap_or_else(|p| p.into_inner());
            links.values_mut().filter_map(|l| l.thread.take()).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// The link thread.

/// Mailbox poll granularity; also the socket poll cadence, so the link
/// adds at most ~1 ms to the relay path when otherwise idle.
const TICK: Duration = Duration::from_millis(1);
/// Dial backoff bounds.
const BACKOFF_MIN: Duration = Duration::from_millis(10);
const BACKOFF_MAX: Duration = Duration::from_millis(500);
/// Handshake frame-read timeout.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);
/// Idle time before the link probes the peer with `K_PING`.
const PING_IDLE: Duration = Duration::from_secs(2);
/// Silence past which the session is declared dead and redialed.
const DEAD_IDLE: Duration = Duration::from_secs(8);
/// Bound on forwards parked awaiting resolution; beyond it the oldest
/// is discarded and counted in `relay_dropped`.
const PENDING_CAP: usize = 1024;
/// Socket reads drained per tick before yielding to writes.
const MAX_FILLS: usize = 16;

struct LinkCtx {
    peer: u32,
    addr: String,
    rx: Receiver<LinkMsg>,
    shared: Arc<LinkShared>,
    shutdown: Arc<AtomicBool>,
    host: Arc<dyn MeshHost>,
}

/// A forward that could not resolve yet (link down, or the peer's
/// channel/format ids not mapped).
struct PendingForward {
    chan: Arc<str>,
    format: u32,
    traced: bool,
    body: WireBuf,
}

/// Per-session state, rebuilt from scratch on every (re)connect — peer
/// ids are meaningless across that peer's restarts.
struct Session {
    stream: TcpStream,
    dec: pbio_net::frame::FrameDecoder,
    outq: VecDeque<Frame>,
    cursor: usize,
    /// channel name → peer channel id.
    chan_peer: HashMap<Arc<str>, u32>,
    /// in-flight channel-open token → name.
    chan_tokens: HashMap<u32, Arc<str>>,
    /// names with an open request already in flight or resolved.
    chan_requested: HashSet<Arc<str>>,
    /// peer channel id → local channel id, for relayed events.
    chan_rev: HashMap<u32, u32>,
    /// local format id → peer format id.
    fmt_peer: HashMap<u32, u32>,
    /// peer format id → local format id.
    fmt_rev: HashMap<u32, u32>,
    /// local format ids with a registration already in flight.
    fmt_requested: HashSet<u32>,
    next_token: u32,
    last_rx: Instant,
    last_ping: Instant,
}

fn link_loop(ctx: LinkCtx) {
    // Survives reconnects: what we relay-subscribe (name → local chan)
    // and the forwards still owed to the peer.
    let mut subs: HashMap<Arc<str>, u32> = HashMap::new();
    let mut pending: VecDeque<PendingForward> = VecDeque::new();
    let mut attempt = 0u32;
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // While partitioned, keep draining the mailbox into the pending
        // queue (that is the partition's observable contract) without
        // touching the network.
        if ctx.shared.partitioned.load(Ordering::Acquire) {
            if !absorb_offline(&ctx, &mut subs, &mut pending) {
                return;
            }
            std::thread::sleep(TICK);
            continue;
        }
        let Some(stream) = dial_handshake(&ctx) else {
            if ctx.shutdown.load(Ordering::SeqCst) {
                return;
            }
            // Dial failed or was interrupted: back off, but keep
            // absorbing mail in small slices so forwards issued while
            // the peer is down land in the (counted) pending queue
            // rather than an invisible mailbox.
            let mut left = backoff_delay(BACKOFF_MIN, BACKOFF_MAX, attempt);
            attempt = attempt.saturating_add(1);
            while left > Duration::ZERO {
                if ctx.shutdown.load(Ordering::SeqCst)
                    || ctx.shared.partitioned.load(Ordering::Acquire)
                {
                    break;
                }
                if !absorb_offline(&ctx, &mut subs, &mut pending) {
                    return;
                }
                let nap = left.min(Duration::from_millis(10));
                std::thread::sleep(nap);
                left = left.saturating_sub(nap);
            }
            if !absorb_offline(&ctx, &mut subs, &mut pending) {
                return;
            }
            continue;
        };
        attempt = 0;
        ctx.shared.connected.store(true, Ordering::Relaxed);
        ctx.shared.connects.fetch_add(1, Ordering::Relaxed);
        let mut s = Session {
            stream,
            dec: pbio_net::frame::FrameDecoder::new(),
            outq: VecDeque::new(),
            cursor: 0,
            chan_peer: HashMap::new(),
            chan_tokens: HashMap::new(),
            chan_requested: HashSet::new(),
            chan_rev: HashMap::new(),
            fmt_peer: HashMap::new(),
            fmt_rev: HashMap::new(),
            fmt_requested: HashSet::new(),
            next_token: 1,
            last_rx: Instant::now(),
            last_ping: Instant::now(),
        };
        // Format-gossip dump: every local layout, ids in order. The
        // acks map our ids into the peer's namespace.
        for id in 0..ctx.host.format_count() {
            if let Some(meta) = ctx.host.format_meta(id) {
                s.outq
                    .push_back(Frame::with_body(K_FORMAT, id, 0, WireBuf::from(meta)));
                s.fmt_requested.insert(id);
            }
        }
        // Re-subscribe relays and re-request pending channels.
        for name in subs.keys() {
            request_channel(&mut s, name.clone());
        }
        for p in &pending {
            request_channel(&mut s, p.chan.clone());
        }
        let alive = run_session(&ctx, &mut s, &mut subs, &mut pending);
        ctx.shared.connected.store(false, Ordering::Relaxed);
        let _ = s.stream.shutdown(std::net::Shutdown::Both);
        if !alive {
            return;
        }
    }
}

/// Drain the mailbox while no session exists: forwards park in the
/// bounded pending queue, subscriptions accumulate, gossip is dropped
/// (the next connect re-dumps every format anyway). Returns false when
/// the mesh dropped its sender — the link is being replaced or torn
/// down.
fn absorb_offline(
    ctx: &LinkCtx,
    subs: &mut HashMap<Arc<str>, u32>,
    pending: &mut VecDeque<PendingForward>,
) -> bool {
    loop {
        match ctx.rx.try_recv() {
            Ok(LinkMsg::Forward {
                chan,
                format,
                traced,
                body,
            }) => {
                park(
                    ctx,
                    pending,
                    PendingForward {
                        chan,
                        format,
                        traced,
                        body,
                    },
                );
            }
            Ok(LinkMsg::Subscribe { chan, local_chan }) => {
                subs.insert(chan, local_chan);
            }
            Ok(LinkMsg::Gossip { .. }) => {}
            Err(std::sync::mpsc::TryRecvError::Empty) => return true,
            Err(std::sync::mpsc::TryRecvError::Disconnected) => return false,
        }
    }
}

/// Park one forward in the bounded pending queue, dropping the oldest
/// beyond the cap.
fn park(ctx: &LinkCtx, pending: &mut VecDeque<PendingForward>, fwd: PendingForward) {
    if pending.len() >= PENDING_CAP {
        pending.pop_front();
        ctx.shared.relay_dropped.fetch_add(1, Ordering::Relaxed);
    }
    pending.push_back(fwd);
    ctx.shared
        .pending
        .store(pending.len() as u64, Ordering::Relaxed);
}

/// One dial-and-handshake attempt, offering
/// `CAP_PEER | CAP_TRACE | CAP_DURABLE` (trace and durability so event
/// trailers cross the link intact). `None` means the attempt failed —
/// peer unreachable, handshake error, or `CAP_PEER` refused — and the
/// caller owns the backoff (it keeps absorbing mail while waiting).
fn dial_handshake(ctx: &LinkCtx) -> Option<TcpStream> {
    if ctx.shutdown.load(Ordering::SeqCst) || ctx.shared.partitioned.load(Ordering::Acquire) {
        return None;
    }
    let mut stream = dial_once(&ctx.addr)?;
    let _ = stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
    let offered = CAP_PEER | CAP_TRACE | CAP_DURABLE;
    let hello = Frame::with_body(
        K_HELLO,
        PROTOCOL_VERSION,
        offered,
        ArchProfile::X86_64.name.as_bytes().to_vec(),
    );
    if write_frame(&mut stream, &hello).is_err() {
        return None;
    }
    let ack = read_frame(&mut stream).ok()?;
    if ack.kind != K_HELLO_ACK || ack.body.len() < 4 {
        return None;
    }
    let granted = u32::from_be_bytes(ack.body[..4].try_into().ok()?);
    if granted & CAP_PEER == 0 {
        // Not a mesh daemon (or an old one): the caller's backoff keeps
        // us from spinning against it.
        return None;
    }
    let _ = stream.set_read_timeout(None);
    stream.set_nonblocking(true).ok()?;
    Some(stream)
}

/// One bounded, immediate dial attempt.
fn dial_once(addr: &str) -> Option<TcpStream> {
    use std::net::ToSocketAddrs;
    let a = addr.to_socket_addrs().ok()?.next()?;
    let s = TcpStream::connect_timeout(&a, Duration::from_millis(250)).ok()?;
    let _ = s.set_nodelay(true);
    Some(s)
}

/// The steady-state session loop. Returns false when the link should
/// exit entirely (mesh dropped the mailbox), true to reconnect.
fn run_session(
    ctx: &LinkCtx,
    s: &mut Session,
    subs: &mut HashMap<Arc<str>, u32>,
    pending: &mut VecDeque<PendingForward>,
) -> bool {
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        if ctx.shared.partitioned.load(Ordering::Acquire) {
            return true;
        }
        let mut resolved = false;
        // 1. Mailbox: drain whatever the daemon queued.
        loop {
            match ctx.rx.try_recv() {
                Ok(msg) => {
                    if handle_msg(ctx, s, subs, pending, msg) {
                        resolved = true;
                    }
                }
                Err(std::sync::mpsc::TryRecvError::Empty) => break,
                Err(std::sync::mpsc::TryRecvError::Disconnected) => return false,
            }
        }
        // 2. Reads: pull frames until the socket runs dry (bounded per
        // tick), processing as we go — acks here resolve id maps.
        let mut dead = false;
        for _ in 0..MAX_FILLS {
            match s.dec.fill(&mut s.stream) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(_) => {
                    s.last_rx = Instant::now();
                    ctx.shared.last_rx_ns.store(epoch_ns(), Ordering::Relaxed);
                    loop {
                        match s.dec.next() {
                            Ok(Some((header, body))) => {
                                let body = WireBuf::copy_from(body);
                                if handle_peer_frame(ctx, s, subs, &header, body) {
                                    resolved = true;
                                }
                            }
                            Ok(None) => break,
                            Err(_) => {
                                // Corrupt frame: the decoder already
                                // resynced; skip it.
                                break;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            return true;
        }
        // 3. Retry parked forwards once something resolved.
        if resolved && !pending.is_empty() {
            let mut keep = VecDeque::with_capacity(pending.len());
            while let Some(fwd) = pending.pop_front() {
                if !try_forward(ctx, s, fwd.chan.clone(), fwd.format, fwd.traced, &fwd.body) {
                    keep.push_back(fwd);
                }
            }
            *pending = keep;
            ctx.shared
                .pending
                .store(pending.len() as u64, Ordering::Relaxed);
        }
        // 4. Liveness.
        let idle = s.last_rx.elapsed();
        if idle > DEAD_IDLE {
            return true;
        }
        if idle > PING_IDLE && s.last_ping.elapsed() > PING_IDLE {
            s.outq.push_back(Frame::control(K_PING, 0, 0));
            s.last_ping = Instant::now();
        }
        // 5. Writes: flush as much of the queue as the socket takes.
        if !s.outq.is_empty() {
            s.outq.make_contiguous();
            let (frames, _) = s.outq.as_slices();
            match write_frames_nonblocking(&mut s.stream, frames, &mut s.cursor) {
                Ok(progress) => {
                    for _ in 0..progress.frames_done {
                        s.outq.pop_front();
                    }
                }
                Err(_) => return true,
            }
        }
        // 6. Sleep only when fully idle; any arriving mail wakes us.
        if s.outq.is_empty() && pending.is_empty() {
            match ctx.rx.recv_timeout(TICK) {
                Ok(msg) => {
                    handle_msg(ctx, s, subs, pending, msg);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return false,
            }
        } else {
            std::thread::sleep(TICK);
        }
    }
}

/// Apply one mailbox message to the live session. Returns true when it
/// may have resolved a pending forward (new subscription acks pending
/// drains come from frames, so only rarely).
fn handle_msg(
    ctx: &LinkCtx,
    s: &mut Session,
    subs: &mut HashMap<Arc<str>, u32>,
    pending: &mut VecDeque<PendingForward>,
    msg: LinkMsg,
) -> bool {
    match msg {
        LinkMsg::Forward {
            chan,
            format,
            traced,
            body,
        } => {
            if !try_forward(ctx, s, chan.clone(), format, traced, &body) {
                park(
                    ctx,
                    pending,
                    PendingForward {
                        chan,
                        format,
                        traced,
                        body,
                    },
                );
            }
            false
        }
        LinkMsg::Subscribe { chan, local_chan } => {
            let fresh = subs.insert(chan.clone(), local_chan).is_none();
            if fresh {
                if let Some(&pchan) = s.chan_peer.get(&chan) {
                    s.chan_rev.insert(pchan, local_chan);
                    s.outq.push_back(Frame::control(K_SUBSCRIBE, pchan, 0));
                } else {
                    request_channel(s, chan);
                }
            }
            false
        }
        LinkMsg::Gossip { format } => {
            if s.fmt_requested.insert(format) {
                if let Some(meta) = ctx.host.format_meta(format) {
                    s.outq
                        .push_back(Frame::with_body(K_FORMAT, format, 0, WireBuf::from(meta)));
                }
            }
            false
        }
    }
}

/// Queue a channel-open request for `name` unless one is in flight.
fn request_channel(s: &mut Session, name: Arc<str>) {
    if !s.chan_requested.insert(name.clone()) {
        return;
    }
    let token = s.next_token;
    s.next_token += 1;
    s.chan_tokens.insert(token, name.clone());
    s.outq.push_back(Frame::with_body(
        K_CHANNEL,
        token,
        0,
        name.as_bytes().to_vec(),
    ));
}

/// Attempt to put one forward on the wire. False means an id is still
/// unresolved (the needed request is queued as a side effect).
fn try_forward(
    ctx: &LinkCtx,
    s: &mut Session,
    chan: Arc<str>,
    format: u32,
    traced: bool,
    body: &WireBuf,
) -> bool {
    let Some(&pchan) = s.chan_peer.get(&chan) else {
        request_channel(s, chan);
        return false;
    };
    let Some(&pfmt) = s.fmt_peer.get(&format) else {
        if s.fmt_requested.insert(format) {
            if let Some(meta) = ctx.host.format_meta(format) {
                s.outq
                    .push_back(Frame::with_body(K_FORMAT, format, 0, WireBuf::from(meta)));
            }
        }
        return false;
    };
    let b = if traced { pfmt | TRACE_FLAG } else { pfmt };
    if traced && body.len() >= TRACE_TRAILER_LEN {
        if let Some(tc) = TraceCtx::decode(&body[body.len() - TRACE_TRAILER_LEN..]) {
            if tc.sampled() {
                ctx.host.relay_hop(&tc, pchan, ctx.peer);
            }
        }
    }
    s.outq
        .push_back(Frame::with_body(K_PUBLISH, pchan, b, body.clone()));
    ctx.shared.relay_tx.fetch_add(1, Ordering::Relaxed);
    true
}

/// Process one frame from the peer. Returns true when an id map gained
/// an entry (worth a pending-queue drain).
fn handle_peer_frame(
    ctx: &LinkCtx,
    s: &mut Session,
    subs: &HashMap<Arc<str>, u32>,
    header: &FrameHeader,
    body: WireBuf,
) -> bool {
    match header.kind {
        K_FORMAT_ACK => {
            // a = our local id (echoed), b = the peer's id for it.
            s.fmt_peer.insert(header.a, header.b);
            s.fmt_rev.insert(header.b, header.a);
            true
        }
        K_CHANNEL_ACK => {
            // a = our token (echoed), b = the peer's channel id.
            let Some(name) = s.chan_tokens.remove(&header.a) else {
                return false;
            };
            s.chan_peer.insert(name.clone(), header.b);
            if let Some(&local_chan) = subs.get(&name) {
                s.chan_rev.insert(header.b, local_chan);
                s.outq.push_back(Frame::control(K_SUBSCRIBE, header.b, 0));
            }
            true
        }
        // The peer's gossip push (its local id in `a`): register the
        // layout here; dedup makes re-receipt free, and the shared id
        // maps gain both directions without an ack round trip.
        K_FORMAT => {
            if let Some((local, _fresh)) = ctx.host.register_meta(&body) {
                s.fmt_rev.insert(header.a, local);
                s.fmt_peer.insert(local, header.a);
                return true;
            }
            false
        }
        // Announce preceding a relayed event's first use of a format on
        // this connection.
        K_ANNOUNCE => {
            if let Some((local, _fresh)) = ctx.host.register_meta(&body) {
                s.fmt_rev.insert(header.a, local);
                s.fmt_peer.insert(local, header.a);
                return true;
            }
            false
        }
        // A relayed event: translate ids into the local namespace and
        // fan it out — one frame in, N refcount bumps out.
        K_EVENT => {
            let flags = header.b & (TRACE_FLAG | OFFSET_FLAG);
            let pfmt = header.b & !(TRACE_FLAG | OFFSET_FLAG);
            let Some(&local_fmt) = s.fmt_rev.get(&pfmt) else {
                return false;
            };
            let Some(&local_chan) = s.chan_rev.get(&header.a) else {
                return false;
            };
            if flags & TRACE_FLAG != 0 {
                let off = if flags & OFFSET_FLAG != 0 {
                    OFFSET_TRAILER_LEN
                } else {
                    0
                };
                if body.len() >= off + TRACE_TRAILER_LEN {
                    let t = &body[body.len() - off - TRACE_TRAILER_LEN..body.len() - off];
                    if let Some(tc) = TraceCtx::decode(t) {
                        if tc.sampled() {
                            ctx.host.relay_hop(&tc, local_chan, ctx.peer);
                        }
                    }
                }
            }
            ctx.shared.relay_rx.fetch_add(1, Ordering::Relaxed);
            ctx.host
                .inject_event(local_chan, local_fmt | flags, body, ctx.peer);
            false
        }
        K_PING => {
            s.outq.push_back(Frame::control(K_PONG, header.a, 0));
            false
        }
        // Acks and errors with no link-side state to update.
        K_PONG | K_SUBSCRIBE_ACK | K_PUBLISH_ACK | K_ERROR | K_BYE_ACK => false,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_hash_is_stable_and_spread() {
        // Pinned values: every mesh member must agree forever.
        assert_eq!(home_of("fanout-bench", 2), home_of("fanout-bench", 2));
        assert_eq!(home_of("anything", 1), 0);
        assert_eq!(home_of("x", 0), 0);
        // The hash actually spreads: among a small family of names at
        // least two distinct homes appear for size 4.
        let homes: std::collections::HashSet<u32> =
            (0..16).map(|i| home_of(&format!("chan-{i}"), 4)).collect();
        assert!(homes.len() >= 2, "hash failed to spread: {homes:?}");
    }

    #[test]
    fn peer_stats_snapshot_orders_by_index() {
        let mesh = Mesh::new(0, 3);
        // No links: empty, not a panic.
        assert!(mesh.peer_stats().is_empty());
        assert!(!mesh.set_partitioned(1, true));
    }
}
