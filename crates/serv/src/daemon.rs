//! The event-channel daemon: an event-driven TCP server built on sharded
//! readiness reactors, routing published events to subscribers and
//! filtering at the source.
//!
//! All connections share one [`FormatServer`], so a format registered by
//! one publisher is known — under the same id — to every session, and its
//! metadata is validated and stored exactly once. Event bodies are the
//! publisher's NDR bytes and are forwarded verbatim; the daemon never
//! builds a conversion, which is what keeps the homogeneous
//! publisher/subscriber path zero-copy end to end.
//!
//! Each subscription may carry a predicate (shipped in the wire form of
//! [`pbio_chan::wire`]). The daemon compiles it with the DCG filter
//! machinery against each *publisher's* wire format — lazily, once per
//! (subscription, format) — and evaluates it before any bytes are queued,
//! so filtered events are never transmitted.
//!
//! Slow subscribers get a bounded outbound queue with a drop-oldest
//! policy: publishers never block on a stalled consumer, and control
//! frames (acks, format announcements) are exempt so the session itself
//! cannot be dropped.
//!
//! ## Threading model
//!
//! Connections do not own threads. The accept loop hands each accepted
//! socket — switched to nonblocking mode — to one of
//! [`ServConfig::shards`] *reactor* threads, chosen round-robin. A
//! reactor owns its slice of connections outright: their registration
//! with a [`pbio_net::poll::Poller`], their inbound [`FrameDecoder`]
//! state, their outbound queues, and their flush work. One poll wakeup
//! drains every readable socket, dispatches the decoded frames through
//! the same protocol machine a dedicated thread used to run, and then
//! flushes every connection with queued output via batched vectored
//! writes ([`write_frames_nonblocking`]), keeping per-connection
//! partial-write cursors so a full socket buffer suspends — never
//! blocks — the shard. Cross-thread work (new connections, "this
//! connection has frames queued" nudges from publishers on other shards)
//! arrives over a lock-free channel paired with a [`Waker`], so the
//! daemon's thread count is O(shards), not O(connections): 10k idle
//! subscribers cost file descriptors, not stacks.
//!
//! The fan-out path is allocation-flat: a published event is copied once
//! into a shared [`WireBuf`] as it is decoded off the publisher's socket,
//! and every subscriber queue, ANNOUNCE body, and outgoing frame after
//! that is a refcount bump. A hot connection pays ~one syscall per
//! [`pbio_net::frame::MAX_WRITE_BATCH`] frames, not per event.

use std::collections::{HashMap, HashSet, VecDeque};
use std::convert::Infallible;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use pbio::{BufPool, FormatServer};
use pbio_chan::dispatch::{
    DeliveryOutcome, Fanout, FanoutObs, FanoutTraceObs, Subscriber, SubscriptionId,
};
use pbio_chan::filter::{FilterProgram, Predicate};
use pbio_chan::wire::deserialize_predicate;
use pbio_net::buf::WireBuf;
use pbio_net::fault::{FaultLog, FaultPlan, MaybeFaulty};
use pbio_net::frame::{
    write_frames_nonblocking, Frame, FrameDecoder, FrameError, FrameHeader, FRAME_HEADER_SIZE,
    MAX_WRITE_BATCH,
};
use pbio_net::poll::{poller, source_of, Event as PollEvent, Interest, Poller, RawSource, Waker};
use pbio_obs::export::{
    flight_schema, flight_value, hop_schema, hop_value, stats_schema, stats_value, topo_schema,
    topo_value, StatsHeader, TopoChannel, TopoConn, TopoLag, TopoPeer, TopoShard, TopoSnapshot,
    ROLE_DAEMON,
};
use pbio_obs::{
    epoch_ns, Counter, FlightRecorder, Gauge, Histogram, Registry, Span, TraceCtx, TraceHop,
    TraceSink, FL_CONNECT, FL_EVICT, FL_FAULT, FL_PROTO_ERROR, FL_REPAIR, FL_REPLAY_FINISH,
    FL_REPLAY_START, FL_RESUME, FL_SHUTDOWN, FL_TAP_DROP, FL_TAP_ROTATE, FL_TAP_START, FL_TAP_STOP,
    HOP_ENQUEUE, HOP_FLUSH, HOP_INGRESS, HOP_PUBLISH, HOP_RELAY, TRACE_TRAILER_LEN,
};
use pbio_store::{Append, ChannelLog, FlushPolicy, ReplayItem, Store, StoreConfig, FORMAT_RAW};
use pbio_types::arch::ArchProfile;
use pbio_types::layout::Layout;
use pbio_types::value::encode_native_into;

use crate::mesh::{Mesh, MeshConfig, MeshHost, PeerStats};
use crate::protocol::*;
use crate::tap::{TapConfig, TapEntry, TapMode, TapState, CAPTURE_CHANNEL, TAP_IN, TAP_OUT};

/// Upper bound on one reactor poll wait: the cadence of shutdown checks
/// and heartbeat scans when no readiness event arrives sooner.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServConfig {
    /// Maximum events queued per connection before drop-oldest kicks in.
    pub queue_capacity: usize,
    /// Reactor shard count: how many event-loop threads share the
    /// connection population. `0` (the default) sizes from available
    /// parallelism. Each accepted connection is pinned round-robin to one
    /// shard for its lifetime.
    pub shards: usize,
    /// Maximum `subscribe_from` replay streams running concurrently.
    /// Replays walk segment logs on short-lived dedicated threads; past
    /// this bound further `K_SUBSCRIBE_FROM` requests are refused with a
    /// typed [`E_BUSY`] error instead of spawning without limit.
    pub max_replay: usize,
    /// How often the daemon publishes a snapshot of its metric registry
    /// on the reserved [`STATS_CHANNEL`] — as an ordinary PBIO record,
    /// through the same fan-out every other event takes. `None` disables
    /// the publisher thread (one-shot [`K_STATS`] pulls still work).
    pub stats_interval: Option<Duration>,
    /// Distributed-tracing knobs (see [`TraceConfig`]).
    pub trace: TraceConfig,
    /// Idle time on a connection before the daemon probes it with
    /// [`K_PING`]. Any inbound frame counts as liveness, so busy
    /// publishers are never pinged.
    pub heartbeat_ping: Duration,
    /// Idle time before a silent connection is declared dead and
    /// evicted. Must exceed [`ServConfig::heartbeat_ping`] by enough for
    /// a round trip; a peer that answers pings is never evicted.
    pub heartbeat_dead: Duration,
    /// How long a subscriber's outbound queue may sit in continuous
    /// drop-oldest overflow (its writer making no progress) before the
    /// daemon escalates from dropping events to evicting the connection.
    pub stall_budget: Duration,
    /// Deterministic fault injection: wrap every accepted connection in a
    /// [`pbio_net::fault::FaultyStream`] whose plan derives from this
    /// seed and the connection sequence number (the daemon's `--faults
    /// seed=N` mode). `None` — the default — leaves transports
    /// untouched; the wrapper is compiled in but inert.
    pub fault_seed: Option<u64>,
    /// Durable channels: when set, channels opened with the
    /// [`CHAN_DURABLE`] flag append every published event to a
    /// `pbio-store` segment log under [`StoreConfig::dir`], off the
    /// publish hot loop (a dedicated writer thread batches appends and
    /// acks publishers with [`K_PUBLISH_ACK`] once bytes are flushed).
    /// Subscribers replay history with `subscribe_from`. `None` — the
    /// default — disables durability entirely: the publish path takes no
    /// extra allocation or syscall.
    pub durability: Option<StoreConfig>,
    /// Flight-recorder ring capacity: how many recent lifecycle events
    /// (connect/evict/resume, protocol errors, repairs, replays) the
    /// daemon's black box retains for [`K_INSPECT`] and post-mortems.
    pub flight_capacity: usize,
    /// When set, flight events are additionally drained — incrementally,
    /// off the hot path, with every batch fsynced — into a `pbio-store`
    /// segment log under this directory. A killed daemon leaves a
    /// decodable dump (torn tails are CRC-recovered on the next open);
    /// an orderly shutdown flushes the full tail. `None` — the default —
    /// keeps the recorder memory-only.
    pub flight_dump: Option<PathBuf>,
    /// Wire-tap capture plane: when set, frames crossing every
    /// connection are recorded — per [`crate::tap::TapConfig::mode`],
    /// switchable at run time with [`K_TAP_CTL`] — into crash-safe
    /// capture segments under [`crate::tap::TapConfig::dir`]. Bodies
    /// are captured by refcount bump on the outbound path; with the tap
    /// disabled the per-frame cost is one relaxed load. `None` — the
    /// default — compiles the tap points in but leaves them inert, and
    /// makes [`K_TAP_CTL`] a protocol error.
    pub tap: Option<TapConfig>,
    /// Pin each reactor shard thread to its own CPU
    /// (`shard i → cpu i % parallelism`, via raw `sched_setaffinity`)
    /// so per-connection state stops migrating between cores. Pinning
    /// failures are non-fatal: the shard runs unpinned and reports
    /// `cpu = -1` in topology snapshots.
    pub pin_shards: bool,
    /// Daemon federation: when set, this daemon joins a static mesh —
    /// channels shard across members by [`crate::mesh::home_of`], any
    /// daemon accepts any publish and forwards it to the channel's home
    /// over a dialed peer link, and subscribers anywhere receive relayed
    /// events through their local daemon (see [`crate::mesh`]). `None` —
    /// the default — runs a standalone daemon: no links, no `CAP_PEER`
    /// grants, every channel homed locally.
    pub peers: Option<MeshConfig>,
}

impl Default for ServConfig {
    fn default() -> ServConfig {
        ServConfig {
            queue_capacity: 256,
            shards: 0,
            max_replay: 32,
            stats_interval: Some(Duration::from_secs(1)),
            trace: TraceConfig::default(),
            heartbeat_ping: Duration::from_secs(2),
            heartbeat_dead: Duration::from_secs(8),
            stall_budget: Duration::from_secs(2),
            fault_seed: None,
            durability: None,
            flight_capacity: 256,
            flight_dump: None,
            tap: None,
            pin_shards: false,
            peers: None,
        }
    }
}

/// Distributed-tracing knobs.
///
/// The daemon always speaks the trace-trailer extension (it grants
/// [`CAP_TRACE`] to any client that offers it); these knobs govern how
/// much tracing actually happens.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Head-sampling modulus advertised to publishers in the HELLO ack:
    /// clients stamp one publish in `sample_mod` with a trace context.
    /// `0` tells publishers not to sample at all. Changeable at run time
    /// with [`K_TRACE_CTL`] (new sessions see the new value).
    pub sample_mod: u32,
    /// How often completed hop records are drained from the sink and
    /// published on the reserved [`TRACE_CHANNEL`] as self-describing
    /// PBIO records. `None` disables the exporter (hops still accumulate
    /// in the bounded sink and surface via [`ServDaemon::registry`]).
    pub publish_interval: Option<Duration>,
    /// Bounded capacity of the hop sink; oldest hops are evicted when
    /// tracing outpaces the exporter.
    pub sink_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            sample_mod: 64,
            publish_interval: Some(Duration::from_millis(250)),
            sink_capacity: 1024,
        }
    }
}

/// Architecture profile the daemon lays its own stats records out in.
/// Subscribers on other architectures receive them through the ordinary
/// conversion path — the stats channel dogfoods the machinery it measures.
const STATS_PROFILE: &ArchProfile = &ArchProfile::X86_64;

/// A snapshot of the daemon's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServStats {
    /// Connections currently in a session (post-handshake).
    pub active_connections: u64,
    /// Events received from publishers.
    pub events_in: u64,
    /// Event frames written to subscriber sockets.
    pub events_out: u64,
    /// (subscription, event) pairs suppressed by a filter before any
    /// bytes were queued or sent.
    pub filtered_at_source: u64,
    /// Events discarded by the drop-oldest backpressure policy.
    pub dropped: u64,
    /// Frame bytes received (headers + bodies).
    pub bytes_in: u64,
    /// Frame bytes sent (headers + bodies).
    pub bytes_out: u64,
    /// Frames written as part of a coalesced batch of ≥ 2 frames.
    pub frames_batched: u64,
    /// Flush passes issued by reactor shards (each covers a whole
    /// batch; `bytes_out / writes` is the realized batching factor).
    pub writes: u64,
    /// Receive-scratch requests served from the buffer pool.
    pub pool_hits: u64,
    /// Receive-scratch requests that had to allocate.
    pub pool_misses: u64,
    /// Liveness probes ([`K_PING`]) sent to idle connections.
    pub pings: u64,
    /// Connections evicted for answering nothing within the dead budget.
    pub evicted_dead: u64,
    /// Connections evicted because their writer stalled past the stall
    /// budget (escalation beyond drop-oldest).
    pub evicted_stalled: u64,
    /// Sessions resumed under a fresh epoch ([`K_RESUME`] accepted).
    pub resumes: u64,
    /// Resume attempts rejected as stale duplicates ([`E_STALE`]).
    pub resumes_stale: u64,
    /// Inbound frames rejected (oversized or checksum-corrupt) without
    /// killing the session.
    pub frames_rejected: u64,
    /// Reserved-channel (`$stats`/`$trace`/`$topo`) publishes skipped
    /// because the channel had no subscribers — the snapshot was never
    /// even encoded.
    pub stats_suppressed: u64,
}

/// The daemon's metric handles, resolved once from its per-instance
/// [`Registry`]. Hot paths touch only these `Arc`s; [`ServStats`] and the
/// `$stats` channel are both views of the same registry.
struct ServMetrics {
    active_connections: Arc<Gauge>,
    events_in: Arc<Counter>,
    events_out: Arc<Counter>,
    filtered_at_source: Arc<Counter>,
    dropped: Arc<Counter>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    frames_batched: Arc<Counter>,
    writes: Arc<Counter>,
    pings: Arc<Counter>,
    evicted_dead: Arc<Counter>,
    evicted_stalled: Arc<Counter>,
    resumes: Arc<Counter>,
    resumes_stale: Arc<Counter>,
    frames_rejected: Arc<Counter>,
    stats_suppressed: Arc<Counter>,
    /// Time handling one received frame (post-read, dispatch included).
    recv_ns: Arc<Histogram>,
    /// Time in one reactor flush pass over a connection (whole batch).
    send_ns: Arc<Histogram>,
    /// Time fanning one event out to a channel's subscribers.
    fanout_ns: Arc<Histogram>,
    /// Time evaluating one subscriber filter.
    filter_ns: Arc<Histogram>,
}

impl ServMetrics {
    fn resolve(reg: &Registry) -> ServMetrics {
        ServMetrics {
            active_connections: reg.gauge("serv_active_connections"),
            events_in: reg.counter("serv_events_in"),
            events_out: reg.counter("serv_events_out"),
            filtered_at_source: reg.counter("serv_filtered_at_source"),
            dropped: reg.counter("serv_dropped"),
            bytes_in: reg.counter("serv_bytes_in"),
            bytes_out: reg.counter("serv_bytes_out"),
            frames_batched: reg.counter("serv_frames_batched"),
            writes: reg.counter("serv_writes"),
            pings: reg.counter("serv_pings"),
            evicted_dead: reg.counter("serv_evicted_dead"),
            evicted_stalled: reg.counter("serv_evicted_stalled"),
            resumes: reg.counter("serv_resumes"),
            resumes_stale: reg.counter("serv_resumes_stale"),
            frames_rejected: reg.counter("serv_frames_rejected"),
            stats_suppressed: reg.counter("serv_stats_suppressed"),
            recv_ns: reg.histogram("serv_recv_ns"),
            send_ns: reg.histogram("serv_send_ns"),
            fanout_ns: reg.histogram("serv_fanout_ns"),
            filter_ns: reg.histogram("serv_filter_ns"),
        }
    }

    fn snapshot(&self, pool: &BufPool) -> ServStats {
        let pool = pool.stats();
        ServStats {
            active_connections: u64::try_from(self.active_connections.get()).unwrap_or(0),
            events_in: self.events_in.get(),
            events_out: self.events_out.get(),
            filtered_at_source: self.filtered_at_source.get(),
            dropped: self.dropped.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
            frames_batched: self.frames_batched.get(),
            writes: self.writes.get(),
            pool_hits: pool.hits,
            pool_misses: pool.misses,
            pings: self.pings.get(),
            evicted_dead: self.evicted_dead.get(),
            evicted_stalled: self.evicted_stalled.get(),
            resumes: self.resumes.get(),
            resumes_stale: self.resumes_stale.get(),
            frames_rejected: self.frames_rejected.get(),
            stats_suppressed: self.stats_suppressed.get(),
        }
    }
}

/// Resolve [`ServConfig::shards`]: an explicit count is honored (capped
/// at 64); `0` sizes from available parallelism, clamped to a small
/// range — reactors are I/O-bound, so a handful saturates loopback.
fn effective_shards(config: &ServConfig) -> usize {
    if config.shards > 0 {
        return config.shards.min(64);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(1, 8)
}

/// One reactor shard's metric handles, labeled `shard=<index>` so the
/// `$stats` channel (and `pbio-stats`) can attribute load per event loop.
struct ShardMetrics {
    /// Poll returns (readiness events, waker nudges, or timeout ticks).
    wakeups: Arc<Counter>,
    /// Inbound frames dispatched per wakeup (batching on the read side).
    frames_per_wakeup: Arc<Histogram>,
    /// Readiness events reported per wakeup (ready-queue depth).
    ready_depth: Arc<Histogram>,
    /// Flush passes that hit `WouldBlock` mid-batch and parked a
    /// partial-write cursor for resumption.
    writev_partials: Arc<Counter>,
    /// Connections currently owned by this shard (topology gauge).
    conns: Arc<Gauge>,
    /// Ready fds reported by the most recent poll wakeup (topology gauge).
    ready: Arc<Gauge>,
}

impl ShardMetrics {
    fn resolve(reg: &Registry, shard: usize) -> ShardMetrics {
        let v = shard.to_string();
        ShardMetrics {
            wakeups: reg.counter_labeled("serv_shard_wakeups", "shard", &v),
            frames_per_wakeup: reg.histogram_labeled("serv_shard_frames_per_wakeup", "shard", &v),
            ready_depth: reg.histogram_labeled("serv_shard_ready_depth", "shard", &v),
            writev_partials: reg.counter_labeled("serv_shard_writev_partials", "shard", &v),
            conns: reg.gauge_labeled("serv_shard_conns", "shard", &v),
            ready: reg.gauge_labeled("serv_shard_ready", "shard", &v),
        }
    }
}

/// The topology-snapshot view of one shard's load: the same registry
/// handles [`ShardMetrics`] records through, resolved a second time (by
/// name, so they alias) for [`State::capture`] to read without strings.
struct ShardLoad {
    conns: Arc<Gauge>,
    ready: Arc<Gauge>,
    wakeups: Arc<Counter>,
}

// ---------------------------------------------------------------------------
// Outbound queue: bounded for events, unbounded for control frames.

struct OutboundQ {
    /// Queued frames, each with the trace context it carries (if any) so
    /// the flushing reactor can stamp a `flush` hop when it actually hits
    /// the socket.
    frames: VecDeque<(Frame, Option<TraceCtx>)>,
    events: usize,
    closed: bool,
    /// When the queue first overflowed into drop-oldest with no flush
    /// progress since; cleared every time the reactor drains frames. A
    /// queue that stays in this state past the stall budget marks a
    /// connection that has stopped moving — dropping events can't help,
    /// so the connection is escalated to eviction.
    stalled_since: Option<Instant>,
}

struct Outbound {
    q: Mutex<OutboundQ>,
    capacity: usize,
    stall_budget: Duration,
}

/// What [`Outbound::try_pop_batch`] found.
enum Drained {
    /// At least one frame was moved into the caller's batch.
    Got,
    /// Nothing queued right now; the queue is still open.
    Empty,
    /// Closed *and* drained: no frame will ever appear again.
    Done,
}

enum Enqueue {
    Sent,
    DroppedOldest,
    Closed,
    /// The queue has been in continuous overflow for longer than the
    /// stall budget: the peer's writer is not draining at all and the
    /// connection should be evicted, not fed.
    Stalled,
}

impl Outbound {
    fn new(capacity: usize, stall_budget: Duration) -> Outbound {
        Outbound {
            q: Mutex::new(OutboundQ {
                frames: VecDeque::new(),
                events: 0,
                closed: false,
                stalled_since: None,
            }),
            capacity: capacity.max(1),
            stall_budget,
        }
    }

    /// Queue a frame for the owning reactor to flush. Control frames
    /// always fit; when the event budget is exhausted the *oldest queued
    /// event* is discarded to admit the new one (fresh data beats stale
    /// data for monitoring-style consumers).
    #[cfg(test)]
    fn send(&self, frame: Frame) -> Enqueue {
        self.send_traced(frame, None)
    }

    /// Enqueue with the trace context the frame carries, so the flushing
    /// reactor can attribute its socket flush to the trace. Callers go
    /// through [`ConnShared::send`], which adds the reactor wakeup.
    fn send_traced(&self, frame: Frame, trace: Option<TraceCtx>) -> Enqueue {
        let mut q = self.q.lock().unwrap_or_else(|p| p.into_inner());
        if q.closed {
            return Enqueue::Closed;
        }
        let is_event = frame.kind == K_EVENT;
        let mut outcome = Enqueue::Sent;
        if is_event && q.events >= self.capacity {
            match q.stalled_since {
                Some(t) if t.elapsed() >= self.stall_budget => return Enqueue::Stalled,
                Some(_) => {}
                None => q.stalled_since = Some(Instant::now()),
            }
            if let Some(i) = q.frames.iter().position(|(f, _)| f.kind == K_EVENT) {
                q.frames.remove(i);
                q.events -= 1;
                outcome = Enqueue::DroppedOldest;
            }
        }
        if is_event {
            q.events += 1;
        }
        q.frames.push_back((frame, trace));
        outcome
    }

    fn close(&self) {
        let mut q = self.q.lock().unwrap_or_else(|p| p.into_inner());
        q.closed = true;
    }

    /// Events currently queued. Replay threads pace themselves on this
    /// so streamed history never lands in drop-oldest territory — a
    /// dropped replay frame would be silent loss of the very records a
    /// durable subscriber asked for.
    fn event_backlog(&self) -> usize {
        self.q.lock().unwrap_or_else(|p| p.into_inner()).events
    }

    /// Next frame to write, if any; `None` covers both "empty for now"
    /// and "closed and drained".
    #[cfg(test)]
    fn pop(&self) -> Option<Frame> {
        let mut batch = Vec::with_capacity(1);
        let mut traces = Vec::with_capacity(1);
        match self.try_pop_batch(&mut batch, &mut traces, 1) {
            Drained::Got => batch.pop(),
            _ => None,
        }
    }

    /// Move up to `max` queued frames into `out` (trace contexts into the
    /// parallel `traces`) without blocking. Everything already queued
    /// when the reactor flushes goes out in one batch — the coalescing
    /// that turns a hot channel's frame-per-event stream into ~one
    /// syscall per batch. [`Drained::Done`] only after close *and* drain,
    /// so already-queued acks still reach the peer after a graceful
    /// close.
    fn try_pop_batch(
        &self,
        out: &mut Vec<Frame>,
        traces: &mut Vec<Option<TraceCtx>>,
        max: usize,
    ) -> Drained {
        let mut q = self.q.lock().unwrap_or_else(|p| p.into_inner());
        if q.frames.is_empty() {
            return if q.closed {
                Drained::Done
            } else {
                Drained::Empty
            };
        }
        // The reactor is draining: whatever overflow episode was in
        // progress ends here.
        q.stalled_since = None;
        while out.len() < max {
            let Some((f, t)) = q.frames.pop_front() else {
                break;
            };
            if f.kind == K_EVENT {
                q.events -= 1;
            }
            out.push(f);
            traces.push(t);
        }
        Drained::Got
    }
}

// ---------------------------------------------------------------------------
// Store queue: publish hot loop → dedicated append thread.

/// One event headed for the segment log, queued by the publish path and
/// drained in batches by the store writer thread.
struct AppendReq {
    log: Arc<ChannelLog>,
    chan: u32,
    offset: u64,
    format: u32,
    /// The record's NDR bytes, trailer-free (a window on the same shared
    /// buffer the fan-out uses — queueing for disk is a refcount bump).
    payload: WireBuf,
    /// The publisher, for the [`K_PUBLISH_ACK`] once bytes are on disk.
    conn: Weak<ConnShared>,
}

/// Bounded handoff between publish threads and the store writer. Pushes
/// block when the writer falls `capacity` requests behind — durability
/// backpressure, in place of silently widening the ack window.
struct StoreQueue {
    q: Mutex<(VecDeque<AppendReq>, bool)>,
    ready: Condvar,
    space: Condvar,
    capacity: usize,
}

impl StoreQueue {
    fn new(capacity: usize) -> StoreQueue {
        StoreQueue {
            q: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn push(&self, req: AppendReq) {
        let mut q = self.q.lock().unwrap_or_else(|p| p.into_inner());
        while q.0.len() >= self.capacity && !q.1 {
            q = self.space.wait(q).unwrap_or_else(|p| p.into_inner());
        }
        if q.1 {
            return;
        }
        q.0.push_back(req);
        drop(q);
        self.ready.notify_one();
    }

    /// Blocks until at least one request is queued; `false` once closed
    /// *and* drained (every accepted append still reaches disk on
    /// graceful shutdown).
    fn pop_batch(&self, out: &mut Vec<AppendReq>, max: usize) -> bool {
        let mut q = self.q.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if !q.0.is_empty() {
                while out.len() < max {
                    let Some(r) = q.0.pop_front() else { break };
                    out.push(r);
                }
                drop(q);
                self.space.notify_all();
                return true;
            }
            if q.1 {
                return false;
            }
            q = self.ready.wait(q).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn close(&self) {
        let mut q = self.q.lock().unwrap_or_else(|p| p.into_inner());
        q.1 = true;
        drop(q);
        self.ready.notify_all();
        self.space.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Flight dump: recorder → crash-safe segment log.

/// The flight recorder's on-disk tail: its own `pbio-store` channel log
/// (flushed every batch, so a killed daemon leaves a decodable prefix and
/// CRC recovery handles the torn tail), plus the drain cursor and the
/// flight record's registered layout. Drained by the background thread
/// each tick and once more at orderly shutdown.
struct FlightSink {
    log: Arc<ChannelLog>,
    /// Keeps the dump's store (and its flush policy) alive.
    _store: Store,
    format: u32,
    layout: Arc<Layout>,
    /// Next recorder generation to drain ([`FlightRecorder::drain_since`]).
    cursor: u64,
}

// ---------------------------------------------------------------------------
// Wire tap: capture ring → crash-safe segment log.

/// The tap's on-disk half, mirroring [`FlightSink`]: a dedicated
/// `pbio-store` channel log (flushed every batch, torn tails CRC-recovered
/// on reopen) that the background thread drains captured frames into.
/// Records are opaque capture bytes, appended under [`FORMAT_RAW`].
struct TapSink {
    log: Arc<ChannelLog>,
    /// Keeps the capture store (and its flush policy) alive.
    _store: Store,
    /// Encode scratch, reused across drains.
    scratch: Vec<TapEntry>,
    /// Segment count at the last drain, to spot rotations.
    segments: usize,
    /// Drop counter at the last drain, to report overflow once per leap.
    dropped_seen: u64,
}

// ---------------------------------------------------------------------------
// Per-connection shared state and the remote subscriber.

/// A snapshot of one connection's writer-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Daemon-assigned connection id (echoed in the HELLO ack).
    pub conn: u32,
    /// Frame bytes written to this connection (headers + bodies).
    pub bytes_sent: u64,
    /// Frames written to this connection.
    pub frames_sent: u64,
    /// Frames that went out as part of a coalesced batch of ≥ 2.
    pub frames_batched: u64,
    /// Vectored writes issued for this connection.
    pub writes: u64,
}

#[derive(Default)]
struct ConnCounters {
    bytes_sent: AtomicU64,
    frames_sent: AtomicU64,
    frames_batched: AtomicU64,
    writes: AtomicU64,
    /// Frames (either direction) captured by the wire tap.
    frames_tapped: AtomicU64,
}

/// One socket, many roles: the reactor's read wrapper, its write wrapper
/// and the eviction handle in [`ConnShared`] all hold the same
/// `TcpStream` (whose I/O methods take `&self`), so a connection costs
/// exactly one fd. `O_NONBLOCK` is set once, before the shares are made.
struct SharedTcp(Arc<TcpStream>);

impl io::Read for SharedTcp {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(&mut &*self.0, buf)
    }
}

impl io::Write for SharedTcp {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        io::Write::write(&mut &*self.0, buf)
    }

    fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        io::Write::write_vectored(&mut &*self.0, bufs)
    }

    fn flush(&mut self) -> io::Result<()> {
        io::Write::flush(&mut &*self.0)
    }
}

impl std::os::fd::AsRawFd for SharedTcp {
    fn as_raw_fd(&self) -> std::os::fd::RawFd {
        std::os::fd::AsRawFd::as_raw_fd(&*self.0)
    }
}

struct ConnShared {
    id: u32,
    outbound: Outbound,
    /// Format ids already announced on this connection.
    announced: Mutex<HashSet<u32>>,
    alive: AtomicBool,
    counters: ConnCounters,
    /// Capability bits granted in the HELLO ack ([`CAP_TRACE`]…), `0`
    /// until the handshake completes. Only capable subscribers receive
    /// events with the trace trailer flagged.
    caps: AtomicU32,
    /// A handle on the connection's socket, for forced eviction: a
    /// shutdown here surfaces as a readiness event on the owning reactor
    /// (the poll reports the severed fd), which closing the queue alone
    /// cannot do.
    raw: Mutex<Option<Arc<TcpStream>>>,
    /// Live subscriptions registered *by replay threads* at their
    /// replay→live handoff (`K_SUBSCRIBE_FROM`). The owning reactor
    /// cannot own these — it never sees them created — so teardown
    /// drains this list instead.
    durable_subs: Mutex<Vec<(u32, SubscriptionId)>>,
    /// The reactor shard this connection is pinned to, for flush nudges.
    shard: Arc<ShardHandle>,
    /// Index of that shard, for topology snapshots.
    shard_idx: u32,
    /// [`epoch_ns`] of the last wakeup that read inbound frames off this
    /// connection — a relaxed store per read batch, read by
    /// [`State::capture`].
    last_active_ns: AtomicU64,
    /// True while a [`ShardMsg::Writable`] nudge for this connection is
    /// in flight, so N queued frames cost one cross-thread message, not
    /// N. Cleared by the reactor when it processes the nudge — *before*
    /// draining the queue, so a send racing the drain can never be lost.
    write_queued: AtomicBool,
}

impl ConnShared {
    /// Force the connection down from outside its owning reactor: stop
    /// the fan-out feeding it and sever the socket so the reactor
    /// observes the end promptly (as a readiness event). Idempotent.
    fn evict(&self) {
        self.alive.store(false, Ordering::Relaxed);
        self.outbound.close();
        let mut raw = self.raw.lock().unwrap_or_else(|p| p.into_inner());
        // The shutdown (not the drop) is what the peer observes: it
        // severs the shared socket for every holder at once, so the peer
        // sees EOF and starts reconnecting even while the owning reactor
        // still holds its wrappers. Taking the handle out makes repeat
        // evictions free and releases this clone's refcount.
        if let Some(s) = raw.take() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    fn caps(&self) -> u32 {
        self.caps.load(Ordering::Relaxed)
    }

    /// Queue a frame and nudge the owning reactor to flush it.
    fn send(&self, frame: Frame) -> Enqueue {
        self.send_traced(frame, None)
    }

    /// [`ConnShared::send`] with the trace context the frame carries.
    fn send_traced(&self, frame: Frame, trace: Option<TraceCtx>) -> Enqueue {
        let outcome = self.outbound.send_traced(frame, trace);
        if matches!(outcome, Enqueue::Sent | Enqueue::DroppedOldest) {
            self.notify_writable();
        }
        outcome
    }

    /// Tell the owning reactor this connection has frames to flush —
    /// deduplicated, so a burst of sends costs one message and one wake.
    fn notify_writable(&self) {
        if !self.write_queued.swap(true, Ordering::AcqRel) {
            self.shard.notify(ShardMsg::Writable(self.id));
        }
    }

    fn stats(&self) -> ConnStats {
        ConnStats {
            conn: self.id,
            bytes_sent: self.counters.bytes_sent.load(Ordering::Relaxed),
            frames_sent: self.counters.frames_sent.load(Ordering::Relaxed),
            frames_batched: self.counters.frames_batched.load(Ordering::Relaxed),
            writes: self.counters.writes.load(Ordering::Relaxed),
        }
    }
}

/// A subscription as seen by a channel's [`Fanout`]: the filter decision
/// plus "enqueue the untouched wire bytes on the connection".
struct RemoteSubscriber {
    conn: Arc<ConnShared>,
    channel: u32,
    predicate: Option<Predicate>,
    /// Filter compiled per publisher wire format, lazily. `None` records
    /// a format the predicate cannot be compiled against (e.g. it names a
    /// field that format lacks): such events can never satisfy the
    /// predicate, so they are rejected.
    compiled: HashMap<u32, Option<FilterProgram>>,
    formats: Arc<FormatServer>,
    /// Hop sink shared with every other tracing stage.
    sink: Arc<TraceSink>,
    /// This channel's labeled hop histograms.
    hops: Option<Arc<ChanHops>>,
    /// Stall-escalation counter, bumped when this subscriber's queue
    /// overflow outlives the stall budget and the connection is evicted.
    evicted_stalled: Arc<Counter>,
    /// Consumer-lag watermark on durable channels: events delivered to
    /// this subscriber (equivalently the next offset due), advanced with
    /// a relaxed `fetch_max` per delivered event and read by the `$stats`
    /// lag gauges and topology snapshots. `None` on non-durable channels.
    /// Events a subscriber's own filter suppresses are *not* delivered,
    /// so a filtering durable subscriber legitimately shows lag.
    delivered: Option<Arc<AtomicU64>>,
}

impl Subscriber for RemoteSubscriber {
    type Error = Infallible;

    fn accepts(&mut self, format: u32, wire: &[u8]) -> Result<bool, Infallible> {
        // Durable channels publish with the offset bit riding on the
        // format argument; the filter wants the bare format id.
        let format = format & !OFFSET_FLAG;
        if !self.conn.alive.load(Ordering::Relaxed) {
            return Ok(false);
        }
        let RemoteSubscriber {
            predicate,
            compiled,
            formats,
            ..
        } = self;
        let Some(pred) = predicate else {
            return Ok(true);
        };
        let prog = compiled.entry(format).or_insert_with(|| {
            formats
                .lookup(format)
                .and_then(|layout| FilterProgram::compile(pred.clone(), layout).ok())
        });
        match prog {
            Some(p) => Ok(p.matches(wire).unwrap_or(false)),
            None => Ok(false),
        }
    }

    fn deliver(
        &mut self,
        format: u32,
        wire: &WireBuf,
        trace: Option<&TraceCtx>,
    ) -> Result<DeliveryOutcome, Infallible> {
        let has_offset = format & OFFSET_FLAG != 0;
        let format = format & !OFFSET_FLAG;
        // Announce the format once per connection, strictly before its
        // first event; the lock spans both enqueues so a concurrent
        // publisher on another channel cannot interleave.
        let mut ann = self
            .conn
            .announced
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        if !ann.contains(&format) {
            if let Some(meta) = self.formats.meta(format) {
                // The registry's metadata is already shared storage.
                self.conn
                    .send(Frame::with_body(K_ANNOUNCE, format, 0, WireBuf::from(meta)));
                ann.insert(format);
            }
        }
        // The body may end in up to two trailers — the publisher's trace
        // trailer, then (outermost, on durable channels) the daemon's
        // offset stamp. Each subscriber receives exactly the trailers its
        // negotiated capabilities cover, with the flags to match; for
        // capability-less clients both are sliced off (window adjustments
        // on the shared buffer, no bytes move) so their frames are
        // byte-identical to an old daemon's. The one combination that
        // cannot be expressed as a suffix slice — offset without the
        // trace trailer sandwiched under it — pays a copy; it only
        // occurs for a durable subscriber on a pre-tracing client.
        let caps = self.conn.caps();
        let want_trace = trace.is_some() && caps & CAP_TRACE != 0;
        let want_offset = has_offset && caps & CAP_DURABLE != 0;
        let trace_len = if trace.is_some() {
            TRACE_TRAILER_LEN
        } else {
            0
        };
        let off_len = if has_offset { OFFSET_TRAILER_LEN } else { 0 };
        let (b, body) = match (want_trace, want_offset) {
            (true, true) => (format | TRACE_FLAG | OFFSET_FLAG, wire.clone()),
            (true, false) => (format | TRACE_FLAG, wire.slice(0, wire.len() - off_len)),
            (false, false) => (format, wire.slice(0, wire.len() - trace_len - off_len)),
            (false, true) if trace_len == 0 => (format | OFFSET_FLAG, wire.clone()),
            (false, true) => {
                let n = wire.len();
                let mut v = Vec::with_capacity(n - trace_len);
                v.extend_from_slice(&wire[..n - trace_len - off_len]);
                v.extend_from_slice(&wire[n - off_len..]);
                (format | OFFSET_FLAG, WireBuf::from(v))
            }
        };
        // Per-subscriber cost of an event: one refcount bump.
        let outcome = self.conn.send_traced(
            Frame::with_body(K_EVENT, self.channel, b, body),
            trace.copied(),
        );
        drop(ann);
        // Advance the lag watermark once the event is actually queued
        // (drop-oldest admitted this event at an older one's expense, so
        // it counts; a closed or stalled queue delivered nothing). The
        // offset rides the outermost trailer of the shared buffer.
        if has_offset && matches!(outcome, Enqueue::Sent | Enqueue::DroppedOldest) {
            if let Some(d) = &self.delivered {
                let n = wire.len();
                if let Ok(tail) =
                    <[u8; OFFSET_TRAILER_LEN]>::try_from(&wire[n - OFFSET_TRAILER_LEN..])
                {
                    // fetch_max: replay handoff and live delivery may race.
                    d.fetch_max(u64::from_be_bytes(tail) + 1, Ordering::Relaxed);
                }
            }
        }
        if let Some(ctx) = trace {
            let t = epoch_ns();
            let dur = t.saturating_sub(ctx.origin_ns);
            if let Some(h) = &self.hops {
                h.enqueue_ns.record(dur);
            }
            self.sink.push(TraceHop {
                trace_id: ctx.trace_id,
                span_id: ctx.span_id,
                hop: HOP_ENQUEUE,
                conn: self.conn.id,
                channel: self.channel,
                t_ns: t,
                dur_ns: dur,
            });
        }
        Ok(match outcome {
            Enqueue::Sent => DeliveryOutcome::Delivered,
            // The new event was admitted but an older one was discarded;
            // report the discard so it lands in the drop counters.
            Enqueue::DroppedOldest => DeliveryOutcome::Dropped,
            Enqueue::Closed => DeliveryOutcome::Dropped,
            // Dropping has not freed the queue for a full stall budget:
            // the writer is wedged, so degrade gracefully by cutting the
            // connection loose instead of shoveling into a dead queue.
            Enqueue::Stalled => {
                self.evicted_stalled.inc();
                self.conn.evict();
                DeliveryOutcome::Dropped
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Daemon state.

struct Channels {
    by_name: HashMap<String, u32>,
    by_id: HashMap<u32, Arc<Mutex<Fanout<RemoteSubscriber>>>>,
    /// id → name, shared so the mesh forward path labels work without
    /// re-allocating the name per publish.
    name_by_id: HashMap<u32, Arc<str>>,
    /// id → home daemon's mesh index (this daemon's own index for local
    /// and reserved channels; 0 when no mesh is configured).
    home_by_id: HashMap<u32, u32>,
    next: u32,
}

/// One channel's labeled per-hop latency histograms, resolved once when
/// the channel is opened — the hot path records through `Arc`s and never
/// composes a label string.
struct ChanHops {
    /// `hop_ingress_ns{chan=…}`: publish stamp → daemon receipt.
    ingress_ns: Arc<Histogram>,
    /// `hop_enqueue_ns{chan=…}`: publish stamp → subscriber queue.
    enqueue_ns: Arc<Histogram>,
    /// `hop_flush_ns{chan=…}`: publish stamp → subscriber socket write.
    flush_ns: Arc<Histogram>,
}

/// One client identity's resume registration: the highest epoch seen and
/// the connection currently holding it.
struct Session {
    epoch: u32,
    conn: Weak<ConnShared>,
}

struct State {
    formats: Arc<FormatServer>,
    channels: Mutex<Channels>,
    /// Per-daemon metric registry; the source of [`ServStats`] and of the
    /// snapshots published on [`STATS_CHANNEL`].
    registry: Arc<Registry>,
    metrics: ServMetrics,
    shutdown: AtomicBool,
    queue_capacity: usize,
    heartbeat_ping: Duration,
    heartbeat_dead: Duration,
    stall_budget: Duration,
    /// Seed for per-connection fault plans (`None` = transparent).
    fault_seed: Option<u64>,
    /// Resume registry: client identity → highest epoch + its connection.
    /// Entries outlive connections (and daemon restarts start empty, so a
    /// replayed resume after restart simply registers fresh).
    sessions: Mutex<HashMap<u64, Session>>,
    next_conn: AtomicU64,
    /// Receive-scratch pool, shared by every connection's read loop.
    pool: Arc<BufPool>,
    /// Live connections, for per-connection stats.
    conns: Mutex<Vec<Weak<ConnShared>>>,
    /// Sequence number stamped into stats records.
    stats_seq: AtomicU64,
    /// Channel id of the pre-opened [`STATS_CHANNEL`].
    stats_channel: u32,
    /// Channel id of the pre-opened [`TRACE_CHANNEL`].
    trace_channel: u32,
    /// Channel id of the pre-opened [`TOPO_CHANNEL`].
    topo_channel: u32,
    /// Head-sampling modulus advertised to publishers (0 = off); swapped
    /// at run time by [`K_TRACE_CTL`].
    trace_mod: AtomicU32,
    /// Hop records from every tracing stage, bounded; drained by the
    /// background exporter onto [`TRACE_CHANNEL`].
    hops: Arc<TraceSink>,
    /// Per-channel hop histograms, resolved at channel open.
    chan_hops: Mutex<HashMap<u32, Arc<ChanHops>>>,
    /// The hop record's registered `(format id, layout)`, registered on
    /// first export.
    trace_format: OnceLock<Option<(u32, Arc<Layout>)>>,
    /// The topology record's `(format id, layout)` — fixed columnar
    /// schema, so one registration serves the daemon's lifetime.
    topo_format: OnceLock<Option<(u32, Arc<Layout>)>>,
    /// The daemon's black box: bounded lock-free ring of lifecycle
    /// events, served through [`K_INSPECT`] and dumped via `flight_sink`.
    flight: Arc<FlightRecorder>,
    /// Crash-safe flight dump: a dedicated segment log (fsync per batch)
    /// the recorder drains into incrementally. `None` when
    /// [`ServConfig::flight_dump`] is unset.
    flight_sink: Option<Mutex<FlightSink>>,
    /// The wire tap's in-memory half: runtime mode switch + bounded
    /// capture ring, consulted (one relaxed load) on every frame both
    /// directions. `None` when [`ServConfig::tap`] is unset — then
    /// [`K_TAP_CTL`] is a protocol error and the tap points are inert.
    tap: Option<Arc<TapState>>,
    /// The tap's on-disk half: the capture segment log the background
    /// thread drains the ring into (fsync per batch, like the flight
    /// dump). Present iff `tap` is.
    tap_sink: Option<Mutex<TapSink>>,
    /// Per-shard load gauges, indexed by shard, read by topology capture.
    shard_load: Vec<ShardLoad>,
    /// CPU each reactor shard is pinned to (`-1` = unpinned), written by
    /// the shard thread at startup, read by topology capture.
    shard_cpus: Vec<AtomicI64>,
    /// Durable consumer-lag watermarks: `(channel, conn)` → events
    /// delivered. Entries are created at subscribe time and dropped with
    /// the connection.
    lags: Mutex<HashMap<(u32, u32), Arc<AtomicU64>>>,
    /// The segment-log store behind durable channels (`None` = durability
    /// disabled; the publish path then skips every store branch on one
    /// `Option` check).
    store: Option<Arc<Store>>,
    /// Channel id → its segment log, for channels opened [`CHAN_DURABLE`].
    logs: Mutex<HashMap<u32, Arc<ChannelLog>>>,
    /// Publish → store-writer handoff (present but idle when `store` is
    /// `None`).
    store_q: Arc<StoreQueue>,
    /// Replay threads spawned for `K_SUBSCRIBE_FROM`, joined at shutdown.
    replay_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Concurrency bound on those replay threads ([`ServConfig::max_replay`]).
    max_replay: usize,
    /// Replay threads currently running; a `K_SUBSCRIBE_FROM` that would
    /// push this past `max_replay` is refused with [`E_BUSY`].
    active_replays: AtomicUsize,
    /// Daemon federation state ([`ServConfig::peers`]): membership, the
    /// shard map, and one dialed link per peer. `None` = standalone.
    mesh: Option<Arc<Mesh>>,
}

impl State {
    fn new(config: &ServConfig) -> io::Result<State> {
        let registry = Arc::new(Registry::new());
        let metrics = ServMetrics::resolve(&registry);
        let pool = BufPool::new();
        // Adopt the pool's own counters: one set of books, read through.
        registry.register_counter("pool_hits", pool.hit_counter().clone());
        registry.register_counter("pool_misses", pool.miss_counter().clone());
        let formats = FormatServer::new();
        let flight = Arc::new(FlightRecorder::new(config.flight_capacity));
        if let Some(seed) = config.fault_seed {
            flight.record(FL_FAULT, 0, 0, 0, seed);
        }
        let store = match &config.durability {
            Some(cfg) => {
                let store = Store::open(cfg.clone())?;
                // Adopt the store's counters too: durability shows up on
                // the `$stats` channel (and in `pbio-stats`) for free.
                store.metrics().register(&registry);
                // Crash recovery already ran channel-by-channel inside
                // open; torn tails it truncated are flight-worthy.
                let torn = store.metrics().torn_tails.get();
                if torn > 0 {
                    flight.record(FL_REPAIR, 0, 0, 0, torn);
                }
                Some(Arc::new(store))
            }
            None => None,
        };
        let flight_sink = match &config.flight_dump {
            Some(dir) => {
                let mut cfg = StoreConfig::new(dir.clone());
                // Every drained batch is fsynced: the dump's whole point
                // is surviving an unclean death.
                cfg.flush = FlushPolicy::EveryBatch;
                let fstore = Store::open(cfg)?;
                let log = fstore.channel("flight")?;
                let layout = Layout::of(&flight_schema(), STATS_PROFILE)
                    .map_err(|e| io::Error::other(format!("flight record layout: {e}")))?;
                let layout = Arc::new(layout);
                let (format, _, _) = formats.register(&layout);
                Some(Mutex::new(FlightSink {
                    log,
                    _store: fstore,
                    format,
                    layout,
                    cursor: 0,
                }))
            }
            None => None,
        };
        let (tap, tap_sink) = match &config.tap {
            Some(cfg) => {
                let mut scfg = StoreConfig::new(cfg.dir.clone());
                // Same contract as the flight dump: a killed daemon must
                // leave a decodable capture, so every batch is fsynced.
                scfg.flush = FlushPolicy::EveryBatch;
                let tstore = Store::open(scfg)?;
                let log = tstore.channel(CAPTURE_CHANNEL)?;
                let state = Arc::new(TapState::new(cfg.mode, cfg.ring_capacity));
                if cfg.mode != TapMode::Off {
                    let (mode, param) = cfg.mode.to_wire();
                    flight.record(FL_TAP_START, 0, 0, mode, u64::from(param));
                }
                let sink = TapSink {
                    segments: log.segment_count(),
                    log,
                    _store: tstore,
                    scratch: Vec::new(),
                    dropped_seen: 0,
                };
                (Some(state), Some(Mutex::new(sink)))
            }
            None => (None, None),
        };
        let shard_cpus = (0..effective_shards(config))
            .map(|_| AtomicI64::new(-1))
            .collect();
        let shard_load = (0..effective_shards(config))
            .map(|i| {
                let v = i.to_string();
                ShardLoad {
                    conns: registry.gauge_labeled("serv_shard_conns", "shard", &v),
                    ready: registry.gauge_labeled("serv_shard_ready", "shard", &v),
                    wakeups: registry.counter_labeled("serv_shard_wakeups", "shard", &v),
                }
            })
            .collect();
        let mesh = config
            .peers
            .as_ref()
            .map(|m| Arc::new(Mesh::new(m.index, m.size)));
        let mut state = State {
            formats,
            channels: Mutex::new(Channels {
                by_name: HashMap::new(),
                by_id: HashMap::new(),
                name_by_id: HashMap::new(),
                home_by_id: HashMap::new(),
                next: 0,
            }),
            registry,
            metrics,
            shutdown: AtomicBool::new(false),
            queue_capacity: config.queue_capacity,
            heartbeat_ping: config.heartbeat_ping,
            heartbeat_dead: config.heartbeat_dead,
            stall_budget: config.stall_budget,
            fault_seed: config.fault_seed,
            sessions: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            pool,
            conns: Mutex::new(Vec::new()),
            stats_seq: AtomicU64::new(0),
            stats_channel: 0,
            trace_channel: 0,
            topo_channel: 0,
            trace_mod: AtomicU32::new(config.trace.sample_mod),
            hops: Arc::new(TraceSink::new(config.trace.sink_capacity)),
            chan_hops: Mutex::new(HashMap::new()),
            trace_format: OnceLock::new(),
            topo_format: OnceLock::new(),
            flight,
            flight_sink,
            tap,
            tap_sink,
            shard_load,
            shard_cpus,
            lags: Mutex::new(HashMap::new()),
            store,
            logs: Mutex::new(HashMap::new()),
            store_q: Arc::new(StoreQueue::new(4096)),
            replay_threads: Mutex::new(Vec::new()),
            max_replay: config.max_replay.max(1),
            active_replays: AtomicUsize::new(0),
            mesh,
        };
        state.stats_channel = state.open_channel(STATS_CHANNEL);
        state.trace_channel = state.open_channel(TRACE_CHANNEL);
        state.topo_channel = state.open_channel(TOPO_CHANNEL);
        Ok(state)
    }

    fn track(&self, conn: &Arc<ConnShared>) {
        let mut conns = self.conns.lock().unwrap_or_else(|p| p.into_inner());
        conns.retain(|w| w.strong_count() > 0);
        conns.push(Arc::downgrade(conn));
    }

    fn open_channel(&self, name: &str) -> u32 {
        // Non-durable open cannot fail.
        self.open_channel_flags(name, 0).unwrap()
    }

    /// Create-or-open `name`; [`CHAN_DURABLE`] in `flags` additionally
    /// attaches the channel to its segment log (creating it, running
    /// crash recovery if it already exists on disk). Durability is
    /// sticky: once any opener passed the flag, later plain opens of the
    /// same name share the durable channel.
    fn open_channel_flags(&self, name: &str, flags: u32) -> Result<u32, String> {
        let id = self.open_channel_inner(name);
        if flags & CHAN_DURABLE != 0 {
            let Some(store) = &self.store else {
                return Err(format!(
                    "channel {name:?} requested durability, but this daemon has no store configured"
                ));
            };
            let mut logs = self.logs.lock().unwrap_or_else(|p| p.into_inner());
            if let std::collections::hash_map::Entry::Vacant(e) = logs.entry(id) {
                let log = store
                    .channel(name)
                    .map_err(|e| format!("opening segment log for {name:?}: {e}"))?;
                e.insert(log);
            }
        }
        Ok(id)
    }

    /// The segment log for channel `id`, if it was opened durable.
    fn log(&self, id: u32) -> Option<Arc<ChannelLog>> {
        self.logs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&id)
            .cloned()
    }

    fn open_channel_inner(&self, name: &str) -> u32 {
        let mut chans = self.channels.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(&id) = chans.by_name.get(name) {
            return id;
        }
        let id = chans.next;
        chans.next += 1;
        let mut fanout = Fanout::new();
        fanout.set_obs(FanoutObs {
            fanout_ns: self.metrics.fanout_ns.clone(),
            filter_ns: self.metrics.filter_ns.clone(),
            dropped: self.metrics.dropped.clone(),
            trace: Some(FanoutTraceObs {
                sink: self.hops.clone(),
                channel: id,
                hop_filter_ns: self
                    .registry
                    .histogram_labeled("hop_filter_ns", "chan", name),
            }),
        });
        chans.by_name.insert(name.to_owned(), id);
        chans.by_id.insert(id, Arc::new(Mutex::new(fanout)));
        chans.name_by_id.insert(id, Arc::from(name));
        chans
            .home_by_id
            .insert(id, self.mesh.as_ref().map_or(0, |m| m.home(name)));
        // Label the per-hop histograms once, here: the publish, enqueue
        // and flush paths record through these `Arc`s without ever
        // touching a string.
        self.chan_hops
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(
                id,
                Arc::new(ChanHops {
                    ingress_ns: self
                        .registry
                        .histogram_labeled("hop_ingress_ns", "chan", name),
                    enqueue_ns: self
                        .registry
                        .histogram_labeled("hop_enqueue_ns", "chan", name),
                    flush_ns: self
                        .registry
                        .histogram_labeled("hop_flush_ns", "chan", name),
                }),
            );
        id
    }

    /// A channel's `(name, home index)` for mesh routing — both shared
    /// copies, so the publish path pays two map hits and no allocation.
    fn channel_route(&self, id: u32) -> Option<(Arc<str>, u32)> {
        let chans = self.channels.lock().unwrap_or_else(|p| p.into_inner());
        let name = chans.name_by_id.get(&id)?.clone();
        let home = *chans.home_by_id.get(&id)?;
        Some((name, home))
    }

    /// A fresh format registration, visible mesh-wide: gossip it to
    /// every dialed link and every inbound `CAP_PEER` connection except
    /// the one it arrived on. The far side's registry dedups, so the
    /// echo terminates after one round.
    fn broadcast_format(&self, id: u32, exclude_conn: Option<u32>) {
        let Some(mesh) = &self.mesh else { return };
        mesh.gossip(id);
        let Some(meta) = self.formats.meta(id) else {
            return;
        };
        let peers: Vec<Arc<ConnShared>> = {
            let conns = self.conns.lock().unwrap_or_else(|p| p.into_inner());
            conns
                .iter()
                .filter_map(Weak::upgrade)
                .filter(|c| {
                    c.caps() & CAP_PEER != 0
                        && c.alive.load(Ordering::Relaxed)
                        && Some(c.id) != exclude_conn
                })
                .collect()
        };
        for c in peers {
            c.send(Frame::with_body(
                K_FORMAT,
                id,
                0,
                WireBuf::from(meta.clone()),
            ));
        }
    }

    fn chan_hops(&self, id: u32) -> Option<Arc<ChanHops>> {
        self.chan_hops
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&id)
            .cloned()
    }

    /// The hop record's daemon-global format, registered on first use
    /// (`None` is sticky if the schema cannot lay out, which cannot
    /// happen for the all-scalar hop record).
    fn trace_format(&self) -> Option<(u32, Arc<Layout>)> {
        self.trace_format
            .get_or_init(|| {
                let layout = Arc::new(Layout::of(&hop_schema(), STATS_PROFILE).ok()?);
                let (format, _, _) = self.formats.register(&layout);
                Some((format, layout))
            })
            .clone()
    }

    /// The topology record's daemon-global format: one fixed columnar
    /// schema (every section is a capped array plus a count), so the id
    /// never varies with daemon load and is registered exactly once.
    fn topo_format(&self) -> Option<(u32, Arc<Layout>)> {
        self.topo_format
            .get_or_init(|| {
                let layout = Arc::new(Layout::of(&topo_schema(), STATS_PROFILE).ok()?);
                let (format, _, _) = self.formats.register(&layout);
                Some((format, layout))
            })
            .clone()
    }

    /// The name a channel id was opened under, for metric labels.
    fn channel_name(&self, id: u32) -> Option<String> {
        let chans = self.channels.lock().unwrap_or_else(|p| p.into_inner());
        chans
            .by_name
            .iter()
            .find(|(_, &v)| v == id)
            .map(|(k, _)| k.clone())
    }

    /// Register (or fetch) the delivered watermark for one durable
    /// subscriber, seeded at `init` when new.
    fn lag_entry(&self, chan: u32, conn: u32, init: u64) -> Arc<AtomicU64> {
        let mut lags = self.lags.lock().unwrap_or_else(|p| p.into_inner());
        lags.entry((chan, conn))
            .or_insert_with(|| Arc::new(AtomicU64::new(init)))
            .clone()
    }

    /// Drop every lag watermark belonging to a dead connection, zeroing
    /// its gauges so the last reading doesn't linger as live state.
    fn drop_lag_entries(&self, conn: u32) {
        let removed: Vec<u32> = {
            let mut lags = self.lags.lock().unwrap_or_else(|p| p.into_inner());
            let doomed: Vec<(u32, u32)> =
                lags.keys().filter(|(_, c)| *c == conn).copied().collect();
            for k in &doomed {
                lags.remove(k);
            }
            doomed.into_iter().map(|(chan, _)| chan).collect()
        };
        for chan in removed {
            if let Some(name) = self.channel_name(chan) {
                self.registry
                    .gauge_labeled2(
                        "serv_consumer_lag",
                        "chan",
                        &name,
                        "conn",
                        &conn.to_string(),
                    )
                    .set(0);
            }
        }
    }

    /// Current consumer-lag watermarks, refreshing the
    /// `serv_consumer_lag{chan,conn}` gauges as a side effect — called
    /// from every stats encode and topology capture, so the gauges ride
    /// both `$stats` and `$topo`. Replay-in-progress consumers are
    /// included: their watermark advances as the replay streams.
    fn lag_watermarks(&self) -> Vec<TopoLag> {
        let entries: Vec<((u32, u32), Arc<AtomicU64>)> = {
            let lags = self.lags.lock().unwrap_or_else(|p| p.into_inner());
            lags.iter().map(|(k, v)| (*k, v.clone())).collect()
        };
        let mut out = Vec::with_capacity(entries.len());
        for ((chan, conn), delivered) in entries {
            let Some(log) = self.log(chan) else { continue };
            let lag = TopoLag {
                chan,
                conn,
                head: log.head(),
                delivered: delivered.load(Ordering::Relaxed),
            };
            if let Some(name) = self.channel_name(chan) {
                self.registry
                    .gauge_labeled2(
                        "serv_consumer_lag",
                        "chan",
                        &name,
                        "conn",
                        &conn.to_string(),
                    )
                    .set(i64::try_from(lag.lag()).unwrap_or(i64::MAX));
            }
            out.push(lag);
        }
        out.sort_by_key(|l| (l.chan, l.conn));
        out
    }

    /// Capture the daemon's live topology: every lock is taken briefly
    /// and in a fixed order (conns, then channels, then per-fanout, then
    /// lags), never nested with the publish path's channel→fanout order
    /// reversed — capture is safe to run concurrently with full load.
    fn capture(&self) -> TopoSnapshot {
        let mut topo = TopoSnapshot {
            t_ns: epoch_ns(),
            ..TopoSnapshot::default()
        };
        {
            let conns = self.conns.lock().unwrap_or_else(|p| p.into_inner());
            for c in conns.iter().filter_map(Weak::upgrade) {
                if !c.alive.load(Ordering::Relaxed) {
                    continue;
                }
                topo.conns.push(TopoConn {
                    conn: c.id,
                    shard: c.shard_idx,
                    caps: c.caps(),
                    queue_depth: c.outbound.event_backlog() as u64,
                    bytes_sent: c.counters.bytes_sent.load(Ordering::Relaxed),
                    frames_sent: c.counters.frames_sent.load(Ordering::Relaxed),
                    tapped: c.counters.frames_tapped.load(Ordering::Relaxed),
                    last_active_ns: c.last_active_ns.load(Ordering::Relaxed),
                });
            }
        }
        topo.conns.sort_by_key(|c| c.conn);
        type ChanRow = (String, u32, Arc<Mutex<Fanout<RemoteSubscriber>>>);
        let chans: Vec<ChanRow> = {
            let chans = self.channels.lock().unwrap_or_else(|p| p.into_inner());
            chans
                .by_name
                .iter()
                .filter_map(|(name, &id)| {
                    chans.by_id.get(&id).map(|f| (name.clone(), id, f.clone()))
                })
                .collect()
        };
        for (name, id, fanout) in chans {
            let (subscribers, publishes) = {
                let f = fanout.lock().unwrap_or_else(|p| p.into_inner());
                (f.active_count() as u64, f.stats().published)
            };
            let log = self.log(id);
            let home = self.mesh.as_ref().map_or(0, |m| m.home(&name));
            topo.channels.push(TopoChannel {
                id,
                name,
                subscribers,
                publishes,
                durable: log.is_some(),
                head: log.as_ref().map_or(0, |l| l.head()),
                segments: log.as_ref().map_or(0, |l| l.segment_count() as u64),
                disk_bytes: log.as_ref().and_then(|l| l.disk_bytes().ok()).unwrap_or(0),
                home,
            });
        }
        topo.channels.sort_by_key(|c| c.id);
        if let Some(mesh) = &self.mesh {
            for p in mesh.peer_stats() {
                topo.peers.push(TopoPeer {
                    peer: p.peer,
                    connected: p.connected,
                    relay_tx: p.relay_tx,
                    relay_rx: p.relay_rx,
                    relay_dropped: p.relay_dropped,
                    pending: p.pending,
                    last_rx_ns: p.last_rx_ns,
                });
            }
        }
        for (i, s) in self.shard_load.iter().enumerate() {
            topo.shards.push(TopoShard {
                shard: i as u32,
                conns: s.conns.get(),
                ready: s.ready.get(),
                wakeups: s.wakeups.get(),
                cpu: self.shard_cpus[i].load(Ordering::Relaxed),
            });
        }
        topo.lags = self.lag_watermarks();
        topo.flight = self.flight.recent();
        topo.conn_total = topo.conns.len() as u64;
        topo.chan_total = topo.channels.len() as u64;
        topo.lag_total = topo.lags.len() as u64;
        topo.flight_total = self.flight.recorded();
        topo
    }

    /// Encode one topology capture as a PBIO record under the fixed
    /// `$topo` format; `(format id, NDR bytes)` like [`State::encode_stats`].
    fn encode_topo(&self) -> Option<(u32, WireBuf)> {
        let (format, layout) = self.topo_format()?;
        let topo = self.capture();
        let mut buf = self.pool.get(layout.size());
        encode_native_into(&topo_value(&topo), &layout, &mut buf).ok()?;
        Some((format, WireBuf::copy_from(&buf)))
    }

    /// Drain new flight events into the dump log. Each batch is fsynced
    /// by the sink's flush policy, so however the process dies after this
    /// returns, everything drained so far is decodable; an abrupt death
    /// mid-append leaves a torn tail the next open CRC-recovers.
    fn drain_flight(&self) {
        let Some(sink) = &self.flight_sink else {
            return;
        };
        let mut sink = sink.lock().unwrap_or_else(|p| p.into_inner());
        let (events, next) = self.flight.drain_since(sink.cursor);
        if events.is_empty() {
            sink.cursor = next;
            return;
        }
        let mut bufs: Vec<Vec<u8>> = Vec::with_capacity(events.len());
        for ev in &events {
            let mut buf = Vec::with_capacity(sink.layout.size());
            if encode_native_into(&flight_value(ev), &sink.layout, &mut buf).is_ok() {
                bufs.push(buf);
            }
        }
        let start = sink.log.reserve(bufs.len() as u64);
        let recs: Vec<Append<'_>> = bufs
            .iter()
            .enumerate()
            .map(|(i, b)| Append {
                offset: start + i as u64,
                format: sink.format,
                payload: b,
            })
            .collect();
        if sink
            .log
            .append_batch(&recs, &mut |id| self.formats.meta(id))
            .is_ok()
        {
            sink.cursor = next;
        }
    }

    /// Drain the tap ring into the capture segment log. Same crash
    /// contract as [`State::drain_flight`]: every appended batch is
    /// fsynced, a death mid-append leaves a CRC-recoverable torn tail.
    /// Rotations and ring overflow observed since the last drain are
    /// recorded into the flight recorder, so `$topo` narrates the
    /// capture's own lifecycle.
    fn drain_tap(&self) {
        let (Some(tap), Some(sink)) = (&self.tap, &self.tap_sink) else {
            return;
        };
        let mut sink = sink.lock().unwrap_or_else(|p| p.into_inner());
        let sink = &mut *sink;
        sink.scratch.clear();
        tap.drain(&mut sink.scratch);
        if !sink.scratch.is_empty() {
            let mut bufs: Vec<Vec<u8>> = Vec::with_capacity(sink.scratch.len());
            for entry in &sink.scratch {
                let mut buf = Vec::with_capacity(13 + FRAME_HEADER_SIZE + entry.body.len());
                entry.encode_into(&mut buf);
                bufs.push(buf);
            }
            let start = sink.log.reserve(bufs.len() as u64);
            let recs: Vec<Append<'_>> = bufs
                .iter()
                .enumerate()
                .map(|(i, b)| Append {
                    offset: start + i as u64,
                    // Raw capture bytes: no layout, no meta record.
                    format: FORMAT_RAW,
                    payload: b,
                })
                .collect();
            let _ = sink
                .log
                .append_batch(&recs, &mut |id| self.formats.meta(id));
            sink.scratch.clear();
        }
        let segments = sink.log.segment_count();
        if segments > sink.segments {
            self.flight.record(FL_TAP_ROTATE, 0, 0, 0, segments as u64);
        }
        sink.segments = segments;
        let dropped = tap.dropped();
        if dropped > sink.dropped_seen {
            self.flight.record(FL_TAP_DROP, 0, 0, 0, dropped);
            sink.dropped_seen = dropped;
        }
    }

    /// Encode one snapshot of the daemon's registry (merged with the
    /// process-global module metrics) as a PBIO record: generate its
    /// schema, register the layout like any client format (equal metric
    /// sets dedup to the same id), and return `(format id, NDR bytes)`.
    fn encode_stats(&self) -> Option<(u32, WireBuf)> {
        let seq = self.stats_seq.fetch_add(1, Ordering::Relaxed);
        // Refresh the consumer-lag gauges first so they ride this very
        // snapshot, not the previous one.
        let _ = self.lag_watermarks();
        let mut snap = self.registry.snapshot();
        snap.merge_from(&Registry::global().snapshot());
        let t = epoch_ns();
        let header = StatsHeader {
            role: ROLE_DAEMON,
            id: 0,
            seq,
            t_ns: t,
            snapshot_ns: t,
        };
        let schema = stats_schema(&snap);
        let layout = Arc::new(Layout::of(&schema, STATS_PROFILE).ok()?);
        let (format, _, _) = self.formats.register(&layout);
        let value = stats_value(&header, &snap);
        let mut buf = self.pool.get(layout.size());
        encode_native_into(&value, &layout, &mut buf).ok()?;
        Some((format, WireBuf::copy_from(&buf)))
    }

    fn channel(&self, id: u32) -> Option<Arc<Mutex<Fanout<RemoteSubscriber>>>> {
        self.channels
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .by_id
            .get(&id)
            .cloned()
    }
}

/// What a peer link needs from its daemon: the format registry (for
/// gossip) and a fan-out injection point (for relayed events).
impl MeshHost for State {
    fn register_meta(&self, meta: &[u8]) -> Option<(u32, bool)> {
        let (id, _, fresh) = self.formats.register_meta(meta).ok()?;
        if fresh {
            // A layout learned over one link is news to every other
            // peer too.
            self.broadcast_format(id, None);
        }
        Some((id, fresh))
    }

    fn format_meta(&self, id: u32) -> Option<Arc<[u8]>> {
        self.formats.meta(id)
    }

    fn format_count(&self) -> u32 {
        self.formats.len() as u32
    }

    /// Fan a relayed event out locally: the mesh's relay fan-out
    /// property — one inter-daemon frame, N refcount-bump deliveries —
    /// rides the same [`Fanout`] as a local publish. `format` carries
    /// the local id plus trailer flags; the flags describe what is
    /// still on `body`, and per-subscriber slicing happens in
    /// [`RemoteSubscriber::deliver`] as usual.
    fn inject_event(&self, chan: u32, format: u32, body: WireBuf, _peer: u32) {
        let Some(fanout) = self.channel(chan) else {
            return;
        };
        let traced = format & TRACE_FLAG != 0;
        let has_offset = format & OFFSET_FLAG != 0;
        let bare = format & !(TRACE_FLAG | OFFSET_FLAG);
        let off_len = if has_offset { OFFSET_TRAILER_LEN } else { 0 };
        let ctx = if traced && body.len() >= off_len + TRACE_TRAILER_LEN {
            let t = &body[body.len() - off_len - TRACE_TRAILER_LEN..body.len() - off_len];
            TraceCtx::decode(t).filter(|c| c.sampled())
        } else {
            None
        };
        // A flagged-but-undecodable trailer must not leak into payload
        // bytes: strip it (the inner-trailer removal pays a copy when an
        // offset trailer sits outside it, like the deliver path's rare
        // case).
        let body = if traced && ctx.is_none() && body.len() >= off_len + TRACE_TRAILER_LEN {
            if off_len == 0 {
                body.slice(0, body.len() - TRACE_TRAILER_LEN)
            } else {
                let n = body.len();
                let mut v = Vec::with_capacity(n - TRACE_TRAILER_LEN);
                v.extend_from_slice(&body[..n - off_len - TRACE_TRAILER_LEN]);
                v.extend_from_slice(&body[n - off_len..]);
                WireBuf::from(v)
            }
        } else {
            body
        };
        self.metrics.events_in.inc();
        let mut fanout = fanout.lock().unwrap_or_else(|p| p.into_inner());
        let before = fanout.stats();
        let pub_fmt = if has_offset { bare | OFFSET_FLAG } else { bare };
        let _ = fanout.publish_traced(pub_fmt, &body, ctx.as_ref());
        let after = fanout.stats();
        self.metrics
            .filtered_at_source
            .add(after.filtered_out - before.filtered_out);
    }

    fn relay_hop(&self, ctx: &TraceCtx, chan: u32, peer: u32) {
        let t = epoch_ns();
        self.hops.push(TraceHop {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            hop: HOP_RELAY,
            conn: peer,
            channel: chan,
            t_ns: t,
            dur_ns: t.saturating_sub(ctx.origin_ns),
        });
    }
}

/// The event-channel daemon. Binding spawns the accept loop and the
/// reactor shards; dropping (or calling [`ServDaemon::shutdown`]) stops
/// them and joins every thread.
pub struct ServDaemon {
    state: Arc<State>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    stats_thread: Option<JoinHandle<()>>,
    store_thread: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
    shards: Vec<Arc<ShardHandle>>,
}

impl ServDaemon {
    /// Bind with default configuration.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<ServDaemon> {
        ServDaemon::bind_with(addr, ServConfig::default())
    }

    /// Bind and start serving. `addr` may be `"127.0.0.1:0"` to let the
    /// OS pick a port — see [`ServDaemon::local_addr`].
    pub fn bind_with(addr: impl ToSocketAddrs, config: ServConfig) -> io::Result<ServDaemon> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(State::new(&config)?);
        // Dial the configured mesh peers. Links reconnect on their own,
        // so member start order doesn't matter: whoever comes up last
        // still converges.
        if let (Some(mesh), Some(mcfg)) = (&state.mesh, &config.peers) {
            let host: Arc<dyn MeshHost> = state.clone();
            for p in &mcfg.peers {
                mesh.add_peer(p.index, p.addr.clone(), host.clone());
            }
        }
        let store_thread = match &state.store {
            Some(_) => {
                let store_state = state.clone();
                Some(
                    std::thread::Builder::new()
                        .name("pbio-serv-store".into())
                        .spawn(move || store_loop(store_state))?,
                )
            }
            None => None,
        };
        let shard_count = effective_shards(&config);
        let mut shards = Vec::with_capacity(shard_count);
        let mut shard_threads = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let (p, waker) = poller()?;
            let (tx, rx) = unbounded();
            let handle = Arc::new(ShardHandle {
                tx,
                waker,
                wake_pending: AtomicBool::new(false),
            });
            let sm = ShardMetrics::resolve(&state.registry, i);
            let shard_state = state.clone();
            let shard_handle = handle.clone();
            let pin_to = config.pin_shards.then(|| {
                let parallelism = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                i % parallelism
            });
            shard_threads.push(
                std::thread::Builder::new()
                    .name(format!("pbio-serv-shard{i}"))
                    .spawn(move || {
                        if let Some(cpu) = pin_to {
                            // Best-effort: a refused mask (cgroup cpuset,
                            // non-Linux host) leaves the shard unpinned
                            // and the snapshot reporting -1.
                            if pbio_net::affinity::pin_current_thread(cpu).is_ok() {
                                shard_state.shard_cpus[i].store(cpu as i64, Ordering::Relaxed);
                            }
                        }
                        reactor_loop(shard_state, shard_handle, rx, p, sm)
                    })?,
            );
            shards.push(handle);
        }
        let accept_state = state.clone();
        let accept_shards = shards.clone();
        let accept_thread = std::thread::Builder::new()
            .name("pbio-serv-accept".into())
            .spawn(move || accept_loop(listener, accept_state, accept_shards))?;
        let stats_thread = if config.stats_interval.is_some()
            || config.trace.publish_interval.is_some()
            || state.flight_sink.is_some()
            || state.tap_sink.is_some()
        {
            let bg_state = state.clone();
            let stats_interval = config.stats_interval;
            let trace_interval = config.trace.publish_interval;
            Some(
                std::thread::Builder::new()
                    .name("pbio-serv-stats".into())
                    .spawn(move || background_loop(bg_state, stats_interval, trace_interval))?,
            )
        } else {
            None
        };
        Ok(ServDaemon {
            state,
            addr,
            accept_thread: Some(accept_thread),
            stats_thread,
            store_thread,
            shard_threads,
            shards,
        })
    }

    /// How many threads this daemon is running right now: the accept
    /// loop, the reactor shards, the optional stats and store threads,
    /// and any in-flight replay streams. Notably *not* a function of the
    /// connection count — the property the reactor core exists for.
    pub fn thread_count(&self) -> usize {
        1 + self.shard_threads.len()
            + usize::from(self.stats_thread.is_some())
            + usize::from(self.store_thread.is_some())
            + self.state.active_replays.load(Ordering::Relaxed)
    }

    /// The address the daemon is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared format registry (ids here are the protocol's format ids).
    pub fn formats(&self) -> &Arc<FormatServer> {
        &self.state.formats
    }

    /// Current counters (a fixed-field view of [`ServDaemon::registry`]).
    pub fn stats(&self) -> ServStats {
        self.state.metrics.snapshot(&self.state.pool)
    }

    /// The daemon's metric registry: every [`ServStats`] field plus the
    /// latency histograms, as published on the `$stats` channel.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.state.registry
    }

    /// The segment-log store behind durable channels, when this daemon
    /// was configured with [`ServConfig::durability`] — for inspecting
    /// durability counters, per-channel logs, and bytes on disk.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.state.store.as_ref()
    }

    /// Current head-sampling modulus advertised to new sessions (0 =
    /// off). Changed by [`K_TRACE_CTL`] or set at bind time via
    /// [`TraceConfig::sample_mod`].
    pub fn trace_sampling(&self) -> u32 {
        self.state.trace_mod.load(Ordering::Relaxed)
    }

    /// A live topology snapshot — the same capture [`K_INSPECT`] answers
    /// and the `$topo` channel pushes: per-connection queue depths,
    /// per-channel fan-out and durable-log footprint, per-shard load,
    /// consumer-lag watermarks, and the flight-recorder tail.
    pub fn topology(&self) -> TopoSnapshot {
        self.state.capture()
    }

    /// The daemon's flight recorder: the bounded ring of lifecycle
    /// events behind [`K_INSPECT`] dumps and [`ServConfig::flight_dump`].
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.state.flight
    }

    /// This daemon's mesh index, when it is a federation member.
    pub fn mesh_index(&self) -> Option<u32> {
        self.state.mesh.as_ref().map(|m| m.index)
    }

    /// Dial an additional mesh peer at run time (a late joiner, or a
    /// test that only learns ports after binding). Requires the daemon
    /// to have been configured with [`ServConfig::peers`]; returns
    /// false on a standalone daemon. Re-adding an index replaces the
    /// old link.
    pub fn connect_peer(&self, index: u32, addr: impl Into<String>) -> bool {
        let Some(mesh) = &self.state.mesh else {
            return false;
        };
        let host: Arc<dyn MeshHost> = self.state.clone();
        mesh.add_peer(index, addr.into(), host);
        true
    }

    /// Test hook: sever (or heal) the dialed link to `index`. While
    /// partitioned the link neither sends nor redials; forwards park in
    /// its bounded pending queue and drain on heal. Returns false for
    /// an unknown peer or a standalone daemon.
    pub fn partition_peer(&self, index: u32, partitioned: bool) -> bool {
        self.state
            .mesh
            .as_ref()
            .is_some_and(|m| m.set_partitioned(index, partitioned))
    }

    /// Per-peer relay counters for every dialed link, sorted by peer
    /// index — the same numbers the `$topo` peers section carries.
    pub fn peer_stats(&self) -> Vec<PeerStats> {
        self.state
            .mesh
            .as_ref()
            .map(|m| m.peer_stats())
            .unwrap_or_default()
    }

    /// Writer-side counters for each connection still alive.
    pub fn conn_stats(&self) -> Vec<ConnStats> {
        let conns = self.state.conns.lock().unwrap_or_else(|p| p.into_inner());
        conns
            .iter()
            .filter_map(|w| w.upgrade())
            .map(|c| c.stats())
            .collect()
    }

    /// Stop accepting, disconnect everyone, and join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.state.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.state.flight.record(FL_SHUTDOWN, 0, 0, 0, 0);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.stats_thread.take() {
            let _ = h.join();
        }
        // Peer links observe the mesh shutdown flag within one tick.
        if let Some(mesh) = &self.state.mesh {
            mesh.stop();
        }
        // Reactors check the shutdown flag at the top of every wakeup;
        // fire the wakers so none of them sits out its poll timeout.
        for s in &self.shards {
            s.waker.wake();
        }
        for h in self.shard_threads.drain(..) {
            let _ = h.join();
        }
        // Replay threads observe the shutdown flag (or their dead conns)
        // and exit; then close the store queue so the writer drains every
        // accepted append, acks what it can, and stops.
        let replays: Vec<_> = {
            let mut r = self
                .state
                .replay_threads
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            r.drain(..).collect()
        };
        for h in replays {
            let _ = h.join();
        }
        self.state.store_q.close();
        if let Some(h) = self.store_thread.take() {
            let _ = h.join();
        }
        if let Some(store) = &self.state.store {
            let _ = store.sync_all();
        }
        // Final flight and capture flushes: teardown events recorded
        // during this stop (evictions, the shutdown marker itself) and
        // the tail of the tap ring reach their dumps.
        self.state.drain_flight();
        self.state.drain_tap();
    }
}

impl Drop for ServDaemon {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, state: Arc<State>, shards: Vec<Arc<ShardHandle>>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_nodelay(true);
        // Nonblocking before the clones: O_NONBLOCK lives on the shared
        // open file description, so both halves inherit it.
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let conn_seq = state.next_conn.fetch_add(1, Ordering::Relaxed);
        let conn_id = conn_seq as u32;
        // One fd per connection: the read wrapper, the write wrapper and
        // the eviction handle all share a single socket (TcpStream I/O
        // takes `&self`). Connection capacity is bounded by the fd
        // rlimit, so a dup per half would cost a third of it.
        let sock = Arc::new(stream);
        // Fault mode wraps both halves of the connection in deterministic
        // injection, with the plan split per direction so read and write
        // offsets advance independently. The plan derives from (seed,
        // conn sequence): every connection of a seeded run misbehaves its
        // own reproducible way. Unseeded, both wrappers are pass-through
        // enums.
        let plan = state.fault_seed.map(|s| FaultPlan::for_conn(s, conn_seq));
        let fault_log = FaultLog::new();
        let read_plan = plan.as_ref().map(FaultPlan::read_half);
        let write_plan = plan.as_ref().map(FaultPlan::write_half);
        let rd = MaybeFaulty::new(SharedTcp(sock.clone()), read_plan, fault_log.clone());
        let wr = MaybeFaulty::new(SharedTcp(sock.clone()), write_plan, fault_log);
        let shard_idx = (conn_seq as usize % shards.len()) as u32;
        let shard = shards[shard_idx as usize].clone();
        let conn = Arc::new(ConnShared {
            id: conn_id,
            outbound: Outbound::new(state.queue_capacity, state.stall_budget),
            announced: Mutex::new(HashSet::new()),
            alive: AtomicBool::new(true),
            counters: ConnCounters::default(),
            caps: AtomicU32::new(0),
            raw: Mutex::new(Some(sock)),
            durable_subs: Mutex::new(Vec::new()),
            shard: shard.clone(),
            shard_idx,
            last_active_ns: AtomicU64::new(epoch_ns()),
            write_queued: AtomicBool::new(false),
        });
        state.track(&conn);
        let fd = source_of(rd.get_ref());
        shard.notify(ShardMsg::NewConn(Box::new(NewConn { conn, rd, wr, fd })));
    }
}

/// Periodically publish the daemon's registry snapshot on the reserved
/// stats channel and drain completed trace hops onto the reserved trace
/// channel — both through the same fan-out path as any client event:
/// subscribers get the records announced, filtered, queued, and batched
/// exactly like application data.
fn background_loop(
    state: Arc<State>,
    stats_interval: Option<Duration>,
    trace_interval: Option<Duration>,
) {
    let shortest = [stats_interval, trace_interval]
        .into_iter()
        .flatten()
        .min()
        .unwrap_or(POLL_INTERVAL);
    let step = shortest.min(POLL_INTERVAL).max(Duration::from_millis(1));
    let mut since_stats = Duration::ZERO;
    let mut since_trace = Duration::ZERO;
    loop {
        std::thread::sleep(step);
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        since_stats += step;
        since_trace += step;
        if let Some(interval) = stats_interval {
            if since_stats >= interval {
                since_stats = Duration::ZERO;
                publish_stats(&state);
                publish_topo(&state);
            }
        }
        if let Some(interval) = trace_interval {
            if since_trace >= interval {
                since_trace = Duration::ZERO;
                publish_trace(&state);
            }
        }
        // Incremental flight and capture dumps on every tick: the window
        // an unclean death can lose is one step, not the whole ring.
        state.drain_flight();
        state.drain_tap();
    }
}

/// True when the reserved channel has at least one live subscriber.
/// Snapshot publishers check this *before* encoding: with nobody
/// listening the daemon skips the whole capture/encode, and the skip is
/// counted in `serv_stats_suppressed`.
fn reserved_has_audience(state: &State, chan: u32) -> bool {
    let Some(fanout) = state.channel(chan) else {
        return false;
    };
    let n = fanout
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .active_count();
    if n == 0 {
        state.metrics.stats_suppressed.inc();
        return false;
    }
    true
}

fn publish_stats(state: &State) {
    if !reserved_has_audience(state, state.stats_channel) {
        return;
    }
    let Some((format, wire)) = state.encode_stats() else {
        return;
    };
    let Some(fanout) = state.channel(state.stats_channel) else {
        return;
    };
    let mut fanout = fanout.lock().unwrap_or_else(|p| p.into_inner());
    let _ = fanout.publish_shared(format, &wire);
    state.registry.trace("stats_publish", format as u64);
}

/// Publish one topology capture on the reserved [`TOPO_CHANNEL`] — the
/// push side of [`K_INSPECT`], riding the same fan-out as any event.
fn publish_topo(state: &State) {
    if !reserved_has_audience(state, state.topo_channel) {
        return;
    }
    let Some((format, wire)) = state.encode_topo() else {
        return;
    };
    let Some(fanout) = state.channel(state.topo_channel) else {
        return;
    };
    let mut fanout = fanout.lock().unwrap_or_else(|p| p.into_inner());
    let _ = fanout.publish_shared(format, &wire);
}

/// Drain the hop sink and publish each record on [`TRACE_CHANNEL`]:
/// self-describing PBIO records, consumed by `pbio-trace` (or any raw
/// subscriber) with no schema agreed out of band. With no subscriber the
/// drain (and every encode) is skipped; hops keep accumulating in the
/// bounded sink, oldest evicted first.
fn publish_trace(state: &State) {
    if state.hops.is_empty() {
        return;
    }
    if !reserved_has_audience(state, state.trace_channel) {
        return;
    }
    let Some((format, layout)) = state.trace_format() else {
        return;
    };
    let Some(fanout) = state.channel(state.trace_channel) else {
        return;
    };
    let mut buf = state.pool.get(layout.size());
    for hop in state.hops.drain() {
        buf.clear();
        if encode_native_into(&hop_value(&hop), &layout, &mut buf).is_err() {
            continue;
        }
        let wire = WireBuf::copy_from(&buf);
        let mut fanout = fanout.lock().unwrap_or_else(|p| p.into_inner());
        let _ = fanout.publish_shared(format, &wire);
    }
}

// ---------------------------------------------------------------------------
// Reactor shards: the event-driven connection core.

/// A reactor shard's cross-thread face: the message channel plus the
/// waker that interrupts its poll, with a latch so message bursts
/// collapse into one wakeup.
struct ShardHandle {
    tx: Sender<ShardMsg>,
    waker: Waker,
    /// Set when a wake is already pending; reset by the reactor at the
    /// top of every wakeup, before it drains the channel.
    wake_pending: AtomicBool,
}

impl ShardHandle {
    fn notify(&self, msg: ShardMsg) {
        let _ = self.tx.send(msg);
        if !self.wake_pending.swap(true, Ordering::AcqRel) {
            self.waker.wake();
        }
    }
}

/// Cross-thread work handed to a reactor shard.
enum ShardMsg {
    /// A freshly accepted connection to adopt.
    NewConn(Box<NewConn>),
    /// Connection `id` has queued outbound frames to flush.
    Writable(u32),
}

/// Everything the accept loop hands a shard for one new connection.
struct NewConn {
    conn: Arc<ConnShared>,
    rd: MaybeFaulty<SharedTcp>,
    wr: MaybeFaulty<SharedTcp>,
    fd: RawSource,
}

/// The handshake state machine: one HELLO, then the full protocol.
enum Phase {
    AwaitHello,
    Active,
}

/// One connection's reactor-side state, owned exclusively by its shard.
struct ConnState {
    conn: Arc<ConnShared>,
    rd: MaybeFaulty<SharedTcp>,
    wr: MaybeFaulty<SharedTcp>,
    fd: RawSource,
    /// Inbound frame reassembly across partial reads.
    decoder: FrameDecoder,
    phase: Phase,
    /// Live subscriptions this session registered via `K_SUBSCRIBE`.
    subscriptions: Vec<(u32, SubscriptionId)>,
    /// Frames popped from the outbound queue but not yet fully written
    /// (with their parallel trace contexts): `cursor` bytes of
    /// `pending[0]` are already on the wire — the partial-write
    /// resumption state a blocking writer never needed.
    pending: Vec<Frame>,
    pending_traces: Vec<Option<TraceCtx>>,
    cursor: usize,
    /// The last flush hit `WouldBlock` and wants writable-readiness.
    wants_write: bool,
    /// Whether writable interest is currently armed with the poller.
    armed_write: bool,
    /// Whether this session passed HELLO and was counted in
    /// `active_connections`.
    counted_active: bool,
    /// The session is over; flush what is queued, then tear down.
    closing: bool,
    last_rx: Instant,
    last_ping: Instant,
    ping_token: u32,
}

impl ConnState {
    fn new(nc: NewConn) -> ConnState {
        let NewConn { conn, rd, wr, fd } = nc;
        ConnState {
            conn,
            rd,
            wr,
            fd,
            decoder: FrameDecoder::new(),
            phase: Phase::AwaitHello,
            subscriptions: Vec::new(),
            pending: Vec::new(),
            pending_traces: Vec::new(),
            cursor: 0,
            wants_write: false,
            armed_write: false,
            counted_active: false,
            closing: false,
            last_rx: Instant::now(),
            last_ping: Instant::now(),
            ping_token: 0,
        }
    }
}

/// The slice of a connection's state the protocol machine may touch
/// while the decoder's borrow of the inbound buffer is live.
struct SessionCtx<'a> {
    conn: &'a Arc<ConnShared>,
    subscriptions: &'a mut Vec<(u32, SubscriptionId)>,
    phase: &'a mut Phase,
    closing: &'a mut bool,
    counted_active: &'a mut bool,
}

/// Holds one of the daemon's bounded replay slots; dropping it — however
/// the replay thread exits — releases the slot.
struct ReplayGuard(Arc<State>);

impl Drop for ReplayGuard {
    fn drop(&mut self) {
        self.0.active_replays.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One shard's event loop: poll for readiness, adopt new connections,
/// decode and dispatch inbound frames, flush outbound queues, and run
/// the heartbeat scan — for every connection the shard owns, on one
/// thread.
fn reactor_loop(
    state: Arc<State>,
    shard: Arc<ShardHandle>,
    rx: Receiver<ShardMsg>,
    mut poller: Box<dyn Poller>,
    sm: ShardMetrics,
) {
    let mut conns: HashMap<u32, ConnState> = HashMap::new();
    let mut events: Vec<PollEvent> = Vec::new();
    let mut last_hb = Instant::now();
    loop {
        events.clear();
        let _ = poller.poll(&mut events, POLL_INTERVAL);
        // Reset the wake latch *before* draining the channel: a notify
        // racing this drain either lands in the channel in time to be
        // seen now, or re-latches and fires the waker for the next poll.
        shard.wake_pending.store(false, Ordering::Release);
        sm.wakeups.inc();
        sm.ready_depth.record(events.len() as u64);
        sm.ready.set(events.len() as i64);
        while let Ok(msg) = rx.try_recv() {
            match msg {
                ShardMsg::NewConn(nc) => {
                    let cs = ConnState::new(*nc);
                    poller.register(cs.fd, cs.conn.id as usize, Interest::READABLE);
                    conns.insert(cs.conn.id, cs);
                }
                ShardMsg::Writable(id) => {
                    let Some(mut cs) = conns.remove(&id) else {
                        continue;
                    };
                    // Clear the nudge latch before draining: a send that
                    // races this flush either lands in the queue in time
                    // to be flushed now, or re-latches a fresh nudge.
                    cs.conn.write_queued.store(false, Ordering::Release);
                    if flush_and_rearm(&state, &sm, poller.as_mut(), &mut cs) {
                        conns.insert(id, cs);
                    } else {
                        teardown_conn(&state, poller.as_mut(), cs);
                    }
                }
            }
        }
        sm.conns.set(conns.len() as i64);
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let mut frames = 0u64;
        for ev in &events {
            let id = ev.token as u32;
            let Some(mut cs) = conns.remove(&id) else {
                continue;
            };
            if ev.readable && !cs.closing {
                frames += handle_readable(&state, &mut cs);
            }
            // Always run the flush: readable processing usually queued
            // replies, and a writable event means a parked partial write
            // can resume. An empty queue costs one try_pop.
            if flush_and_rearm(&state, &sm, poller.as_mut(), &mut cs) {
                conns.insert(id, cs);
            } else {
                teardown_conn(&state, poller.as_mut(), cs);
            }
        }
        if frames > 0 {
            sm.frames_per_wakeup.record(frames);
        }
        // Heartbeats: any fully received frame refreshes `last_rx`;
        // after `heartbeat_ping` of silence the daemon probes, after
        // `heartbeat_dead` it evicts. Externally evicted connections
        // (`!alive`) are reaped here as a safety net — the socket
        // shutdown normally surfaces as a readiness event first.
        if last_hb.elapsed() >= POLL_INTERVAL {
            last_hb = Instant::now();
            let mut dead: Vec<u32> = Vec::new();
            for (id, cs) in conns.iter_mut() {
                if !cs.conn.alive.load(Ordering::Relaxed) {
                    dead.push(*id);
                    continue;
                }
                let idle = cs.last_rx.elapsed();
                if idle >= state.heartbeat_dead {
                    state.metrics.evicted_dead.inc();
                    dead.push(*id);
                    continue;
                }
                if matches!(cs.phase, Phase::Active)
                    && !cs.closing
                    && idle >= state.heartbeat_ping
                    && cs.last_ping.elapsed() >= state.heartbeat_ping
                {
                    cs.ping_token = cs.ping_token.wrapping_add(1);
                    cs.conn.send(Frame::control(K_PING, cs.ping_token, 0));
                    state.metrics.pings.inc();
                    cs.last_ping = Instant::now();
                }
            }
            for id in dead {
                if let Some(cs) = conns.remove(&id) {
                    teardown_conn(&state, poller.as_mut(), cs);
                }
            }
        }
    }
    // Shutdown: one best-effort flush (a queued BYE_ACK or final error
    // still reaches the peer), then tear everything down.
    for (_, mut cs) in conns.drain() {
        cs.conn.outbound.close();
        let _ = flush_conn(&state, &sm, &mut cs);
        teardown_conn(&state, poller.as_mut(), cs);
    }
}

/// Drain the socket into the frame decoder and dispatch every complete
/// frame. Returns the number of frames dispatched. Oversized and
/// corrupt frames are rejected without killing the session (the decoder
/// stays in sync); EOF and hard errors set `closing`.
fn handle_readable(state: &Arc<State>, cs: &mut ConnState) -> u64 {
    let ConnState {
        conn,
        rd,
        decoder,
        phase,
        subscriptions,
        closing,
        counted_active,
        last_rx,
        ..
    } = cs;
    let mut frames = 0u64;
    'fill: loop {
        match decoder.fill(rd) {
            Ok(0) => {
                *closing = true;
                break;
            }
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Drained for now (or a fault-injected stall): wait for
                // the next readiness event.
                break;
            }
            Err(_) => {
                *closing = true;
                break;
            }
        }
        loop {
            match decoder.next() {
                Ok(Some((header, body))) => {
                    *last_rx = Instant::now();
                    frames += 1;
                    state
                        .metrics
                        .bytes_in
                        .add((FRAME_HEADER_SIZE + header.len) as u64);
                    // Inbound tap point. The decoder's body is borrowed,
                    // so capturing copies it — but only here, with the
                    // tap on; the disabled path is the one relaxed load
                    // inside `enabled()`.
                    if let Some(tap) = &state.tap {
                        if tap.enabled() {
                            let is_event = header.kind == K_PUBLISH || header.kind == K_EVENT;
                            if !is_event || tap.wants_event(header.a) {
                                tap.push(TapEntry {
                                    t_ns: epoch_ns(),
                                    conn: conn.id,
                                    dir: TAP_IN,
                                    kind: header.kind,
                                    a: header.a,
                                    b: header.b,
                                    body: WireBuf::copy_from(body),
                                });
                                conn.counters.frames_tapped.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    // Times the handling of this frame (dispatch
                    // included), not the socket read above it.
                    let _recv_span = Span::enter(&state.metrics.recv_ns);
                    let mut sctx = SessionCtx {
                        conn: &*conn,
                        subscriptions: &mut *subscriptions,
                        phase: &mut *phase,
                        closing: &mut *closing,
                        counted_active: &mut *counted_active,
                    };
                    handle_frame(state, &mut sctx, &header, body);
                    if *closing {
                        break 'fill;
                    }
                }
                Ok(None) => break,
                // A header announcing an impossible body is rejected
                // without killing the session: the decoder discards the
                // announced bytes as they arrive (never buffered), so
                // framing stays trustworthy.
                Err(FrameError::TooLarge(len)) => {
                    state.metrics.frames_rejected.inc();
                    send_error(
                        state,
                        conn,
                        E_PROTOCOL,
                        format!("frame body of {len} bytes exceeds the frame size limit"),
                    );
                    *last_rx = Instant::now();
                }
                // The checksum failed but the full frame was consumed,
                // so the stream is still in sync: reject the frame, keep
                // the session.
                Err(FrameError::Corrupt { expected, actual }) => {
                    state.metrics.frames_rejected.inc();
                    send_error(state, conn,
                        E_PROTOCOL,
                        format!(
                            "frame checksum mismatch (announced {expected:#010x}, computed {actual:#010x})"
                        ),
                    );
                    *last_rx = Instant::now();
                }
                Err(_) => {
                    *closing = true;
                    break 'fill;
                }
            }
        }
    }
    if frames > 0 {
        // One relaxed store per read batch (not per frame): the
        // topology snapshot's liveness column.
        conn.last_active_ns.store(epoch_ns(), Ordering::Relaxed);
    }
    frames
}

/// Flush the connection's outbound queue through batched vectored
/// writes, resuming any partial frame first. Returns `false` when the
/// connection is finished — write error, or closed *and* fully drained —
/// and the caller should tear it down.
fn flush_conn(state: &Arc<State>, sm: &ShardMetrics, cs: &mut ConnState) -> bool {
    loop {
        if cs.pending.is_empty() {
            cs.cursor = 0;
            cs.pending_traces.clear();
            match cs.conn.outbound.try_pop_batch(
                &mut cs.pending,
                &mut cs.pending_traces,
                MAX_WRITE_BATCH,
            ) {
                Drained::Got => {}
                Drained::Empty => break,
                Drained::Done => return false,
            }
        }
        let progress = {
            let _send_span = Span::enter(&state.metrics.send_ns);
            write_frames_nonblocking(&mut cs.wr, &cs.pending, &mut cs.cursor)
        };
        let p = match progress {
            Ok(p) => p,
            // Peer gone: stop queuing for it and report the end.
            Err(_) => return false,
        };
        if p.frames_done > 0 {
            let done = &cs.pending[..p.frames_done];
            let done_traces = &cs.pending_traces[..p.frames_done];
            // Traced events get their flush hop stamped once the
            // vectored write has actually handed them to the kernel.
            let t_flush = done_traces.iter().any(Option::is_some).then(epoch_ns);
            if let Some(t) = t_flush {
                for (frame, ctx) in done.iter().zip(done_traces) {
                    let Some(ctx) = ctx else { continue };
                    let dur = t.saturating_sub(ctx.origin_ns);
                    if let Some(h) = state.chan_hops(frame.a) {
                        h.flush_ns.record(dur);
                    }
                    state.hops.push(TraceHop {
                        trace_id: ctx.trace_id,
                        span_id: ctx.span_id,
                        hop: HOP_FLUSH,
                        conn: cs.conn.id,
                        channel: frame.a,
                        t_ns: t,
                        dur_ns: dur,
                    });
                }
            }
            // Outbound tap point: frames are captured once the vectored
            // write has handed them to the kernel, bodies by refcount
            // bump — fanning a tapped event to N subscribers still
            // never copies it.
            if let Some(tap) = &state.tap {
                if tap.enabled() {
                    let t_ns = epoch_ns();
                    let mut tapped = 0u64;
                    for frame in done {
                        let is_event = frame.kind == K_EVENT;
                        if is_event && !tap.wants_event(frame.a) {
                            continue;
                        }
                        tap.push(TapEntry {
                            t_ns,
                            conn: cs.conn.id,
                            dir: TAP_OUT,
                            kind: frame.kind,
                            a: frame.a,
                            b: frame.b,
                            body: frame.body.clone(),
                        });
                        tapped += 1;
                    }
                    if tapped > 0 {
                        cs.conn
                            .counters
                            .frames_tapped
                            .fetch_add(tapped, Ordering::Relaxed);
                    }
                }
            }
            let events = done.iter().filter(|f| f.kind == K_EVENT).count() as u64;
            state.metrics.events_out.add(events);
            let n = p.frames_done as u64;
            cs.conn.counters.frames_sent.fetch_add(n, Ordering::Relaxed);
            if p.frames_done > 1 {
                state.metrics.frames_batched.add(n);
                cs.conn
                    .counters
                    .frames_batched
                    .fetch_add(n, Ordering::Relaxed);
            }
            cs.pending.drain(..p.frames_done);
            cs.pending_traces.drain(..p.frames_done);
        }
        if p.bytes > 0 {
            state.metrics.bytes_out.add(p.bytes as u64);
            state.metrics.writes.inc();
            cs.conn
                .counters
                .bytes_sent
                .fetch_add(p.bytes as u64, Ordering::Relaxed);
            cs.conn.counters.writes.fetch_add(1, Ordering::Relaxed);
        }
        if p.blocked {
            // Socket buffer full: park the cursor, arm writable
            // interest, resume on the next readiness event.
            sm.writev_partials.inc();
            cs.wants_write = true;
            return true;
        }
    }
    cs.wants_write = false;
    true
}

/// [`flush_conn`], plus poller interest maintenance: writable interest
/// is armed exactly while a flush is parked on `WouldBlock`.
fn flush_and_rearm(
    state: &Arc<State>,
    sm: &ShardMetrics,
    poller: &mut dyn Poller,
    cs: &mut ConnState,
) -> bool {
    if cs.closing {
        // No new frames will be accepted; once the queue and the
        // partial-write cursor drain, the flush reports `Done` and the
        // connection is torn down.
        cs.conn.outbound.close();
    }
    if !flush_conn(state, sm, cs) {
        return false;
    }
    if cs.wants_write != cs.armed_write {
        let interest = if cs.wants_write {
            Interest::READ_WRITE
        } else {
            Interest::READABLE
        };
        poller.modify(cs.fd, cs.conn.id as usize, interest);
        cs.armed_write = cs.wants_write;
    }
    true
}

/// Detach the connection from everything that can reach it — the
/// poller, its channel subscriptions (live and replay-handed-off), the
/// fan-out — then sever the socket. The final `evict` (not just closing
/// the queue) matters: the resume session table can outlive the reactor's
/// state for this conn, so the socket must be shut down explicitly for
/// the peer to observe EOF and begin reconnecting.
fn teardown_conn(state: &Arc<State>, poller: &mut dyn Poller, mut cs: ConnState) {
    poller.deregister(cs.fd);
    cs.conn.alive.store(false, Ordering::Relaxed);
    for (chan, sub) in cs.subscriptions.drain(..) {
        if let Some(fanout) = state.channel(chan) {
            fanout
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .retain(|id, _| id != sub);
        }
    }
    // Subscriptions a replay thread handed off to live delivery. The
    // replay side re-checks `alive` after registering and removes its
    // own registration if it lost the race with this take; retain() is
    // idempotent, so whichever side runs second is a no-op.
    let durable = std::mem::take(
        &mut *cs
            .conn
            .durable_subs
            .lock()
            .unwrap_or_else(|p| p.into_inner()),
    );
    for (chan, sub) in durable {
        if let Some(fanout) = state.channel(chan) {
            fanout
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .retain(|id, _| id != sub);
        }
    }
    cs.conn.outbound.close();
    cs.conn.evict();
    state.drop_lag_entries(cs.conn.id);
    if cs.counted_active {
        state
            .flight
            .record(FL_EVICT, cs.conn.id, 0, 0, u64::from(cs.conn.shard_idx));
        state.metrics.active_connections.dec();
    }
}

// ---------------------------------------------------------------------------
// Per-connection protocol machine.

fn send_error(state: &State, conn: &ConnShared, code: u32, message: impl Into<String>) {
    state.flight.record(FL_PROTO_ERROR, conn.id, 0, code, 0);
    conn.send(Frame::with_body(
        K_ERROR,
        code,
        0,
        message.into().into_bytes(),
    ));
}

/// The handshake: one HELLO frame, validated and acked. Errors are
/// queued (the reactor flushes them) and end the session.
fn handle_hello(state: &Arc<State>, ctx: &mut SessionCtx, header: &FrameHeader, body: &[u8]) {
    let conn = ctx.conn;
    if header.kind != K_HELLO {
        send_error(state, conn, E_PROTOCOL, "expected HELLO");
        *ctx.closing = true;
        return;
    }
    if header.a != PROTOCOL_VERSION {
        send_error(
            state,
            conn,
            E_VERSION,
            format!("unsupported protocol version {}", header.a),
        );
        *ctx.closing = true;
        return;
    }
    let arch_ok = std::str::from_utf8(body)
        .ok()
        .and_then(ArchProfile::by_name)
        .is_some();
    if !arch_ok {
        send_error(state, conn, E_ARCH, "unknown architecture profile");
        *ctx.closing = true;
        return;
    }
    // Grant the intersection of what the client offered and what this
    // daemon speaks, and sample our clock while serving the HELLO — the
    // client's half of the offset exchange brackets this exchange.
    let mut supported = CAP_TRACE | CAP_RESUME;
    if state.store.is_some() {
        supported |= CAP_DURABLE;
    }
    if state.mesh.is_some() {
        supported |= CAP_PEER;
    }
    let granted = header.b & supported;
    conn.caps.store(granted, Ordering::Relaxed);
    let mut ack_body = Vec::with_capacity(16);
    ack_body.extend_from_slice(&granted.to_be_bytes());
    ack_body.extend_from_slice(&epoch_ns().to_be_bytes());
    ack_body.extend_from_slice(&state.trace_mod.load(Ordering::Relaxed).to_be_bytes());
    conn.send(Frame::with_body(
        K_HELLO_ACK,
        PROTOCOL_VERSION,
        conn.id,
        ack_body,
    ));
    // A peer daemon just connected: dump the whole format registry at
    // it. Together with the symmetric dump the dialing side performs,
    // this is the gossip that lets remote-origin events decode
    // everywhere — a late joiner learns every layout registered before
    // it existed, and fresh registrations broadcast from then on.
    if granted & CAP_PEER != 0 {
        for id in 0..state.formats.len() as u32 {
            if let Some(meta) = state.formats.meta(id) {
                conn.send(Frame::with_body(K_FORMAT, id, 0, WireBuf::from(meta)));
            }
        }
    }
    state.metrics.active_connections.inc();
    state
        .flight
        .record(FL_CONNECT, conn.id, 0, 0, u64::from(granted));
    *ctx.counted_active = true;
    *ctx.phase = Phase::Active;
}

/// Dispatch one complete, checksum-valid frame through the protocol
/// machine. Runs on the owning reactor; every reply goes through the
/// connection's outbound queue.
fn handle_frame(state: &Arc<State>, ctx: &mut SessionCtx, header: &FrameHeader, body: &[u8]) {
    if matches!(ctx.phase, Phase::AwaitHello) {
        handle_hello(state, ctx, header, body);
        return;
    }
    let conn = ctx.conn;

    match header.kind {
        K_FORMAT => match state.formats.register_meta(body) {
            Ok((id, _, fresh)) => {
                conn.send(Frame::control(K_FORMAT_ACK, header.a, id));
                // In a mesh, a layout registered here must decode on
                // every member: gossip fresh registrations to all peers
                // (minus whoever just told us — its registry already
                // has it).
                if fresh {
                    let from_peer = (conn.caps() & CAP_PEER != 0).then_some(conn.id);
                    state.broadcast_format(id, from_peer);
                }
            }
            Err(e) => send_error(state, conn, E_FORMAT, e.to_string()),
        },
        K_CHANNEL => match std::str::from_utf8(body) {
            Ok(name) => match state.open_channel_flags(name, header.b) {
                Ok(id) => {
                    conn.send(Frame::control(K_CHANNEL_ACK, header.a, id));
                }
                Err(msg) => send_error(state, conn, E_CHANNEL, msg),
            },
            Err(_) => send_error(state, conn, E_PROTOCOL, "channel name is not UTF-8"),
        },
        K_SUBSCRIBE => {
            let predicate = if header.b == 1 {
                match deserialize_predicate(body) {
                    Ok(p) => Some(p),
                    Err(e) => {
                        send_error(state, conn, E_PREDICATE, e.to_string());
                        return;
                    }
                }
            } else {
                None
            };
            let Some(fanout) = state.channel(header.a) else {
                send_error(
                    state,
                    conn,
                    E_CHANNEL,
                    format!("unknown channel {}", header.a),
                );
                return;
            };
            // A durable channel's live subscriber starts caught up: its
            // lag watermark seeds at the head and advances per delivery.
            let delivered = state
                .log(header.a)
                .map(|log| state.lag_entry(header.a, conn.id, log.head()));
            let sub = RemoteSubscriber {
                conn: conn.clone(),
                channel: header.a,
                predicate,
                compiled: HashMap::new(),
                formats: state.formats.clone(),
                sink: state.hops.clone(),
                hops: state.chan_hops(header.a),
                evicted_stalled: state.metrics.evicted_stalled.clone(),
                delivered,
            };
            let id = fanout
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .subscribe(sub);
            ctx.subscriptions.push((header.a, id));
            conn.send(Frame::control(K_SUBSCRIBE_ACK, header.a, 0));
            // First local interest in a remote-homed channel: relay it.
            // All publishes flow through the home daemon's fan-out, so
            // a relay subscription there feeds every local subscriber
            // through this one link (the link dedups by name; peers
            // never trigger relays — their subscriptions *are* relays).
            if let Some(mesh) = &state.mesh {
                if conn.caps() & CAP_PEER == 0 {
                    if let Some((name, home)) = state.channel_route(header.a) {
                        if home != mesh.index {
                            mesh.ensure_relay_sub(home, name, header.a);
                        }
                    }
                }
            }
        }
        K_SUBSCRIBE_FROM => {
            if conn.caps() & CAP_DURABLE == 0 {
                send_error(
                    state,
                    conn,
                    E_PROTOCOL,
                    "subscribe_from without negotiated durability capability",
                );
                return;
            }
            if body.len() < 8 {
                send_error(state, conn, E_PROTOCOL, "subscribe_from body lacks offset");
                return;
            }
            let from = u64::from_be_bytes(body[..8].try_into().unwrap());
            let Some(log) = state.log(header.a) else {
                send_error(
                    state,
                    conn,
                    E_CHANNEL,
                    format!("channel {} is not durable", header.a),
                );
                return;
            };
            // Claim a bounded replay slot before acking: replays run
            // on dedicated threads, and an unbounded spawn rate is a
            // resource-exhaustion vector. A refused claim is a typed,
            // retryable error — the subscription does not exist.
            let claimed =
                state
                    .active_replays
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                        (n < state.max_replay).then_some(n + 1)
                    });
            if claimed.is_err() {
                send_error(
                    state,
                    conn,
                    E_BUSY,
                    format!(
                        "replay concurrency limit ({}) reached; retry later",
                        state.max_replay
                    ),
                );
                return;
            }
            let guard = ReplayGuard(state.clone());
            // Ack first, then stream: the subscriber knows history
            // follows. The replay thread walks the segment log,
            // paces itself on the subscriber's queue so replayed
            // frames never hit drop-oldest, and registers a live
            // subscription at the exact point disk has caught up
            // with the channel head — one gapless sequence.
            conn.send(Frame::control(K_SUBSCRIBE_ACK, header.a, 0));
            // The replaying consumer is visible in the lag books from
            // the first moment: watermark seeded where the replay will
            // start, advanced by the replay thread as it streams.
            let delivered =
                state.lag_entry(header.a, conn.id, from.max(log.oldest()).min(log.head()));
            let rp_state = state.clone();
            let rp_conn = conn.clone();
            let chan = header.a;
            let handle = std::thread::Builder::new()
                .name("pbio-serv-replay".into())
                .spawn(move || {
                    let _slot = guard;
                    replay_loop(rp_state, rp_conn, chan, log, from, delivered);
                });
            if let Ok(h) = handle {
                let mut threads = state
                    .replay_threads
                    .lock()
                    .unwrap_or_else(|p| p.into_inner());
                // Reap finished replays so a long-lived daemon does
                // not hoard exited thread handles.
                let mut i = 0;
                while i < threads.len() {
                    if threads[i].is_finished() {
                        let _ = threads.swap_remove(i).join();
                    } else {
                        i += 1;
                    }
                }
                threads.push(h);
            }
        }
        K_PUBLISH => {
            state.metrics.events_in.inc();
            let traced = header.b & TRACE_FLAG != 0;
            let format = header.b & !TRACE_FLAG;
            let Some(layout) = state.formats.lookup(format) else {
                send_error(state, conn, E_FORMAT, format!("unknown format {format}"));
                return;
            };
            let trailer = if traced { TRACE_TRAILER_LEN } else { 0 };
            if body.len() < layout.size() + trailer {
                send_error(
                    state,
                    conn,
                    E_PROTOCOL,
                    format!(
                        "event payload is {} bytes, format {format} requires {}",
                        body.len(),
                        layout.size() + trailer
                    ),
                );
                return;
            }
            // A flagged trailer is only meaningful on a session that
            // negotiated the capability, and its reserved bits must
            // decode — either failure is a protocol error the session
            // survives (the event is not published).
            let ctx = if traced {
                if conn.caps() & CAP_TRACE == 0 {
                    send_error(
                        state,
                        conn,
                        E_PROTOCOL,
                        "trace trailer without negotiated capability",
                    );
                    return;
                }
                match TraceCtx::decode(&body[body.len() - TRACE_TRAILER_LEN..]) {
                    Some(c) => Some(c).filter(|c| c.sampled()),
                    None => {
                        send_error(state, conn, E_PROTOCOL, "malformed trace trailer");
                        return;
                    }
                }
            } else {
                None
            };
            let Some(fanout) = state.channel(header.a) else {
                send_error(
                    state,
                    conn,
                    E_CHANNEL,
                    format!("unknown channel {}", header.a),
                );
                return;
            };
            if let Some(ctx) = &ctx {
                // The publisher's own stamp is the trace origin; the
                // ingress stamp is taken here, after the frame is off
                // the socket and validated.
                let t = epoch_ns();
                let dur = t.saturating_sub(ctx.origin_ns);
                if let Some(h) = state.chan_hops(header.a) {
                    h.ingress_ns.record(dur);
                }
                state.hops.push(TraceHop {
                    trace_id: ctx.trace_id,
                    span_id: ctx.span_id,
                    hop: HOP_PUBLISH,
                    conn: conn.id,
                    channel: header.a,
                    t_ns: ctx.origin_ns,
                    dur_ns: 0,
                });
                state.hops.push(TraceHop {
                    trace_id: ctx.trace_id,
                    span_id: ctx.span_id,
                    hop: HOP_INGRESS,
                    conn: conn.id,
                    channel: header.a,
                    t_ns: t,
                    dur_ns: dur,
                });
            }
            // The one allocation a published event costs, however
            // many subscribers it fans out to: its shared body. A
            // sampled trailer rides along (fan-out slices it off per
            // subscriber as needed); an unsampled one is dead weight
            // and is dropped here.
            let payload = match ctx {
                None if traced => &body[..body.len() - TRACE_TRAILER_LEN],
                _ => body,
            };
            // Mesh routing: a publish from an ordinary client whose
            // channel is homed elsewhere is forwarded to the home
            // daemon and NOT fanned out here — the home's fan-out is
            // the channel's single ordering point, so nothing is ever
            // delivered twice. Publishes arriving over a peer link
            // (`CAP_PEER`) are the forwarded copies: they always fan
            // out locally and are never re-forwarded, which is the
            // structural guard against relay loops.
            if let Some(mesh) = &state.mesh {
                if conn.caps() & CAP_PEER == 0 {
                    if let Some((name, home)) = state.channel_route(header.a) {
                        if home != mesh.index {
                            mesh.forward(
                                home,
                                name,
                                format,
                                ctx.is_some(),
                                WireBuf::copy_from(payload),
                            );
                            return;
                        }
                    }
                }
            }
            // When no store is configured this is a single Option
            // check: the disabled path adds no allocation and no
            // syscall to the publish hot loop.
            let log = if state.store.is_some() {
                state.log(header.a)
            } else {
                None
            };
            let mut fanout = fanout.lock().unwrap_or_else(|p| p.into_inner());
            let before = fanout.stats();
            match log {
                None => {
                    let wire = WireBuf::copy_from(payload);
                    let _ = fanout.publish_traced(format, &wire, ctx.as_ref());
                }
                Some(log) => {
                    // Reserve the offset, enqueue the disk append and
                    // fan out — all under the fan-out lock, so the
                    // per-channel store-queue order matches offset
                    // order and replay handoff can freeze the head.
                    // (The store thread never takes a fan-out lock,
                    // so fanout -> store-queue is a safe lock order.)
                    let offset = log.reserve(1);
                    let mut v = Vec::with_capacity(payload.len() + OFFSET_TRAILER_LEN);
                    v.extend_from_slice(payload);
                    v.extend_from_slice(&offset.to_be_bytes());
                    let wire = WireBuf::from(v);
                    let trace_len = if ctx.is_some() { TRACE_TRAILER_LEN } else { 0 };
                    let clean = wire.slice(0, payload.len() - trace_len);
                    state.store_q.push(AppendReq {
                        log: log.clone(),
                        chan: header.a,
                        offset,
                        format,
                        payload: clean,
                        conn: Arc::downgrade(conn),
                    });
                    let _ = fanout.publish_traced(format | OFFSET_FLAG, &wire, ctx.as_ref());
                }
            }
            let after = fanout.stats();
            // Drops are already counted by the fan-out's obs hook;
            // only the filter suppressions need mirroring here.
            state
                .metrics
                .filtered_at_source
                .add(after.filtered_out - before.filtered_out);
        }
        K_STATS => match state.encode_stats() {
            Some((format, wire)) => {
                // Announce the snapshot's format once per connection
                // (under the same lock the event path uses), so the
                // client can decode the body that follows.
                let mut ann = conn.announced.lock().unwrap_or_else(|p| p.into_inner());
                if !ann.contains(&format) {
                    if let Some(meta) = state.formats.meta(format) {
                        conn.send(Frame::with_body(K_ANNOUNCE, format, 0, WireBuf::from(meta)));
                        ann.insert(format);
                    }
                }
                conn.send(Frame::with_body(K_STATS_ACK, header.a, format, wire));
                drop(ann);
            }
            None => send_error(state, conn, E_FORMAT, "stats snapshot encoding failed"),
        },
        // The pull side of the introspection plane: capture live
        // topology, announce the fixed `$topo` format once per
        // connection, and answer with the snapshot's NDR bytes — the
        // same record the `$topo` channel pushes.
        K_INSPECT => match state.encode_topo() {
            Some((format, wire)) => {
                let mut ann = conn.announced.lock().unwrap_or_else(|p| p.into_inner());
                if !ann.contains(&format) {
                    if let Some(meta) = state.formats.meta(format) {
                        conn.send(Frame::with_body(K_ANNOUNCE, format, 0, WireBuf::from(meta)));
                        ann.insert(format);
                    }
                }
                conn.send(Frame::with_body(K_INSPECT_ACK, header.a, format, wire));
                drop(ann);
            }
            None => send_error(state, conn, E_FORMAT, "topology snapshot encoding failed"),
        },
        K_TRACE_CTL => {
            let prev = state.trace_mod.swap(header.b, Ordering::Relaxed);
            conn.send(Frame::control(K_TRACE_CTL_ACK, header.a, prev));
        }
        K_TAP_CTL => {
            let Some(tap) = &state.tap else {
                send_error(
                    state,
                    conn,
                    E_PROTOCOL,
                    "tap control on a daemon with no capture plane configured",
                );
                return;
            };
            let param = match body {
                [] => 0,
                [p0, p1, p2, p3] => u32::from_be_bytes([*p0, *p1, *p2, *p3]),
                _ => {
                    send_error(state, conn, E_PROTOCOL, "malformed tap control body");
                    return;
                }
            };
            let Some(mode) = TapMode::from_wire(header.b, param) else {
                send_error(
                    state,
                    conn,
                    E_PROTOCOL,
                    format!("unknown tap mode {} (param {param})", header.b),
                );
                return;
            };
            let prev = tap.set_mode(mode);
            if mode == TapMode::Off {
                if prev != TapMode::Off {
                    state
                        .flight
                        .record(FL_TAP_STOP, conn.id, 0, 0, tap.captured());
                }
            } else {
                state
                    .flight
                    .record(FL_TAP_START, conn.id, 0, header.b, u64::from(param));
            }
            let (prev_mode, _) = prev.to_wire();
            conn.send(Frame::control(K_TAP_CTL_ACK, header.a, prev_mode));
        }
        // A peer probing us gets the echo; a pong (the answer to our
        // own probe) needs no handling beyond the `last_rx` refresh
        // every received frame already performed.
        K_PING => {
            conn.send(Frame::control(K_PONG, header.a, 0));
        }
        K_PONG => {}
        K_RESUME => {
            if conn.caps() & CAP_RESUME == 0 {
                send_error(
                    state,
                    conn,
                    E_PROTOCOL,
                    "resume without negotiated capability",
                );
                return;
            }
            if body.len() < 8 {
                send_error(state, conn, E_PROTOCOL, "resume body lacks client id");
                return;
            }
            let client_id = u64::from_be_bytes(body[..8].try_into().unwrap());
            let epoch = header.a;
            let mut sessions = state.sessions.lock().unwrap_or_else(|p| p.into_inner());
            // Epochs are monotonic per identity: an attempt at or
            // below the registered epoch is the stale duplicate
            // (e.g. a zombie predecessor racing the reconnect), and
            // is refused so it cannot hijack the session. A newer
            // epoch supersedes: the predecessor connection is forced
            // down before the successor takes over.
            let prior_epoch = sessions.get(&client_id).map(|p| p.epoch);
            if let Some(prior_epoch) = prior_epoch {
                if prior_epoch >= epoch {
                    drop(sessions);
                    state.metrics.resumes_stale.inc();
                    send_error(
                        state,
                        conn,
                        E_STALE,
                        format!("epoch {epoch} is not newer than {prior_epoch}"),
                    );
                    // A refused resume closes the session: the zombie
                    // must not linger half-attached.
                    *ctx.closing = true;
                    return;
                }
            }
            let old = sessions.get(&client_id).and_then(|p| p.conn.upgrade());
            if let Some(old) = old {
                if old.id != conn.id {
                    old.evict();
                }
            }
            sessions.insert(
                client_id,
                Session {
                    epoch,
                    conn: Arc::downgrade(conn),
                },
            );
            drop(sessions);
            state.metrics.resumes.inc();
            state
                .flight
                .record(FL_RESUME, conn.id, 0, 0, u64::from(epoch));
            conn.send(Frame::control(K_RESUME_ACK, epoch, 0));
        }
        K_BYE => {
            conn.send(Frame::control(K_BYE_ACK, 0, 0));
            *ctx.closing = true;
        }
        other => send_error(
            state,
            conn,
            E_PROTOCOL,
            format!("unexpected frame kind {other:#04x}"),
        ),
    }
}

/// The store writer: drains the publish→disk queue in batches, groups
/// consecutive same-channel runs into one `append_batch` (one flush
/// boundary each), then acks the publishers whose events just became
/// durable. Runs until the queue is closed *and* drained, so graceful
/// shutdown never abandons an accepted append.
/// Publisher acks accumulated across one drained store batch:
/// conn id → (conn, per-channel (count, last offset)).
type PendingAcks = HashMap<u32, (Arc<ConnShared>, HashMap<u32, (u32, u64)>)>;

fn store_loop(state: Arc<State>) {
    let append_ns = state.registry.histogram("store_append_ns");
    let torn = state.store.as_ref().map(|s| s.metrics().torn_tails.clone());
    let mut torn_seen = torn.as_ref().map_or(0, |c| c.get());
    let mut batch: Vec<AppendReq> = Vec::with_capacity(512);
    loop {
        batch.clear();
        if !state.store_q.pop_batch(&mut batch, 512) {
            break;
        }
        let mut acks: PendingAcks = HashMap::new();
        let mut i = 0;
        while i < batch.len() {
            // One consecutive run of the same channel log = one batched
            // append (requests were queued in offset order per channel,
            // under the fan-out lock).
            let log = batch[i].log.clone();
            let mut j = i;
            while j < batch.len() && Arc::ptr_eq(&batch[j].log, &log) {
                j += 1;
            }
            let recs: Vec<Append<'_>> = batch[i..j]
                .iter()
                .map(|r| Append {
                    offset: r.offset,
                    format: r.format,
                    payload: &r.payload,
                })
                .collect();
            let appended = {
                let _span = Span::enter(&append_ns);
                log.append_batch(&recs, &mut |id| state.formats.meta(id))
            };
            match appended {
                Ok(()) => {
                    for r in &batch[i..j] {
                        let Some(conn) = r.conn.upgrade() else {
                            continue;
                        };
                        if conn.caps() & CAP_DURABLE == 0 {
                            continue;
                        }
                        let (_, chans) = acks
                            .entry(conn.id)
                            .or_insert_with(|| (conn.clone(), HashMap::new()));
                        let e = chans.entry(r.chan).or_insert((0, 0));
                        e.0 += 1;
                        e.1 = r.offset;
                    }
                }
                Err(e) => {
                    // append_batch already counted the failure and
                    // repaired what it could; the unacked suffix is lost
                    // durability the publisher never got promised.
                    eprintln!("pbio-serv: store append failed: {e}");
                }
            }
            i = j;
        }
        // Live torn-tail repairs (append hit a fault, recovery truncated
        // and re-appended) are flight-recorder moments.
        if let Some(c) = &torn {
            let now = c.get();
            if now > torn_seen {
                state.flight.record(FL_REPAIR, 0, 0, 0, now);
                torn_seen = now;
            }
        }
        // Acks ride the ordinary outbound queues as control frames (so
        // they are never drop-oldest'd): b = newly-durable count, body =
        // the last durable offset.
        for (_, (conn, chans)) in acks {
            for (chan, (count, last)) in chans {
                conn.send(Frame::with_body(
                    K_PUBLISH_ACK,
                    chan,
                    count,
                    WireBuf::from(last.to_be_bytes().to_vec()),
                ));
            }
        }
    }
    if let Some(store) = &state.store {
        let _ = store.sync_all();
    }
}

/// Replay history for one `K_SUBSCRIBE_FROM`, then hand off to live
/// delivery without a gap: walk the segment log from `from`, stream each
/// record as a `K_EVENT` with the offset trailer, and register a live
/// subscription under the fan-out lock exactly when disk has caught up
/// with the channel head.
fn replay_loop(
    state: Arc<State>,
    conn: Arc<ConnShared>,
    chan: u32,
    log: Arc<ChannelLog>,
    from: u64,
    delivered: Arc<AtomicU64>,
) {
    if let Some(store) = &state.store {
        store.metrics().replays.inc();
    }
    // Retention may have retired segments below `from`; start at the
    // oldest record still on disk rather than failing the subscribe.
    let mut next = from.max(log.oldest());
    state.flight.record(FL_REPLAY_START, conn.id, chan, 0, next);
    // Format ids are assigned per daemon run; a record appended before a
    // restart may carry an id the current registry assigned to a
    // different layout (or none). Each segment is self-describing, so
    // re-register its meta and map recorded id → current id as we go.
    let mut fmt_map: HashMap<u32, Option<u32>> = HashMap::new();
    // Pace replay off the subscriber's queue: stream a chunk, then wait
    // for the writer to drain below a low-water mark before the next.
    // Replayed history must never be drop-oldest'd — the whole point of
    // `subscribe_from` is losslessness.
    let chunk = (state.queue_capacity / 4).max(16);
    let low_water = chunk;
    loop {
        if !conn.alive.load(Ordering::Relaxed) || state.shutdown.load(Ordering::Relaxed) {
            return;
        }
        while conn.outbound.event_backlog() > low_water {
            if !conn.alive.load(Ordering::Relaxed) || state.shutdown.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let readable = log.readable();
        if next < readable {
            let to = readable.min(next + chunk as u64);
            let sent = log.read_range(next, to, &mut |item| match item {
                ReplayItem::Meta { format, meta } => {
                    let current = fmt_map.entry(format).or_insert_with(|| {
                        state.formats.register_meta(meta).ok().map(|(id, _, _)| id)
                    });
                    let Some(current) = *current else { return };
                    let mut ann = conn.announced.lock().unwrap_or_else(|p| p.into_inner());
                    if ann.insert(current) {
                        if let Some(m) = state.formats.meta(current) {
                            conn.send(Frame::with_body(K_ANNOUNCE, current, 0, WireBuf::from(m)));
                        }
                    }
                }
                ReplayItem::Event {
                    offset,
                    format,
                    payload,
                } => {
                    let Some(Some(current)) = fmt_map.get(&format) else {
                        // Its meta failed to register — undecodable for
                        // this daemon, skip rather than ship garbage.
                        return;
                    };
                    let mut v = Vec::with_capacity(payload.len() + OFFSET_TRAILER_LEN);
                    v.extend_from_slice(payload);
                    v.extend_from_slice(&offset.to_be_bytes());
                    conn.send(Frame::with_body(
                        K_EVENT,
                        chan,
                        current | OFFSET_FLAG,
                        WireBuf::from(v),
                    ));
                }
            });
            match sent {
                Ok(_) => {
                    next = to;
                    // The streamed chunk is delivered: the lag watermark
                    // tracks replay progress, not just live delivery.
                    delivered.fetch_max(next, Ordering::Relaxed);
                }
                Err(e) => {
                    send_error(&state, &conn, E_CHANNEL, format!("replay failed: {e}"));
                    return;
                }
            }
            continue;
        }
        // Disk is caught up with everything flushed. Try the handoff: if,
        // under the fan-out lock, nothing is still in flight between the
        // flushed frontier and the head (publishers reserve offsets under
        // this same lock, so the head is frozen here), a live
        // subscription registered now continues the sequence gaplessly.
        let Some(fanout) = state.channel(chan) else {
            return;
        };
        let mut f = fanout.lock().unwrap_or_else(|p| p.into_inner());
        if log.readable() >= log.head() && next >= log.head() {
            let sub = RemoteSubscriber {
                conn: conn.clone(),
                channel: chan,
                predicate: None,
                compiled: HashMap::new(),
                formats: state.formats.clone(),
                sink: state.hops.clone(),
                hops: state.chan_hops(chan),
                evicted_stalled: state.metrics.evicted_stalled.clone(),
                delivered: Some(delivered.clone()),
            };
            let id = f.subscribe(sub);
            drop(f);
            state
                .flight
                .record(FL_REPLAY_FINISH, conn.id, chan, 0, next);
            conn.durable_subs
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push((chan, id));
            // Closes the race with connection teardown: if the conn died
            // between registration and our push, its teardown may have
            // drained `durable_subs` before we added this entry — remove
            // our own registration (idempotent with teardown's).
            if !conn.alive.load(Ordering::Relaxed) {
                fanout
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .retain(|sid, _| sid != id);
            }
            return;
        }
        drop(f);
        // Appends are still in flight between `readable` and `head`;
        // yield until the store writer flushes them.
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbound_drops_oldest_event_but_never_control_frames() {
        let out = Outbound::new(2, Duration::from_secs(60));
        assert!(matches!(
            out.send(Frame::with_body(K_EVENT, 0, 0, vec![1])),
            Enqueue::Sent
        ));
        assert!(matches!(
            out.send(Frame::with_body(K_EVENT, 0, 0, vec![2])),
            Enqueue::Sent
        ));
        // Control frame squeezes in regardless of the event budget.
        assert!(matches!(
            out.send(Frame::control(K_SUBSCRIBE_ACK, 0, 0)),
            Enqueue::Sent
        ));
        // Third event evicts the oldest event, not the ack.
        assert!(matches!(
            out.send(Frame::with_body(K_EVENT, 0, 0, vec![3])),
            Enqueue::DroppedOldest
        ));
        out.close();
        let mut kinds_bodies: Vec<(u8, Vec<u8>)> = Vec::new();
        while let Some(f) = out.pop() {
            kinds_bodies.push((f.kind, f.body.to_vec()));
        }
        assert_eq!(
            kinds_bodies,
            vec![
                (K_EVENT, vec![2]),
                (K_SUBSCRIBE_ACK, vec![]),
                (K_EVENT, vec![3]),
            ]
        );
    }

    #[test]
    fn try_pop_batch_drains_everything_queued() {
        let out = Outbound::new(8, Duration::from_secs(60));
        for i in 0..5u8 {
            out.send(Frame::with_body(K_EVENT, 0, 0, vec![i]));
        }
        out.send(Frame::control(K_SUBSCRIBE_ACK, 0, 0));
        let mut batch = Vec::new();
        let mut traces = Vec::new();
        assert!(matches!(
            out.try_pop_batch(&mut batch, &mut traces, MAX_WRITE_BATCH),
            Drained::Got
        ));
        assert_eq!(batch.len(), 6, "one wakeup drains the whole queue");
        assert_eq!(traces.len(), 6, "trace slots stay parallel to frames");
        // An empty open queue reports Empty, not end-of-stream.
        batch.clear();
        traces.clear();
        assert!(matches!(
            out.try_pop_batch(&mut batch, &mut traces, MAX_WRITE_BATCH),
            Drained::Empty
        ));
        // Event accounting went down with the drain: room for more again.
        for i in 0..8u8 {
            assert!(matches!(
                out.send(Frame::with_body(K_EVENT, 0, 0, vec![i])),
                Enqueue::Sent
            ));
        }
        let mut rest = Vec::new();
        let mut rest_traces = Vec::new();
        assert!(matches!(
            out.try_pop_batch(&mut rest, &mut rest_traces, 3),
            Drained::Got
        ));
        assert_eq!(rest.len(), 3, "batch size is capped by `max`");
        out.close();
        let mut tail = Vec::new();
        let mut tail_traces = Vec::new();
        assert!(matches!(
            out.try_pop_batch(&mut tail, &mut tail_traces, MAX_WRITE_BATCH),
            Drained::Got
        ));
        assert_eq!(tail.len(), 5, "close still drains queued frames");
        assert!(matches!(
            out.try_pop_batch(&mut tail, &mut tail_traces, MAX_WRITE_BATCH),
            Drained::Done
        ));
    }

    #[test]
    fn outbound_close_drains_then_ends() {
        let out = Outbound::new(4, Duration::from_secs(60));
        out.send(Frame::control(K_BYE_ACK, 0, 0));
        out.close();
        assert!(matches!(
            out.send(Frame::control(K_BYE_ACK, 0, 0)),
            Enqueue::Closed
        ));
        assert_eq!(out.pop().map(|f| f.kind), Some(K_BYE_ACK));
        assert!(out.pop().is_none());
    }

    #[test]
    fn open_channel_is_create_or_get() {
        let state = State::new(&ServConfig {
            queue_capacity: 4,
            stats_interval: None,
            ..ServConfig::default()
        })
        .unwrap();
        let a = state.open_channel("alpha");
        let b = state.open_channel("beta");
        assert_ne!(a, b);
        assert_eq!(state.open_channel("alpha"), a);
        assert!(state.channel(a).is_some());
        assert!(state.channel(99).is_none());
        // The stats channel is pre-opened and create-or-get finds it.
        assert_eq!(state.open_channel(STATS_CHANNEL), state.stats_channel);
    }

    #[test]
    fn encoded_stats_dedup_until_the_metric_set_changes() {
        let state = State::new(&ServConfig::default()).unwrap();
        state.metrics.events_in.add(3);
        let (fmt_a, wire_a) = state.encode_stats().expect("snapshot encodes");
        let (fmt_b, _) = state.encode_stats().expect("snapshot encodes");
        assert_eq!(
            fmt_a, fmt_b,
            "equal metric sets produce one registered format"
        );
        assert!(!wire_a.is_empty());
        // A new metric changes the schema, hence the format id.
        state.registry.counter("serv_extra").inc();
        let (fmt_c, _) = state.encode_stats().expect("snapshot encodes");
        assert_ne!(fmt_a, fmt_c);
    }
}
