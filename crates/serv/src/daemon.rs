//! The event-channel daemon: a thread-per-connection TCP server that
//! routes published events to subscribers, filtering at the source.
//!
//! All connections share one [`FormatServer`], so a format registered by
//! one publisher is known — under the same id — to every session, and its
//! metadata is validated and stored exactly once. Event bodies are the
//! publisher's NDR bytes and are forwarded verbatim; the daemon never
//! builds a conversion, which is what keeps the homogeneous
//! publisher/subscriber path zero-copy end to end.
//!
//! Each subscription may carry a predicate (shipped in the wire form of
//! [`pbio_chan::wire`]). The daemon compiles it with the DCG filter
//! machinery against each *publisher's* wire format — lazily, once per
//! (subscription, format) — and evaluates it before any bytes are queued,
//! so filtered events are never transmitted.
//!
//! Slow subscribers get a bounded outbound queue with a drop-oldest
//! policy: publishers never block on a stalled consumer, and control
//! frames (acks, format announcements) are exempt so the session itself
//! cannot be dropped.

use std::collections::{HashMap, HashSet, VecDeque};
use std::convert::Infallible;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use pbio::FormatServer;
use pbio_chan::dispatch::{DeliveryOutcome, Fanout, Subscriber, SubscriptionId};
use pbio_chan::filter::{FilterProgram, Predicate};
use pbio_chan::wire::deserialize_predicate;
use pbio_net::frame::{read_frame, write_frame, Frame, FrameError, FRAME_HEADER_SIZE};
use pbio_types::arch::ArchProfile;

use crate::protocol::*;

/// How often a blocked connection thread wakes to check for shutdown.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServConfig {
    /// Maximum events queued per connection before drop-oldest kicks in.
    pub queue_capacity: usize,
}

impl Default for ServConfig {
    fn default() -> ServConfig {
        ServConfig {
            queue_capacity: 256,
        }
    }
}

/// A snapshot of the daemon's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServStats {
    /// Connections currently in a session (post-handshake).
    pub active_connections: u64,
    /// Events received from publishers.
    pub events_in: u64,
    /// Event frames written to subscriber sockets.
    pub events_out: u64,
    /// (subscription, event) pairs suppressed by a filter before any
    /// bytes were queued or sent.
    pub filtered_at_source: u64,
    /// Events discarded by the drop-oldest backpressure policy.
    pub dropped: u64,
    /// Frame bytes received (headers + bodies).
    pub bytes_in: u64,
    /// Frame bytes sent (headers + bodies).
    pub bytes_out: u64,
}

#[derive(Default)]
struct Counters {
    active_connections: AtomicU64,
    events_in: AtomicU64,
    events_out: AtomicU64,
    filtered_at_source: AtomicU64,
    dropped: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServStats {
        ServStats {
            active_connections: self.active_connections.load(Ordering::Relaxed),
            events_in: self.events_in.load(Ordering::Relaxed),
            events_out: self.events_out.load(Ordering::Relaxed),
            filtered_at_source: self.filtered_at_source.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Outbound queue: bounded for events, unbounded for control frames.

struct OutboundQ {
    frames: VecDeque<Frame>,
    events: usize,
    closed: bool,
}

struct Outbound {
    q: Mutex<OutboundQ>,
    ready: Condvar,
    capacity: usize,
}

enum Enqueue {
    Sent,
    DroppedOldest,
    Closed,
}

impl Outbound {
    fn new(capacity: usize) -> Outbound {
        Outbound {
            q: Mutex::new(OutboundQ {
                frames: VecDeque::new(),
                events: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Queue a frame for the writer thread. Control frames always fit;
    /// when the event budget is exhausted the *oldest queued event* is
    /// discarded to admit the new one (fresh data beats stale data for
    /// monitoring-style consumers).
    fn send(&self, frame: Frame) -> Enqueue {
        let mut q = self.q.lock().unwrap_or_else(|p| p.into_inner());
        if q.closed {
            return Enqueue::Closed;
        }
        let is_event = frame.kind == K_EVENT;
        let mut outcome = Enqueue::Sent;
        if is_event && q.events >= self.capacity {
            if let Some(i) = q.frames.iter().position(|f| f.kind == K_EVENT) {
                q.frames.remove(i);
                q.events -= 1;
                outcome = Enqueue::DroppedOldest;
            }
        }
        if is_event {
            q.events += 1;
        }
        q.frames.push_back(frame);
        drop(q);
        self.ready.notify_one();
        outcome
    }

    fn close(&self) {
        let mut q = self.q.lock().unwrap_or_else(|p| p.into_inner());
        q.closed = true;
        drop(q);
        self.ready.notify_all();
    }

    /// Next frame to write; blocks. `None` once closed *and* drained, so
    /// already-queued acks still reach the peer after a graceful close.
    fn pop(&self) -> Option<Frame> {
        let mut q = self.q.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(f) = q.frames.pop_front() {
                if f.kind == K_EVENT {
                    q.events -= 1;
                }
                return Some(f);
            }
            if q.closed {
                return None;
            }
            q = self.ready.wait(q).unwrap_or_else(|p| p.into_inner());
        }
    }
}

// ---------------------------------------------------------------------------
// Per-connection shared state and the remote subscriber.

struct ConnShared {
    outbound: Outbound,
    /// Format ids already announced on this connection.
    announced: Mutex<HashSet<u32>>,
    alive: AtomicBool,
}

/// A subscription as seen by a channel's [`Fanout`]: the filter decision
/// plus "enqueue the untouched wire bytes on the connection".
struct RemoteSubscriber {
    conn: Arc<ConnShared>,
    channel: u32,
    predicate: Option<Predicate>,
    /// Filter compiled per publisher wire format, lazily. `None` records
    /// a format the predicate cannot be compiled against (e.g. it names a
    /// field that format lacks): such events can never satisfy the
    /// predicate, so they are rejected.
    compiled: HashMap<u32, Option<FilterProgram>>,
    formats: Arc<FormatServer>,
}

impl Subscriber for RemoteSubscriber {
    type Error = Infallible;

    fn accepts(&mut self, format: u32, wire: &[u8]) -> Result<bool, Infallible> {
        if !self.conn.alive.load(Ordering::Relaxed) {
            return Ok(false);
        }
        let RemoteSubscriber {
            predicate,
            compiled,
            formats,
            ..
        } = self;
        let Some(pred) = predicate else {
            return Ok(true);
        };
        let prog = compiled.entry(format).or_insert_with(|| {
            formats
                .lookup(format)
                .and_then(|layout| FilterProgram::compile(pred.clone(), layout).ok())
        });
        match prog {
            Some(p) => Ok(p.matches(wire).unwrap_or(false)),
            None => Ok(false),
        }
    }

    fn deliver(&mut self, format: u32, wire: &[u8]) -> Result<DeliveryOutcome, Infallible> {
        // Announce the format once per connection, strictly before its
        // first event; the lock spans both enqueues so a concurrent
        // publisher on another channel cannot interleave.
        let mut ann = self
            .conn
            .announced
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        if !ann.contains(&format) {
            if let Some(meta) = self.formats.meta(format) {
                self.conn
                    .outbound
                    .send(Frame::with_body(K_ANNOUNCE, format, 0, meta.to_vec()));
                ann.insert(format);
            }
        }
        let outcome = self.conn.outbound.send(Frame::with_body(
            K_EVENT,
            self.channel,
            format,
            wire.to_vec(),
        ));
        drop(ann);
        Ok(match outcome {
            Enqueue::Sent => DeliveryOutcome::Delivered,
            // The new event was admitted but an older one was discarded;
            // report the discard so it lands in the drop counters.
            Enqueue::DroppedOldest => DeliveryOutcome::Dropped,
            Enqueue::Closed => DeliveryOutcome::Dropped,
        })
    }
}

// ---------------------------------------------------------------------------
// Daemon state.

struct Channels {
    by_name: HashMap<String, u32>,
    by_id: HashMap<u32, Arc<Mutex<Fanout<RemoteSubscriber>>>>,
    next: u32,
}

struct State {
    formats: Arc<FormatServer>,
    channels: Mutex<Channels>,
    stats: Counters,
    shutdown: AtomicBool,
    queue_capacity: usize,
    next_conn: AtomicU64,
}

impl State {
    fn open_channel(&self, name: &str) -> u32 {
        let mut chans = self.channels.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(&id) = chans.by_name.get(name) {
            return id;
        }
        let id = chans.next;
        chans.next += 1;
        chans.by_name.insert(name.to_owned(), id);
        chans.by_id.insert(id, Arc::new(Mutex::new(Fanout::new())));
        id
    }

    fn channel(&self, id: u32) -> Option<Arc<Mutex<Fanout<RemoteSubscriber>>>> {
        self.channels
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .by_id
            .get(&id)
            .cloned()
    }
}

/// The event-channel daemon. Binding spawns the accept loop; dropping (or
/// calling [`ServDaemon::shutdown`]) stops it and joins every connection
/// thread.
pub struct ServDaemon {
    state: Arc<State>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServDaemon {
    /// Bind with default configuration.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<ServDaemon> {
        ServDaemon::bind_with(addr, ServConfig::default())
    }

    /// Bind and start serving. `addr` may be `"127.0.0.1:0"` to let the
    /// OS pick a port — see [`ServDaemon::local_addr`].
    pub fn bind_with(addr: impl ToSocketAddrs, config: ServConfig) -> io::Result<ServDaemon> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(State {
            formats: FormatServer::new(),
            channels: Mutex::new(Channels {
                by_name: HashMap::new(),
                by_id: HashMap::new(),
                next: 0,
            }),
            stats: Counters::default(),
            shutdown: AtomicBool::new(false),
            queue_capacity: config.queue_capacity,
            next_conn: AtomicU64::new(0),
        });
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_state = state.clone();
        let accept_conns = conn_threads.clone();
        let accept_thread = std::thread::Builder::new()
            .name("pbio-serv-accept".into())
            .spawn(move || accept_loop(listener, accept_state, accept_conns))?;
        Ok(ServDaemon {
            state,
            addr,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }

    /// The address the daemon is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared format registry (ids here are the protocol's format ids).
    pub fn formats(&self) -> &Arc<FormatServer> {
        &self.state.formats
    }

    /// Current counters.
    pub fn stats(&self) -> ServStats {
        self.state.stats.snapshot()
    }

    /// Stop accepting, disconnect everyone, and join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.state.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = {
            let mut conns = self.conn_threads.lock().unwrap_or_else(|p| p.into_inner());
            conns.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ServDaemon {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, state: Arc<State>, conns: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let conn_state = state.clone();
        let handle = std::thread::Builder::new()
            .name("pbio-serv-conn".into())
            .spawn(move || handle_connection(stream, conn_state));
        if let Ok(h) = handle {
            conns.lock().unwrap_or_else(|p| p.into_inner()).push(h);
        }
    }
}

// ---------------------------------------------------------------------------
// Per-connection protocol machine.

fn send_error(out: &Outbound, code: u32, message: impl Into<String>) {
    out.send(Frame::with_body(
        K_ERROR,
        code,
        0,
        message.into().into_bytes(),
    ));
}

fn handle_connection(mut stream: TcpStream, state: Arc<State>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));

    // --- Handshake: one HELLO, answered directly (no writer thread yet).
    let hello = loop {
        match read_frame(&mut stream) {
            Ok(f) => break f,
            Err(FrameError::Timeout) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    };
    if hello.kind != K_HELLO {
        let _ = write_frame(
            &mut stream,
            &Frame::with_body(K_ERROR, E_PROTOCOL, 0, b"expected HELLO".to_vec()),
        );
        return;
    }
    if hello.a != PROTOCOL_VERSION {
        let msg = format!("unsupported protocol version {}", hello.a);
        let _ = write_frame(
            &mut stream,
            &Frame::with_body(K_ERROR, E_VERSION, 0, msg.into_bytes()),
        );
        return;
    }
    let arch_ok = std::str::from_utf8(&hello.body)
        .ok()
        .and_then(ArchProfile::by_name)
        .is_some();
    if !arch_ok {
        let _ = write_frame(
            &mut stream,
            &Frame::with_body(K_ERROR, E_ARCH, 0, b"unknown architecture profile".to_vec()),
        );
        return;
    }
    let conn_id = state.next_conn.fetch_add(1, Ordering::Relaxed) as u32;
    if write_frame(
        &mut stream,
        &Frame::control(K_HELLO_ACK, PROTOCOL_VERSION, conn_id),
    )
    .is_err()
    {
        return;
    }

    // --- Session: all further writes go through the outbound queue.
    let conn = Arc::new(ConnShared {
        outbound: Outbound::new(state.queue_capacity),
        announced: Mutex::new(HashSet::new()),
        alive: AtomicBool::new(true),
    });
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let writer_conn = conn.clone();
    let writer_state = state.clone();
    let writer_thread = std::thread::Builder::new()
        .name("pbio-serv-write".into())
        .spawn(move || writer_loop(writer, writer_conn, writer_state));
    let Ok(writer_thread) = writer_thread else {
        return;
    };

    state
        .stats
        .active_connections
        .fetch_add(1, Ordering::Relaxed);
    let mut subscriptions: Vec<(u32, SubscriptionId)> = Vec::new();

    loop {
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(FrameError::Timeout) => {
                if state.shutdown.load(Ordering::SeqCst) || !conn.alive.load(Ordering::Relaxed) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        state.stats.bytes_in.fetch_add(
            (FRAME_HEADER_SIZE + frame.body.len()) as u64,
            Ordering::Relaxed,
        );
        match frame.kind {
            K_FORMAT => match state.formats.register_meta(&frame.body) {
                Ok((id, _, _)) => {
                    conn.outbound
                        .send(Frame::control(K_FORMAT_ACK, frame.a, id));
                }
                Err(e) => send_error(&conn.outbound, E_FORMAT, e.to_string()),
            },
            K_CHANNEL => match std::str::from_utf8(&frame.body) {
                Ok(name) => {
                    let id = state.open_channel(name);
                    conn.outbound
                        .send(Frame::control(K_CHANNEL_ACK, frame.a, id));
                }
                Err(_) => send_error(&conn.outbound, E_PROTOCOL, "channel name is not UTF-8"),
            },
            K_SUBSCRIBE => {
                let predicate = if frame.b == 1 {
                    match deserialize_predicate(&frame.body) {
                        Ok(p) => Some(p),
                        Err(e) => {
                            send_error(&conn.outbound, E_PREDICATE, e.to_string());
                            continue;
                        }
                    }
                } else {
                    None
                };
                let Some(fanout) = state.channel(frame.a) else {
                    send_error(
                        &conn.outbound,
                        E_CHANNEL,
                        format!("unknown channel {}", frame.a),
                    );
                    continue;
                };
                let sub = RemoteSubscriber {
                    conn: conn.clone(),
                    channel: frame.a,
                    predicate,
                    compiled: HashMap::new(),
                    formats: state.formats.clone(),
                };
                let id = fanout
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .subscribe(sub);
                subscriptions.push((frame.a, id));
                conn.outbound
                    .send(Frame::control(K_SUBSCRIBE_ACK, frame.a, 0));
            }
            K_PUBLISH => {
                state.stats.events_in.fetch_add(1, Ordering::Relaxed);
                let Some(layout) = state.formats.lookup(frame.b) else {
                    send_error(
                        &conn.outbound,
                        E_FORMAT,
                        format!("unknown format {}", frame.b),
                    );
                    continue;
                };
                if frame.body.len() < layout.size() {
                    send_error(
                        &conn.outbound,
                        E_PROTOCOL,
                        format!(
                            "event payload is {} bytes, format {} requires {}",
                            frame.body.len(),
                            frame.b,
                            layout.size()
                        ),
                    );
                    continue;
                }
                let Some(fanout) = state.channel(frame.a) else {
                    send_error(
                        &conn.outbound,
                        E_CHANNEL,
                        format!("unknown channel {}", frame.a),
                    );
                    continue;
                };
                let mut fanout = fanout.lock().unwrap_or_else(|p| p.into_inner());
                let before = fanout.stats();
                let _ = fanout.publish(frame.b, &frame.body);
                let after = fanout.stats();
                state
                    .stats
                    .filtered_at_source
                    .fetch_add(after.filtered_out - before.filtered_out, Ordering::Relaxed);
                state
                    .stats
                    .dropped
                    .fetch_add(after.dropped - before.dropped, Ordering::Relaxed);
            }
            K_BYE => {
                conn.outbound.send(Frame::control(K_BYE_ACK, 0, 0));
                break;
            }
            other => send_error(
                &conn.outbound,
                E_PROTOCOL,
                format!("unexpected frame kind {other:#04x}"),
            ),
        }
    }

    // --- Teardown: detach subscriptions, flush the queue, join the writer.
    conn.alive.store(false, Ordering::Relaxed);
    for (chan, sub) in subscriptions {
        if let Some(fanout) = state.channel(chan) {
            fanout
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .retain(|id, _| id != sub);
        }
    }
    conn.outbound.close();
    let _ = writer_thread.join();
    state
        .stats
        .active_connections
        .fetch_sub(1, Ordering::Relaxed);
}

fn writer_loop(mut stream: TcpStream, conn: Arc<ConnShared>, state: Arc<State>) {
    while let Some(frame) = conn.outbound.pop() {
        if write_frame(&mut stream, &frame).is_err() {
            // Peer gone: stop queuing for it and wake the reader.
            conn.alive.store(false, Ordering::Relaxed);
            conn.outbound.close();
            return;
        }
        if frame.kind == K_EVENT {
            state.stats.events_out.fetch_add(1, Ordering::Relaxed);
        }
        state.stats.bytes_out.fetch_add(
            (FRAME_HEADER_SIZE + frame.body.len()) as u64,
            Ordering::Relaxed,
        );
    }
    let _ = stream.shutdown(Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbound_drops_oldest_event_but_never_control_frames() {
        let out = Outbound::new(2);
        assert!(matches!(
            out.send(Frame::with_body(K_EVENT, 0, 0, vec![1])),
            Enqueue::Sent
        ));
        assert!(matches!(
            out.send(Frame::with_body(K_EVENT, 0, 0, vec![2])),
            Enqueue::Sent
        ));
        // Control frame squeezes in regardless of the event budget.
        assert!(matches!(
            out.send(Frame::control(K_SUBSCRIBE_ACK, 0, 0)),
            Enqueue::Sent
        ));
        // Third event evicts the oldest event, not the ack.
        assert!(matches!(
            out.send(Frame::with_body(K_EVENT, 0, 0, vec![3])),
            Enqueue::DroppedOldest
        ));
        out.close();
        let mut kinds_bodies: Vec<(u8, Vec<u8>)> = Vec::new();
        while let Some(f) = out.pop() {
            kinds_bodies.push((f.kind, f.body));
        }
        assert_eq!(
            kinds_bodies,
            vec![
                (K_EVENT, vec![2]),
                (K_SUBSCRIBE_ACK, vec![]),
                (K_EVENT, vec![3]),
            ]
        );
    }

    #[test]
    fn outbound_close_drains_then_ends() {
        let out = Outbound::new(4);
        out.send(Frame::control(K_BYE_ACK, 0, 0));
        out.close();
        assert!(matches!(
            out.send(Frame::control(K_BYE_ACK, 0, 0)),
            Enqueue::Closed
        ));
        assert_eq!(out.pop().map(|f| f.kind), Some(K_BYE_ACK));
        assert!(out.pop().is_none());
    }

    #[test]
    fn open_channel_is_create_or_get() {
        let state = State {
            formats: FormatServer::new(),
            channels: Mutex::new(Channels {
                by_name: HashMap::new(),
                by_id: HashMap::new(),
                next: 0,
            }),
            stats: Counters::default(),
            shutdown: AtomicBool::new(false),
            queue_capacity: 4,
            next_conn: AtomicU64::new(0),
        };
        let a = state.open_channel("alpha");
        let b = state.open_channel("beta");
        assert_ne!(a, b);
        assert_eq!(state.open_channel("alpha"), a);
        assert!(state.channel(a).is_some());
        assert!(state.channel(99).is_none());
    }
}
