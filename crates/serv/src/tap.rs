//! Wire-tap capture plane: per-connection frame capture, the capture
//! file codec, and deterministic session replay.
//!
//! The daemon's other observability surfaces summarize (`$stats`),
//! sample (`$trace`), or snapshot (`$topo`). The tap shows the wire
//! itself: with [`crate::ServConfig::tap`] set, every frame the daemon
//! receives or sends — direction, monotonic timestamp, connection id,
//! and the exact bytes — is recorded into a bounded in-memory ring,
//! which the background thread drains into crash-safe `pbio-store`
//! capture segments. Event bodies are captured by `WireBuf` refcount
//! bump, so the hot path stays zero-copy; with the tap off the cost is
//! one relaxed load per frame (enforced by the `obs_overhead --guard`
//! bench).
//!
//! A capture file is *self-describing*: it contains the session's own
//! `FORMAT`/`ANNOUNCE` frames, so the layouts needed to decode event
//! bodies travel inside the capture ([`capture_layouts`]) — `pbio-dump`
//! decodes a capture offline, record by record, with no daemon and no
//! out-of-band schema. And because the capture holds the client's exact
//! inbound frame sequence, a session can be *re-driven* against a fresh
//! daemon ([`replay_session`]) and the delivered event stream diffed
//! byte-for-byte against the captured one — any production capture is a
//! deterministic regression test.
//!
//! On-disk, each captured frame is one record in an ordinary store
//! segment (CRC-checked entries, torn-tail recovery on open), appended
//! under [`pbio_store::FORMAT_RAW`]:
//!
//! ```text
//! record := dir:u8  t_ns:u64be  conn:u32be  frame-wire-bytes
//! frame-wire-bytes := kind:u8 a:u32be b:u32be len:u32be crc:u32be body[len]
//! ```
//!
//! The embedded frame keeps its own header CRC, verified again at
//! decode time — a capture can never present a corrupted frame as
//! clean.

use std::collections::{HashMap, VecDeque};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pbio_net::frame::{
    crc32_finish, crc32_update, read_frame, write_frame, Frame, FrameError, CRC_INIT,
    FRAME_HEADER_SIZE, MAX_FRAME_BODY,
};
use pbio_net::WireBuf;
use pbio_store::{ReplayItem, Store, StoreConfig};
use pbio_types::layout::Layout;
use pbio_types::meta::deserialize_layout;

use crate::protocol::{
    K_ANNOUNCE, K_BYE_ACK, K_CHANNEL, K_CHANNEL_ACK, K_ERROR, K_EVENT, K_FORMAT, K_FORMAT_ACK,
    K_HELLO, K_HELLO_ACK, K_PING, K_PONG, K_PUBLISH, K_SUBSCRIBE, K_SUBSCRIBE_FROM, OFFSET_FLAG,
    TAP_CHANNEL, TAP_FULL, TAP_OFF, TAP_SAMPLED, TRACE_FLAG,
};

/// Direction tag of an inbound captured frame (client → daemon).
pub const TAP_IN: u8 = 0;
/// Direction tag of an outbound captured frame (daemon → client).
pub const TAP_OUT: u8 = 1;

/// Store channel name capture records are appended under (one channel
/// per capture directory).
pub const CAPTURE_CHANNEL: &str = "capture";

/// Fixed prefix a capture record adds before the frame's wire bytes:
/// `dir:u8 t_ns:u64be conn:u32be`.
const CAPTURE_PREFIX: usize = 13;

// ---------------------------------------------------------------------------
// Configuration.

/// What the tap records while it is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapMode {
    /// Record nothing (the hot path pays one relaxed load per frame).
    Off,
    /// Record every frame, both directions.
    Full,
    /// Record every control frame, but only one event frame
    /// (`PUBLISH`/`EVENT`) in N. The capture stays self-describing —
    /// handshakes, format registrations and announces are never sampled
    /// away — while the event volume drops by the modulus.
    Sampled(u32),
    /// Record every control frame, but only the event frames of one
    /// channel id.
    Channel(u32),
}

impl TapMode {
    /// The `(mode, param)` pair this mode crosses the wire as
    /// ([`crate::protocol::K_TAP_CTL`]).
    pub fn to_wire(self) -> (u32, u32) {
        match self {
            TapMode::Off => (TAP_OFF, 0),
            TapMode::Full => (TAP_FULL, 0),
            TapMode::Sampled(n) => (TAP_SAMPLED, n),
            TapMode::Channel(c) => (TAP_CHANNEL, c),
        }
    }

    /// Parse a wire `(mode, param)` pair; `None` for unknown modes or a
    /// zero sampling modulus.
    pub fn from_wire(mode: u32, param: u32) -> Option<TapMode> {
        match mode {
            TAP_OFF => Some(TapMode::Off),
            TAP_FULL => Some(TapMode::Full),
            TAP_SAMPLED if param > 0 => Some(TapMode::Sampled(param)),
            TAP_CHANNEL => Some(TapMode::Channel(param)),
            _ => None,
        }
    }
}

/// Wire-tap configuration ([`crate::ServConfig::tap`]).
#[derive(Debug, Clone)]
pub struct TapConfig {
    /// Directory the capture segments are written under (a `pbio-store`
    /// root, flushed every drained batch like a flight dump).
    pub dir: PathBuf,
    /// Mode the tap starts in. Changeable at run time with
    /// [`crate::protocol::K_TAP_CTL`]
    /// ([`crate::ServClient::tap_ctl`]).
    pub mode: TapMode,
    /// Bound on frames buffered between background drains. When the
    /// ring is full the *newest* frame is dropped (and counted): the
    /// session prefix already captured — handshake, formats, announces —
    /// is what keeps a capture decodable, so it is never evicted to
    /// admit more events.
    pub ring_capacity: usize,
}

impl TapConfig {
    /// Capture everything under `dir` with the default ring bound.
    pub fn new(dir: impl Into<PathBuf>) -> TapConfig {
        TapConfig {
            dir: dir.into(),
            mode: TapMode::Full,
            ring_capacity: 4096,
        }
    }
}

// ---------------------------------------------------------------------------
// The live tap: mode switch + bounded ring.

/// One captured frame, in memory, between the tap point and the drain.
/// The body is the frame's own [`WireBuf`] (outbound) or one copy of
/// the decoder's bytes (inbound) — either way the hot path never
/// re-encodes.
#[derive(Debug, Clone)]
pub struct TapEntry {
    /// [`pbio_obs::epoch_ns`] at the tap point.
    pub t_ns: u64,
    /// Daemon-assigned connection id.
    pub conn: u32,
    /// [`TAP_IN`] or [`TAP_OUT`].
    pub dir: u8,
    /// Frame kind.
    pub kind: u8,
    /// First kind-defined argument.
    pub a: u32,
    /// Second kind-defined argument.
    pub b: u32,
    /// Frame body (shared, not copied out of the send path).
    pub body: WireBuf,
}

impl TapEntry {
    /// Append this entry's capture record (prefix + frame wire bytes,
    /// CRC recomputed) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.dir);
        out.extend_from_slice(&self.t_ns.to_be_bytes());
        out.extend_from_slice(&self.conn.to_be_bytes());
        let body = self.body.as_slice();
        let mut h = [0u8; FRAME_HEADER_SIZE];
        h[0] = self.kind;
        h[1..5].copy_from_slice(&self.a.to_be_bytes());
        h[5..9].copy_from_slice(&self.b.to_be_bytes());
        h[9..13].copy_from_slice(&(body.len() as u32).to_be_bytes());
        let crc = crc32_finish(crc32_update(crc32_update(CRC_INIT, &h[..13]), body));
        h[13..17].copy_from_slice(&crc.to_be_bytes());
        out.extend_from_slice(&h);
        out.extend_from_slice(body);
    }
}

/// The runtime tap switch and capture buffer, shared by every reactor.
///
/// The disabled fast path is a single relaxed load ([`TapState::enabled`])
/// with no allocation — the property `obs_overhead --guard` enforces.
/// Enabled paths copy (inbound) or refcount-bump (outbound) the body and
/// push under a short mutex; the store append happens later, on the
/// background thread.
pub struct TapState {
    mode: AtomicU32,
    param: AtomicU32,
    /// Event frames seen by the sampler (mode [`TapMode::Sampled`]).
    seq: AtomicU64,
    /// Frames pushed into the ring since the daemon started.
    captured: AtomicU64,
    /// Frames dropped because the ring was full.
    dropped: AtomicU64,
    ring: Mutex<VecDeque<TapEntry>>,
    capacity: usize,
}

impl TapState {
    /// A tap starting in `mode`, buffering at most `ring_capacity`
    /// frames between drains.
    pub fn new(mode: TapMode, ring_capacity: usize) -> TapState {
        let (m, p) = mode.to_wire();
        TapState {
            mode: AtomicU32::new(m),
            param: AtomicU32::new(p),
            seq: AtomicU64::new(0),
            captured: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
            capacity: ring_capacity.max(1),
        }
    }

    /// One relaxed load: the per-frame cost of a disabled tap.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.mode.load(Ordering::Relaxed) != TAP_OFF
    }

    /// The mode currently in effect.
    pub fn mode(&self) -> TapMode {
        let m = self.mode.load(Ordering::Relaxed);
        let p = self.param.load(Ordering::Relaxed);
        TapMode::from_wire(m, p).unwrap_or(TapMode::Off)
    }

    /// Switch modes, returning the one previously in effect. Param is
    /// published before mode so a concurrent reader never pairs the new
    /// mode with the old parameter's *absence* — at worst it applies
    /// the old scope for one frame.
    pub fn set_mode(&self, mode: TapMode) -> TapMode {
        let prev = self.mode();
        let (m, p) = mode.to_wire();
        self.param.store(p, Ordering::Relaxed);
        self.mode.store(m, Ordering::Relaxed);
        prev
    }

    /// Whether an *event* frame (`PUBLISH`/`EVENT`) on `chan` should be
    /// captured under the current mode. Control frames are always
    /// captured while the tap is on (they make the capture
    /// self-describing); callers consult this only for event frames.
    #[inline]
    pub fn wants_event(&self, chan: u32) -> bool {
        match self.mode.load(Ordering::Relaxed) {
            TAP_FULL => true,
            TAP_SAMPLED => {
                let m = u64::from(self.param.load(Ordering::Relaxed).max(1));
                self.seq.fetch_add(1, Ordering::Relaxed).is_multiple_of(m)
            }
            TAP_CHANNEL => chan == self.param.load(Ordering::Relaxed),
            _ => false,
        }
    }

    /// Push one captured frame; drops (and counts) when the ring is at
    /// capacity — never blocks the reactor on the drain.
    pub fn push(&self, entry: TapEntry) {
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() >= self.capacity {
            drop(ring);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        ring.push_back(entry);
        drop(ring);
        self.captured.fetch_add(1, Ordering::Relaxed);
    }

    /// Move everything buffered into `into` (drain order = capture
    /// order: the ring is FIFO and drops newest on overflow).
    pub fn drain(&self, into: &mut Vec<TapEntry>) {
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        into.extend(ring.drain(..));
    }

    /// Frames pushed into the ring since the daemon started.
    pub fn captured(&self) -> u64 {
        self.captured.load(Ordering::Relaxed)
    }

    /// Frames dropped on ring overflow since the daemon started.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Capture files: decode.

/// One frame decoded back out of a capture file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedFrame {
    /// Capture timestamp (daemon timebase, ns).
    pub t_ns: u64,
    /// Connection the frame crossed.
    pub conn: u32,
    /// [`TAP_IN`] or [`TAP_OUT`].
    pub dir: u8,
    /// The frame itself, CRC-verified at decode time.
    pub frame: Frame,
}

/// A decoded capture directory: every frame that survived on disk, plus
/// what recovery had to repair to read them.
#[derive(Debug)]
pub struct CaptureFile {
    /// Captured frames in capture order.
    pub frames: Vec<CapturedFrame>,
    /// Torn tails truncated while opening the capture segments.
    pub torn_tails: u64,
    /// Bytes those truncations discarded.
    pub truncated_bytes: u64,
}

/// Decode one capture record ([`TapEntry::encode_into`]'s inverse). The
/// embedded frame's CRC is re-verified: a record whose frame bytes do
/// not match their checksum is an error, never silently returned as a
/// clean frame.
pub fn decode_capture_record(payload: &[u8]) -> Result<CapturedFrame, String> {
    if payload.len() < CAPTURE_PREFIX + FRAME_HEADER_SIZE {
        return Err(format!(
            "capture record too short ({} bytes)",
            payload.len()
        ));
    }
    let dir = payload[0];
    if dir > TAP_OUT {
        return Err(format!("capture record direction {dir} is invalid"));
    }
    let t_ns = u64::from_be_bytes(payload[1..9].try_into().unwrap());
    let conn = u32::from_be_bytes(payload[9..13].try_into().unwrap());
    let h = &payload[CAPTURE_PREFIX..CAPTURE_PREFIX + FRAME_HEADER_SIZE];
    let kind = h[0];
    let a = u32::from_be_bytes(h[1..5].try_into().unwrap());
    let b = u32::from_be_bytes(h[5..9].try_into().unwrap());
    let len = u32::from_be_bytes(h[9..13].try_into().unwrap()) as usize;
    let crc = u32::from_be_bytes(h[13..17].try_into().unwrap());
    if len > MAX_FRAME_BODY {
        return Err(format!("captured frame announces {len}-byte body"));
    }
    let body = &payload[CAPTURE_PREFIX + FRAME_HEADER_SIZE..];
    if body.len() != len {
        return Err(format!(
            "captured frame announces {len} body bytes but the record holds {}",
            body.len()
        ));
    }
    let actual = crc32_finish(crc32_update(crc32_update(CRC_INIT, &h[..13]), body));
    if actual != crc {
        return Err(format!(
            "captured frame fails its checksum (announced {crc:#010x}, computed {actual:#010x})"
        ));
    }
    Ok(CapturedFrame {
        t_ns,
        conn,
        dir,
        frame: Frame {
            kind,
            a,
            b,
            body: WireBuf::copy_from(body),
        },
    })
}

/// Open a capture directory through the ordinary store reader (crash
/// recovery included) and decode every record. Fails on the first
/// record whose embedded frame is corrupt — see
/// [`decode_capture_record`].
pub fn read_capture(dir: impl Into<PathBuf>) -> Result<CaptureFile, String> {
    let store = Store::open(StoreConfig::new(dir.into()))
        .map_err(|e| format!("open capture store: {e}"))?;
    let log = store
        .channel(CAPTURE_CHANNEL)
        .map_err(|e| format!("open capture channel: {e}"))?;
    let recovery = log.recovery();
    let mut frames = Vec::new();
    let mut bad: Option<String> = None;
    log.read_range(log.oldest(), log.readable(), &mut |item| {
        if bad.is_some() {
            return;
        }
        if let ReplayItem::Event { payload, .. } = item {
            match decode_capture_record(payload) {
                Ok(f) => frames.push(f),
                Err(e) => bad = Some(e),
            }
        }
    })
    .map_err(|e| format!("replay capture segments: {e}"))?;
    if let Some(e) = bad {
        return Err(e);
    }
    Ok(CaptureFile {
        frames,
        torn_tails: recovery.torn_tails,
        truncated_bytes: recovery.truncated_bytes,
    })
}

/// Distinct connection ids present in a capture, ascending.
pub fn capture_connections(frames: &[CapturedFrame]) -> Vec<u32> {
    let mut ids: Vec<u32> = frames.iter().map(|f| f.conn).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Reconstruct `format id → layout` from the capture itself: outbound
/// `ANNOUNCE` frames carry `(id, meta)` directly, and each inbound
/// `FORMAT` registration pairs with its outbound `FORMAT_ACK` (token →
/// daemon-assigned id) on the same connection. This is what makes a
/// capture decodable offline with no daemon and no schema registry.
pub fn capture_layouts(frames: &[CapturedFrame]) -> HashMap<u32, Layout> {
    let mut layouts = HashMap::new();
    // (conn, token) → the registered meta bytes, until the ack names it.
    let mut pending: HashMap<(u32, u32), &[u8]> = HashMap::new();
    for f in frames {
        match (f.dir, f.frame.kind) {
            (TAP_IN, K_FORMAT) => {
                pending.insert((f.conn, f.frame.a), f.frame.body.as_slice());
            }
            (TAP_OUT, K_FORMAT_ACK) => {
                if let Some(meta) = pending.remove(&(f.conn, f.frame.a)) {
                    if let Ok(layout) = deserialize_layout(meta) {
                        layouts.insert(f.frame.b, layout);
                    }
                }
            }
            (TAP_OUT, K_ANNOUNCE) => {
                if let Ok(layout) = deserialize_layout(f.frame.body.as_slice()) {
                    layouts.insert(f.frame.a, layout);
                }
            }
            _ => {}
        }
    }
    layouts
}

// ---------------------------------------------------------------------------
// Session replay.

/// Replay pacing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplaySpeed {
    /// Reproduce the captured inter-frame delays (each gap capped at
    /// one second so a capture of an idle session cannot stall a
    /// replay indefinitely).
    Original,
    /// Send each frame as soon as the protocol allows.
    Max,
}

/// Knobs for [`replay_session`].
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Pacing of the re-driven frames.
    pub speed: ReplaySpeed,
    /// How long to keep waiting for deliveries after the last frame is
    /// sent (and the bound on each ack wait).
    pub settle: Duration,
}

impl Default for ReplayOptions {
    fn default() -> ReplayOptions {
        ReplayOptions {
            speed: ReplaySpeed::Max,
            settle: Duration::from_secs(5),
        }
    }
}

/// The outcome of re-driving one captured session.
#[derive(Debug)]
pub struct ReplayReport {
    /// Frames re-driven into the fresh daemon.
    pub frames_sent: u64,
    /// Event bodies the *capture* shows were delivered to this session.
    pub expected: Vec<Vec<u8>>,
    /// Event bodies the fresh daemon delivered during the replay.
    pub delivered: Vec<Vec<u8>>,
    /// `ERROR` frames the fresh daemon answered with, if any.
    pub errors: Vec<String>,
}

impl ReplayReport {
    /// Index of the first delivered event differing from the capture
    /// (or the length of the shorter stream); `None` when the streams
    /// are byte-identical.
    pub fn divergence(&self) -> Option<usize> {
        if self.expected.len() != self.delivered.len() {
            let n = self.expected.len().min(self.delivered.len());
            let first = (0..n).find(|&i| self.expected[i] != self.delivered[i]);
            return Some(first.unwrap_or(n));
        }
        (0..self.expected.len()).find(|&i| self.expected[i] != self.delivered[i])
    }

    /// True when the replayed daemon delivered exactly the captured
    /// event stream, byte for byte, in order.
    pub fn byte_identical(&self) -> bool {
        self.divergence().is_none()
    }
}

/// Ids the fresh daemon assigned, keyed by the ids the captured daemon
/// assigned — rebuilt live from the replayed acks.
struct IdMaps {
    formats: HashMap<u32, u32>,
    channels: HashMap<u32, u32>,
}

/// Re-drive connection `conn` of a capture against a fresh daemon at
/// `addr`, and report the delivered event stream against the captured
/// one.
///
/// The captured inbound frames are sent in order. Daemon-assigned ids
/// need not match across runs, so the replay rewrites them on the fly:
/// each `FORMAT`/`CHANNEL` request waits for its live ack and maps the
/// captured id to the fresh one; `PUBLISH` and `SUBSCRIBE` frames are
/// rewritten through those maps (flag bits preserved). Everything else
/// — including the `HELLO` capabilities and any predicate bodies — is
/// replayed verbatim. Captured `PONG`s are skipped; the replay answers
/// the fresh daemon's own pings instead.
pub fn replay_session(
    capture: &[CapturedFrame],
    conn: u32,
    addr: &str,
    opts: &ReplayOptions,
) -> Result<ReplayReport, String> {
    let inbound: Vec<&CapturedFrame> = capture
        .iter()
        .filter(|f| f.conn == conn && f.dir == TAP_IN)
        .collect();
    if inbound.is_empty() {
        return Err(format!("capture holds no inbound frames for conn {conn}"));
    }
    // Captured token → captured id, from the recorded acks: the "old"
    // side of the rewrite maps.
    let mut old_fmt_by_token: HashMap<u32, u32> = HashMap::new();
    let mut old_chan_by_token: HashMap<u32, u32> = HashMap::new();
    let mut expected: Vec<Vec<u8>> = Vec::new();
    for f in capture
        .iter()
        .filter(|f| f.conn == conn && f.dir == TAP_OUT)
    {
        match f.frame.kind {
            K_FORMAT_ACK => {
                old_fmt_by_token.insert(f.frame.a, f.frame.b);
            }
            K_CHANNEL_ACK => {
                old_chan_by_token.insert(f.frame.a, f.frame.b);
            }
            K_EVENT => expected.push(f.frame.body.as_slice().to_vec()),
            _ => {}
        }
    }

    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let _ = stream.set_nodelay(true);

    let mut maps = IdMaps {
        formats: HashMap::new(),
        channels: HashMap::new(),
    };
    let mut delivered: Vec<Vec<u8>> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    let mut frames_sent = 0u64;
    let mut prev_t = inbound[0].t_ns;
    for f in &inbound {
        if opts.speed == ReplaySpeed::Original {
            let gap =
                Duration::from_nanos(f.t_ns.saturating_sub(prev_t)).min(Duration::from_secs(1));
            prev_t = f.t_ns;
            let deadline = Instant::now() + gap;
            // Keep serving the socket while honoring the gap: events and
            // pings arrive on the original schedule too.
            loop {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                pump(&mut stream, &mut delivered, &mut errors)?;
            }
        }
        let frame = &f.frame;
        match frame.kind {
            // Skip: answers to the *old* daemon's probes. The pump
            // answers the fresh daemon's pings with fresh tokens.
            K_PONG => continue,
            K_HELLO => {
                send(&mut stream, frame)?;
                frames_sent += 1;
                wait_ack(
                    &mut stream,
                    K_HELLO_ACK,
                    None,
                    opts,
                    &mut delivered,
                    &mut errors,
                )?;
            }
            K_FORMAT => {
                send(&mut stream, frame)?;
                frames_sent += 1;
                let ack = wait_ack(
                    &mut stream,
                    K_FORMAT_ACK,
                    Some(frame.a),
                    opts,
                    &mut delivered,
                    &mut errors,
                )?;
                if let Some(&old) = old_fmt_by_token.get(&frame.a) {
                    maps.formats.insert(old, ack.b);
                }
            }
            K_CHANNEL => {
                send(&mut stream, frame)?;
                frames_sent += 1;
                let ack = wait_ack(
                    &mut stream,
                    K_CHANNEL_ACK,
                    Some(frame.a),
                    opts,
                    &mut delivered,
                    &mut errors,
                )?;
                if let Some(&old) = old_chan_by_token.get(&frame.a) {
                    maps.channels.insert(old, ack.b);
                }
            }
            K_SUBSCRIBE | K_SUBSCRIBE_FROM => {
                let a = *maps.channels.get(&frame.a).unwrap_or(&frame.a);
                send(
                    &mut stream,
                    &Frame {
                        a,
                        body: frame.body.clone(),
                        ..*frame
                    },
                )?;
                frames_sent += 1;
            }
            K_PUBLISH => {
                let a = *maps.channels.get(&frame.a).unwrap_or(&frame.a);
                let flags = frame.b & (TRACE_FLAG | OFFSET_FLAG);
                let id = frame.b & !(TRACE_FLAG | OFFSET_FLAG);
                let b = *maps.formats.get(&id).unwrap_or(&id) | flags;
                send(
                    &mut stream,
                    &Frame {
                        a,
                        b,
                        body: frame.body.clone(),
                        ..*frame
                    },
                )?;
                frames_sent += 1;
            }
            _ => {
                send(&mut stream, frame)?;
                frames_sent += 1;
            }
        }
    }

    // Settle: keep reading until the captured event count has arrived
    // (or nothing more comes within the settle budget).
    let mut quiet_since = Instant::now();
    while delivered.len() < expected.len() || expected.is_empty() {
        let before = delivered.len();
        if !pump(&mut stream, &mut delivered, &mut errors)? {
            break;
        }
        if delivered.len() != before {
            quiet_since = Instant::now();
        } else if quiet_since.elapsed() >= opts.settle {
            break;
        }
        if expected.is_empty() {
            break;
        }
    }
    Ok(ReplayReport {
        frames_sent,
        expected,
        delivered,
        errors,
    })
}

fn send(stream: &mut TcpStream, frame: &Frame) -> Result<(), String> {
    write_frame(stream, frame).map_err(|e| format!("replay write: {e}"))
}

/// Read (at most) one frame, folding it into the replay's running
/// state. Returns `false` once the daemon has closed the connection.
fn pump(
    stream: &mut TcpStream,
    delivered: &mut Vec<Vec<u8>>,
    errors: &mut Vec<String>,
) -> Result<bool, String> {
    match read_frame(stream) {
        Ok(f) => {
            absorb(stream, f, delivered, errors);
            Ok(true)
        }
        Err(FrameError::Timeout) => Ok(true),
        Err(FrameError::Closed) => Ok(false),
        Err(e) => Err(format!("replay read: {e}")),
    }
}

/// Fold one received frame into the replay state: events are collected,
/// pings answered, errors recorded, everything else ignored.
fn absorb(
    stream: &mut TcpStream,
    f: Frame,
    delivered: &mut Vec<Vec<u8>>,
    errors: &mut Vec<String>,
) {
    match f.kind {
        K_EVENT => delivered.push(f.body.as_slice().to_vec()),
        K_PING => {
            let _ = write_frame(stream, &Frame::control(K_PONG, f.a, 0));
        }
        K_ERROR => errors.push(format!(
            "E{}: {}",
            f.a,
            String::from_utf8_lossy(f.body.as_slice())
        )),
        K_BYE_ACK => {}
        _ => {}
    }
}

/// Read until an ack of `kind` (and token, when given) arrives, folding
/// everything else into the replay state.
fn wait_ack(
    stream: &mut TcpStream,
    kind: u8,
    token: Option<u32>,
    opts: &ReplayOptions,
    delivered: &mut Vec<Vec<u8>>,
    errors: &mut Vec<String>,
) -> Result<Frame, String> {
    let deadline = Instant::now() + opts.settle;
    loop {
        match read_frame(stream) {
            Ok(f) if f.kind == kind && token.is_none_or(|t| f.a == t) => return Ok(f),
            Ok(f) => absorb(stream, f, delivered, errors),
            Err(FrameError::Timeout) => {}
            Err(e) => return Err(format!("replay read awaiting {kind:#04x}: {e}")),
        }
        if Instant::now() > deadline {
            return Err(format!(
                "replay timed out awaiting ack {kind:#04x} (daemon said: {errors:?})"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(kind: u8, a: u32, b: u32, body: &[u8]) -> TapEntry {
        TapEntry {
            t_ns: 42,
            conn: 7,
            dir: TAP_OUT,
            kind,
            a,
            b,
            body: WireBuf::copy_from(body),
        }
    }

    #[test]
    fn capture_record_round_trips() {
        let e = entry(K_EVENT, 3, 9, b"payload bytes");
        let mut buf = Vec::new();
        e.encode_into(&mut buf);
        let f = decode_capture_record(&buf).expect("decodes");
        assert_eq!(f.t_ns, 42);
        assert_eq!(f.conn, 7);
        assert_eq!(f.dir, TAP_OUT);
        assert_eq!(f.frame.kind, K_EVENT);
        assert_eq!((f.frame.a, f.frame.b), (3, 9));
        assert_eq!(f.frame.body.as_slice(), b"payload bytes");
    }

    #[test]
    fn corrupted_capture_record_is_never_marked_clean() {
        let e = entry(K_EVENT, 3, 9, b"payload bytes");
        let mut buf = Vec::new();
        e.encode_into(&mut buf);
        // Flip one body byte: the embedded frame CRC must catch it.
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        assert!(decode_capture_record(&buf).is_err());
        // And a truncated record is an error, not a short frame.
        buf[last] ^= 0x40;
        assert!(decode_capture_record(&buf[..buf.len() - 2]).is_err());
    }

    #[test]
    fn tap_modes_cross_the_wire_and_back() {
        for mode in [
            TapMode::Off,
            TapMode::Full,
            TapMode::Sampled(64),
            TapMode::Channel(3),
        ] {
            let (m, p) = mode.to_wire();
            assert_eq!(TapMode::from_wire(m, p), Some(mode));
        }
        assert_eq!(TapMode::from_wire(TAP_SAMPLED, 0), None);
        assert_eq!(TapMode::from_wire(99, 0), None);
    }

    #[test]
    fn sampling_keeps_one_event_in_n() {
        let tap = TapState::new(TapMode::Sampled(4), 64);
        let kept = (0..40).filter(|_| tap.wants_event(1)).count();
        assert_eq!(kept, 10);
        let chan = TapState::new(TapMode::Channel(3), 64);
        assert!(chan.wants_event(3));
        assert!(!chan.wants_event(4));
    }

    #[test]
    fn full_ring_drops_newest_and_counts() {
        let tap = TapState::new(TapMode::Full, 2);
        for i in 0..5u32 {
            tap.push(entry(K_EVENT, i, 0, b""));
        }
        assert_eq!(tap.captured(), 2);
        assert_eq!(tap.dropped(), 3);
        let mut out = Vec::new();
        tap.drain(&mut out);
        // The *oldest* frames survived: the self-describing prefix wins.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].a, 0);
        assert_eq!(out[1].a, 1);
        assert_eq!(tap.set_mode(TapMode::Off), TapMode::Full);
        assert!(!tap.enabled());
    }
}
