//! # pbio-serv — a networked event-channel service over NDR
//!
//! The deployment the paper's systems (DataExchange, ECho) ran in
//! production: a daemon that many processes — simulations, monitors,
//! visualizations, each compiled for its own architecture — connect to
//! over TCP, publishing and subscribing on named event channels. The
//! properties the paper measures survive the network hop intact:
//!
//! * **Sender-side O(1)**: publishers transmit records in their native
//!   memory layout. The daemon forwards those bytes verbatim; nothing in
//!   the path re-encodes a record, ever.
//! * **Receiver-side conversion**: each subscriber's client embeds a
//!   [`pbio::Reader`]; conversions are generated on first contact with
//!   each publisher's wire format. A subscriber on the publisher's own
//!   architecture stays zero-copy end to end.
//! * **Formats registered once**: the daemon holds one shared
//!   [`pbio::FormatServer`]. Format metadata crosses each publisher's
//!   socket once, and identical formats from different publishers share
//!   one daemon-global id.
//! * **Filtering at the source** (§5): a subscription may carry a
//!   predicate. The daemon compiles it against each publisher's wire
//!   format with the same DCG machinery as the conversions and evaluates
//!   it *before* transmission, so unwanted events never touch the wire.
//!
//! * **Stats are dogfooded**: the daemon and every client keep their
//!   books in a [`pbio_obs::Registry`]; the daemon publishes periodic
//!   snapshots on the reserved `$stats` channel *as PBIO records*,
//!   described by their own generated format — heterogeneous monitors
//!   receive the measurements through the very conversion machinery the
//!   measurements describe. One-shot pulls ride the `STATS` frame.
//!
//! * **Traces are wire-propagated**: sessions that negotiate the
//!   [`protocol::CAP_TRACE`] capability stamp 1-in-N publishes with a
//!   compact trailer ([`pbio_obs::TraceCtx`]); every stage — publish,
//!   daemon ingress, filter, enqueue, flush, subscriber decode — records
//!   a hop against the same trace id on one skew-corrected time axis,
//!   and completed hops are published on the reserved `$trace` channel
//!   as self-describing PBIO records. Old peers negotiate nothing and
//!   see plain frames.
//!
//! * **Sessions survive faults**: peers that negotiate
//!   [`protocol::CAP_RESUME`] treat a broken socket as an *outage*, not
//!   an error — the client reconnects with capped exponential backoff,
//!   resumes under a bumped session epoch, replays its registrations and
//!   subscriptions, and flushes the publishes it buffered while away.
//!   The daemon pings idle connections and evicts dead or persistently
//!   stalled ones; corrupt or oversized frames are rejected (counted,
//!   answered with `ERROR`) without tearing the session down. For
//!   deterministic fault testing the daemon can wrap every connection in
//!   a seeded [`pbio_net::fault::FaultyStream`] via
//!   [`ServConfig::fault_seed`].
//!
//! * **The daemon is introspectable**: an `INSPECT` exchange (and the
//!   reserved `$topo` push channel) returns a live topology snapshot —
//!   per-connection queue depth and shard assignment, per-channel
//!   subscriber counts and durable heads, per-shard reactor load,
//!   consumer-lag watermarks for every durable subscriber (including
//!   replays in progress), and the tail of a lock-free **flight
//!   recorder** of lifecycle events (connects, evictions, resumes,
//!   protocol errors, fault injections, store repairs). The snapshot is
//!   itself a self-describing PBIO record; with
//!   [`ServConfig::flight_dump`] the recorder also drains incrementally
//!   to a crash-safe `pbio-store` segment a post-mortem can decode.
//!
//! * **The wire itself can be captured**: a daemon configured with
//!   [`ServConfig::tap`] records frames — direction, timestamp,
//!   connection id, exact bytes — into crash-safe capture segments
//!   ([`tap`]), toggleable per-mode at run time over the wire
//!   ([`protocol::K_TAP_CTL`]: full / 1-in-N sampled / single-channel).
//!   Captures are self-describing (the session's own `FORMAT` frames
//!   travel inside), decodable offline frame-by-frame and record-by-
//!   record, and *replayable*: [`tap::replay_session`] re-drives a
//!   captured client session against a fresh daemon and diffs the
//!   delivered event stream byte-for-byte. Disabled, the tap costs one
//!   relaxed load per frame.
//!
//! * **Channels can be durable**: a daemon configured with
//!   [`ServConfig::durability`] appends every event published on a
//!   [`protocol::CHAN_DURABLE`] channel to a `pbio-store` append-only
//!   segment log — off the hot loop, on a dedicated writer thread —
//!   and acks publishers once bytes are flushed
//!   ([`protocol::K_PUBLISH_ACK`]). Events on durable channels carry
//!   their log offset as an outer trailer; subscribers replay history
//!   from any offset with [`ServClient::subscribe_from`], which streams
//!   the log and hands off to live delivery gaplessly. Crash recovery
//!   (CRC-checked scan, torn tails truncated) runs when the store
//!   reopens; with resume negotiated a client reconnects and resumes
//!   from the last offset it saw — lossless across daemon restarts.
//!
//! * **Federation** ([`mesh`]): daemons peer over the same frame
//!   protocol ([`protocol::CAP_PEER`]). Channels shard across the mesh
//!   by a deterministic name hash ([`mesh::home_of`]); any daemon
//!   accepts any publish and forwards it to the channel's home daemon,
//!   whose fan-out is the single ordering point; format-registry
//!   gossip makes remote-origin events decode everywhere; and one
//!   relayed frame fans out to N local subscribers by refcount bumps.
//!
//! Layering: [`protocol`] defines the session frames (carried by
//! [`pbio_net::frame`]); [`daemon`] is an event-driven server — a small
//! fixed set of sharded readiness reactors (built on
//! [`pbio_net::poll`]) multiplexing every connection over nonblocking
//! sockets, with fan-out routed through
//! [`pbio_chan::dispatch::Fanout`]; [`client`] is the blocking client
//! library. Daemon thread count is O(shards), not O(connections):
//! each connection is one file descriptor owned by exactly one
//! reactor, which decodes its inbound frames, drains its bounded
//! outbound queue with batched vectored writes, and resumes partial
//! writes when the socket next reports writable. Only the durable
//! store writer and historical-replay streams (bounded by
//! [`ServConfig::max_replay`]) run on dedicated threads, and even
//! their output is handed back to the owning reactor's queue.

#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod error;
pub mod mesh;
pub mod protocol;
pub mod tap;

pub use client::{ClientConfig, ClientStats, Event, RawEvent, ServClient};
pub use daemon::{ConnStats, ServConfig, ServDaemon, ServStats, TraceConfig};
pub use error::ServError;
pub use mesh::{home_of, MeshConfig, PeerAddr, PeerStats};
pub use pbio_store::{FlushPolicy, StoreConfig};
pub use protocol::{
    CAP_DURABLE, CAP_PEER, CAP_RESUME, CAP_TRACE, CHAN_DURABLE, STATS_CHANNEL, TOPO_CHANNEL,
    TRACE_CHANNEL,
};
pub use tap::{
    read_capture, replay_session, CaptureFile, CapturedFrame, ReplayOptions, ReplayReport,
    ReplaySpeed, TapConfig, TapMode,
};
