//! The serv session protocol: frame kinds and error codes.
//!
//! Every exchange is a [`pbio_net::frame::Frame`]:
//!
//! ```text
//! frame := kind:u8  a:u32be  b:u32be  len:u32be  body[len]
//! ```
//!
//! with `a`/`b` meanings assigned per kind below. A session runs:
//!
//! ```text
//! client                                  daemon
//!   | HELLO    a=version b=caps            |   (b: capability bits the
//!   |          body=arch name              |    client offers; old
//!   |  -------------------------------->    |    clients send 0)
//!   |            HELLO_ACK a=version b=conn |   (body: granted caps +
//!   |  <--------------------------------    |    clock sample, may be
//!   |                                       |    empty from old daemons)
//!   | FORMAT   a=token     body=layout meta |   (once per distinct format;
//!   |  -------------------------------->    |    daemon dedups via its
//!   |            FORMAT_ACK a=token b=fmt   |    shared FormatServer)
//!   |  <--------------------------------    |
//!   | CHANNEL  a=token     body=name        |   (create-or-open by name)
//!   |  -------------------------------->    |
//!   |            CHANNEL_ACK a=token b=chan |
//!   |  <--------------------------------    |
//!   | SUBSCRIBE a=chan b=1? body=predicate  |   (b=1: body is a serialized
//!   |  -------------------------------->    |    pbio-chan predicate, to be
//!   |            SUBSCRIBE_ACK a=chan       |    evaluated at the source)
//!   |  <--------------------------------    |
//!   | SUBSCRIBE_FROM a=chan body=offset     |   (durable channels only:
//!   |  -------------------------------->    |    replay history from
//!   |            SUBSCRIBE_ACK a=chan       |    offset, then hand off
//!   |  <--------------------------------    |    seamlessly to live)
//!   | PUBLISH  a=chan b=fmt body=NDR bytes  |   (fire-and-forget; durable
//!   |  -------------------------------->    |    channels ack once the
//!   |            PUBLISH_ACK a=chan b=n     |    bytes are on disk, body
//!   |  <--------------------------------    |    = last durable offset)
//!   |            ANNOUNCE a=fmt body=meta   |   (once per (conn, format),
//!   |  <--------------------------------    |    before its first event)
//!   |            EVENT    a=chan b=fmt      |   (sender's untouched native
//!   |  <--------------------------------    |    bytes; receiver converts)
//!   | BYE                                   |
//!   |  -------------------------------->    |
//!   |            BYE_ACK                    |
//!   |  <--------------------------------    |
//! ```
//!
//! Event bodies are the publisher's NDR bytes, forwarded verbatim: the
//! daemon never converts. Filters run on the daemon against the
//! *publisher's* wire format, so rejected events cost no transmission —
//! the paper's "filter at the source" (§5) for derived event channels.

/// Protocol version carried in `HELLO`/`HELLO_ACK`.
pub const PROTOCOL_VERSION: u32 = 1;

/// Name of the reserved channel the daemon publishes its own metric
/// snapshots on (clients may publish theirs too). Opened at daemon
/// startup; `open_channel(STATS_CHANNEL)` from any client returns it.
pub const STATS_CHANNEL: &str = "$stats";

/// Name of the reserved channel completed distributed-tracing hop
/// records are published on, as self-describing PBIO records — the same
/// dogfooding as [`STATS_CHANNEL`]. Opened at daemon startup.
pub const TRACE_CHANNEL: &str = "$trace";

/// Name of the reserved channel the daemon pushes live topology
/// snapshots on ([`pbio_obs::export::topo_schema`] records: per
/// connection, channel, shard, consumer-lag watermark, plus the recent
/// flight-recorder tail). Opened at daemon startup; push is suppressed
/// while the channel has zero subscribers. One-shot pulls ride
/// [`K_INSPECT`].
pub const TOPO_CHANNEL: &str = "$topo";

/// Capability bit (in `HELLO.b` / the HELLO ack body): the peer speaks
/// the trace-trailer extension. Tracing is in effect on a session only
/// when *both* sides advertise it; old peers advertise nothing and see
/// plain frames, which is the whole negotiation.
pub const CAP_TRACE: u32 = 0x1;

/// Capability bit (in `HELLO.b` / the HELLO ack body): the client may
/// resume its session after a reconnect via [`K_RESUME`]. Granted
/// unconditionally by resume-aware daemons; its absence from an ack
/// tells the client the daemon will treat every connection as brand new
/// (so the client re-registers from scratch instead of resuming).
pub const CAP_RESUME: u32 = 0x2;

/// Capability bit (in `HELLO.b` / the HELLO ack body): durable
/// channels. Granted only by daemons configured with
/// `ServConfig::durability`; a client holding the grant may open
/// channels with [`CHAN_DURABLE`], replay history with
/// [`K_SUBSCRIBE_FROM`], and receives [`K_PUBLISH_ACK`] durability
/// acknowledgements plus offset trailers ([`OFFSET_FLAG`]) on events.
pub const CAP_DURABLE: u32 = 0x4;

/// Capability bit (in `HELLO.b` / the HELLO ack body): the connecting
/// peer is another daemon's mesh link, not an application client.
/// Granted only by daemons configured with a `ServConfig::peers` mesh.
/// Publishes arriving on a peer connection are home-side deliveries:
/// they fan out locally and are **never** forwarded again (the
/// structural loop guard of the relay mesh). Granting the bit also
/// triggers the format-registry gossip dump: the daemon pushes every
/// registered layout to the new link as `FORMAT` frames so
/// remote-origin events decode everywhere.
pub const CAP_PEER: u32 = 0x8;

/// High bit of the format-id argument (`b`) on [`K_PUBLISH`] and
/// [`K_EVENT`]: the body carries a trace trailer
/// ([`pbio_obs::TRACE_TRAILER_LEN`] bytes) after the record's NDR
/// bytes. Format ids never reach this bit.
pub const TRACE_FLAG: u32 = 0x8000_0000;

/// Bit 30 of the format-id argument (`b`) on [`K_EVENT`]: the body ends
/// with the event's durable channel offset (`u64be`, *after* the trace
/// trailer when both are present — the daemon appends it last, so it is
/// stripped first). Daemon-global format ids count up from zero and
/// never reach this bit.
pub const OFFSET_FLAG: u32 = 0x4000_0000;

/// Channel-flags bit (in `K_CHANNEL.b`): open the channel *durable* —
/// every event published to it is appended to the daemon's pbio-store
/// segment log and replayable by offset. Requires a daemon configured
/// with `ServConfig::durability` (else `ERROR(E_CHANNEL)`); opening an
/// already-durable channel without the bit is fine (durability is a
/// channel property, not a per-subscriber one).
pub const CHAN_DURABLE: u32 = 0x1;

/// Trailing bytes a [`OFFSET_FLAG`] offset trailer adds to an event
/// body.
pub const OFFSET_TRAILER_LEN: usize = 8;

/// Client → daemon: open a session. `a` = version, `b` = capability
/// bits ([`CAP_TRACE`]; old clients send 0), body = architecture
/// profile name (e.g. `"sparc-v8"`).
pub const K_HELLO: u8 = 0x01;
/// Daemon → client: session accepted. `a` = version, `b` = connection
/// id. The body, absent from pre-tracing daemons and ignored by
/// pre-tracing clients, is `granted_caps:u32be  t_ns:u64be
/// sample_mod:u32be`: the intersection of offered and supported
/// capabilities, the daemon's clock sampled while serving the HELLO
/// (one half of the [`pbio_net::clock::ClockSync`] offset exchange),
/// and the daemon's head-sampling modulus for publishers to adopt.
pub const K_HELLO_ACK: u8 = 0x02;
/// Client → daemon: register a format. `a` = client token, body =
/// serialized layout meta-information.
pub const K_FORMAT: u8 = 0x10;
/// Daemon → client: format registered. `a` = echoed token, `b` = the
/// daemon-global format id.
pub const K_FORMAT_ACK: u8 = 0x11;
/// Client → daemon: create-or-open a named channel. `a` = client token,
/// body = UTF-8 channel name.
pub const K_CHANNEL: u8 = 0x12;
/// Daemon → client: channel ready. `a` = echoed token, `b` = channel id.
pub const K_CHANNEL_ACK: u8 = 0x13;
/// Client → daemon: subscribe to a channel. `a` = channel id, `b` = 1 if
/// the body carries a serialized predicate ([`pbio_chan::wire`]), else 0.
pub const K_SUBSCRIBE: u8 = 0x14;
/// Daemon → client: subscription active. `a` = channel id.
pub const K_SUBSCRIBE_ACK: u8 = 0x15;
/// Client → daemon: subscribe to a channel *from a durable offset*.
/// `a` = channel id, body = `offset:u64be`. The daemon streams history
/// from that offset (clamped to what retention kept), then hands off
/// seamlessly to live events — the subscriber sees one gapless,
/// offset-stamped sequence. Requires [`CAP_DURABLE`] and a durable
/// channel; acked with [`K_SUBSCRIBE_ACK`] before the first replayed
/// event.
pub const K_SUBSCRIBE_FROM: u8 = 0x16;
/// Client → daemon: publish an event. `a` = channel id, `b` = format id,
/// body = the record's native (NDR) bytes. No acknowledgement on
/// transient channels; on durable channels the daemon answers (possibly
/// batched) with [`K_PUBLISH_ACK`] once the bytes are on disk.
pub const K_PUBLISH: u8 = 0x20;
/// Daemon → subscriber: an event. `a` = channel id, `b` = format id,
/// body = the *publisher's* NDR bytes, forwarded without conversion.
pub const K_EVENT: u8 = 0x21;
/// Daemon → publisher: durability acknowledgement for a durable
/// channel. `a` = channel id, `b` = how many of the publisher's events
/// this ack newly covers, body = `last_offset:u64be` — the highest
/// channel offset now on disk for this publisher. Sent only to
/// [`CAP_DURABLE`] connections; an acked event survives a daemon crash
/// and replays via [`K_SUBSCRIBE_FROM`].
pub const K_PUBLISH_ACK: u8 = 0x23;
/// Daemon → subscriber: format meta for an id the subscriber is about to
/// see. `a` = format id, body = serialized layout. Sent once per
/// (connection, format), always before that format's first [`K_EVENT`].
pub const K_ANNOUNCE: u8 = 0x22;
/// Client → daemon: request a one-shot stats snapshot. `a` = client
/// token. The daemon answers with [`K_STATS_ACK`], preceded — once per
/// connection — by a [`K_ANNOUNCE`] for the snapshot's format.
pub const K_STATS: u8 = 0x40;
/// Daemon → client: a stats snapshot. `a` = echoed token, `b` = the
/// snapshot's daemon-global format id, body = the snapshot record's
/// native (NDR) bytes — the same encoding the `$stats` channel carries.
pub const K_STATS_ACK: u8 = 0x41;
/// Client → daemon: set the daemon's trace sampling at run time. `a` =
/// client token, `b` = the new head-sampling modulus (sample one publish
/// in `b`; `0` disables tracing daemon-wide). Answered with
/// [`K_TRACE_CTL_ACK`].
pub const K_TRACE_CTL: u8 = 0x42;
/// Daemon → client: sampling updated. `a` = echoed token, `b` = the
/// modulus that was in effect before this change.
pub const K_TRACE_CTL_ACK: u8 = 0x43;
/// Client → daemon: request a one-shot topology snapshot (the
/// introspection plane's pull side). `a` = client token. The daemon
/// captures live state — per-connection queue depths, per-channel
/// fan-out and durable-log footprint, per-shard load, consumer-lag
/// watermarks, the flight-recorder tail — and answers with
/// [`K_INSPECT_ACK`], preceded (once per connection) by a
/// [`K_ANNOUNCE`] for the topology format.
pub const K_INSPECT: u8 = 0x44;
/// Daemon → client: a topology snapshot. `a` = echoed token, `b` = the
/// snapshot's daemon-global format id, body = the record's native (NDR)
/// bytes — the same encoding the `$topo` channel pushes.
pub const K_INSPECT_ACK: u8 = 0x45;
/// Client → daemon: reconfigure the wire tap at run time. `a` = client
/// token, `b` = the new tap mode ([`TAP_OFF`], [`TAP_FULL`],
/// [`TAP_SAMPLED`], [`TAP_CHANNEL`]); for the parameterized modes the
/// body is `param:u32be` — the sampling modulus (capture one event
/// frame in `param`) or the channel id to scope to. Control frames are
/// always captured while any mode is on, so a capture stays
/// self-describing. Requires a daemon configured with
/// `ServConfig::tap` (else `ERROR(E_PROTOCOL)`); answered with
/// [`K_TAP_CTL_ACK`].
pub const K_TAP_CTL: u8 = 0x46;
/// Daemon → client: tap reconfigured. `a` = echoed token, `b` = the tap
/// mode that was in effect before this change.
pub const K_TAP_CTL_ACK: u8 = 0x47;

/// [`K_TAP_CTL`] mode: capture nothing (the hot path pays one relaxed
/// load per frame and no more).
pub const TAP_OFF: u32 = 0;
/// [`K_TAP_CTL`] mode: capture every frame, both directions.
pub const TAP_FULL: u32 = 1;
/// [`K_TAP_CTL`] mode: capture every control frame but only one event
/// frame ([`K_PUBLISH`]/[`K_EVENT`]) in `param`.
pub const TAP_SAMPLED: u32 = 2;
/// [`K_TAP_CTL`] mode: capture every control frame but only the event
/// frames of channel `param`.
pub const TAP_CHANNEL: u32 = 3;
/// Daemon → client: liveness probe, sent when a connection has been
/// silent for longer than the daemon's ping budget. `a` = a probe token
/// the pong must echo. Clients answer transparently from their poll
/// loop; a peer that answers nothing for the daemon's dead budget is
/// evicted.
pub const K_PING: u8 = 0x50;
/// Client → daemon: liveness answer. `a` = the echoed probe token.
/// (Any inbound frame refreshes liveness; the PONG matters for clients
/// with nothing else to say.)
pub const K_PONG: u8 = 0x51;
/// Client → daemon, instead of a fresh handshake's first post-HELLO
/// frame: resume a previous session. `a` = session epoch (monotonic per
/// client identity, bumped on every reconnect), `b` = low 32 bits of the
/// client identity, body = `client_id:u64be`. The daemon discards state
/// held for lower epochs of the same identity (a stale predecessor
/// connection is evicted) and answers [`K_RESUME_ACK`]; a resume with an
/// epoch at or below the registered one is answered with
/// `ERROR(E_STALE)` and the connection closed.
pub const K_RESUME: u8 = 0x52;
/// Daemon → client: resume accepted. `a` = the echoed epoch. The client
/// then replays FORMAT/CHANNEL/SUBSCRIBE registrations (the daemon may
/// have restarted and lost them; replay is idempotent either way).
pub const K_RESUME_ACK: u8 = 0x53;
/// Client → daemon: graceful disconnect.
pub const K_BYE: u8 = 0x30;
/// Daemon → client: disconnect acknowledged; no further frames follow.
pub const K_BYE_ACK: u8 = 0x31;
/// Daemon → client: request failed. `a` = error code ([`E_PROTOCOL`]…),
/// body = UTF-8 description.
pub const K_ERROR: u8 = 0x7F;

/// Malformed or unexpected frame.
pub const E_PROTOCOL: u32 = 1;
/// `HELLO` carried an unsupported protocol version.
pub const E_VERSION: u32 = 2;
/// `HELLO` named an unknown architecture profile.
pub const E_ARCH: u32 = 3;
/// Bad format metadata, or a publish for an unregistered format id.
pub const E_FORMAT: u32 = 4;
/// Unknown channel id.
pub const E_CHANNEL: u32 = 5;
/// Undecodable subscription predicate.
pub const E_PREDICATE: u32 = 6;
/// A [`K_RESUME`] carried an epoch no newer than the one already
/// registered for that client identity: the resuming connection is the
/// stale duplicate, not the survivor.
pub const E_STALE: u32 = 7;
/// The daemon is at its concurrency limit for the requested work (e.g.
/// [`K_SUBSCRIBE_FROM`] when every replay slot is busy). Transient: the
/// request may be retried once load subsides; the session stays open.
pub const E_BUSY: u32 = 8;

/// Human-readable name for a frame kind — what `pbio-dump` prints per
/// captured frame. Unknown kinds render as `"?"` (a capture may come
/// from a newer daemon).
pub fn kind_name(kind: u8) -> &'static str {
    match kind {
        K_HELLO => "HELLO",
        K_HELLO_ACK => "HELLO_ACK",
        K_FORMAT => "FORMAT",
        K_FORMAT_ACK => "FORMAT_ACK",
        K_CHANNEL => "CHANNEL",
        K_CHANNEL_ACK => "CHANNEL_ACK",
        K_SUBSCRIBE => "SUBSCRIBE",
        K_SUBSCRIBE_ACK => "SUBSCRIBE_ACK",
        K_SUBSCRIBE_FROM => "SUBSCRIBE_FROM",
        K_PUBLISH => "PUBLISH",
        K_EVENT => "EVENT",
        K_ANNOUNCE => "ANNOUNCE",
        K_PUBLISH_ACK => "PUBLISH_ACK",
        K_STATS => "STATS",
        K_STATS_ACK => "STATS_ACK",
        K_TRACE_CTL => "TRACE_CTL",
        K_TRACE_CTL_ACK => "TRACE_CTL_ACK",
        K_INSPECT => "INSPECT",
        K_INSPECT_ACK => "INSPECT_ACK",
        K_TAP_CTL => "TAP_CTL",
        K_TAP_CTL_ACK => "TAP_CTL_ACK",
        K_PING => "PING",
        K_PONG => "PONG",
        K_RESUME => "RESUME",
        K_RESUME_ACK => "RESUME_ACK",
        K_BYE => "BYE",
        K_BYE_ACK => "BYE_ACK",
        K_ERROR => "ERROR",
        _ => "?",
    }
}
