//! Peephole optimizer for generated conversion code.
//!
//! The paper notes (§5) that the authors were developing "selected runtime
//! binary code optimization methods" on top of Vcode. This pass reproduces
//! the two optimizations that matter for data conversion:
//!
//! 1. **Triple fusion** — the canonical per-field sequence `Ld; Bswap; St`
//!    (or `Ld; St` for same-order moves) becomes a single [`Inst::SwapMove`]
//!    / [`Inst::MemcpyImm`], eliminating register traffic and two dispatches.
//! 2. **Run coalescing** — adjacent fused moves with contiguous source and
//!    destination displacements become block operations
//!    ([`Inst::SwapRun`] / a widened [`Inst::MemcpyImm`]), turning a field or
//!    array conversion into something "near the level of a copy operation"
//!    (§4.3) — the property the paper credits for PBIO's speed.
//!
//! Correctness discipline: fusion never crosses a basic-block boundary
//! (branch or branch target), and a `Ld;…;St` triple is only fused when the
//! scratch register is provably dead afterwards (redefined before any read
//! within the block, or the program halts). The differential tests at the
//! bottom run optimized and unoptimized programs against both executors.

use std::collections::HashSet;

use crate::asm::Program;
use crate::inst::{Inst, Reg, Space};

/// Statistics from one optimization run (reported by DCG benchmarks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// `Ld;Bswap;St` triples fused into `SwapMove`.
    pub fused_swap_moves: usize,
    /// `Ld;St` pairs fused into byte moves.
    pub fused_moves: usize,
    /// Runs coalesced into `SwapRun`/wide `MemcpyImm`.
    pub runs_coalesced: usize,
    /// Instruction count before optimization.
    pub before: usize,
    /// Instruction count after optimization.
    pub after: usize,
}

/// Optimize a program (see module docs).
pub fn optimize(prog: &Program) -> Program {
    optimize_with_stats(prog).0
}

/// [`optimize`] returning fusion statistics.
pub fn optimize_with_stats(prog: &Program) -> (Program, OptStats) {
    let mut stats = OptStats {
        before: prog.len(),
        ..OptStats::default()
    };
    let fused = fuse_triples(prog.insts(), &mut stats);
    let coalesced = coalesce_runs(&fused, &mut stats);
    stats.after = coalesced.len();
    (
        Program::from_insts(coalesced).expect("optimizer produced invalid program"),
        stats,
    )
}

fn leaders(insts: &[Inst]) -> HashSet<u32> {
    insts.iter().filter_map(|i| i.branch_target()).collect()
}

/// Registers read by an instruction.
fn reads(inst: &Inst) -> Vec<Reg> {
    match inst {
        Inst::Ld { base, .. } => vec![*base],
        Inst::St { base, r, .. } => vec![*base, *r],
        Inst::Bswap { r, .. }
        | Inst::SExt { r, .. }
        | Inst::CvtF32F64 { r }
        | Inst::CvtF64F32 { r }
        | Inst::CvtI64F64 { r }
        | Inst::CvtF64I64 { r }
        | Inst::Brnz { r, .. }
        | Inst::Brz { r, .. } => vec![*r],
        Inst::Mov { from, .. } => vec![*from],
        Inst::Add { a, b, .. }
        | Inst::Sub { a, b, .. }
        | Inst::And { a, b, .. }
        | Inst::Or { a, b, .. }
        | Inst::Slt { a, b, .. }
        | Inst::Sltu { a, b, .. }
        | Inst::FltF64 { a, b, .. } => vec![*a, *b],
        Inst::AddImm { a, .. } | Inst::SetEqZ { a, .. } => vec![*a],
        Inst::MemcpyImm {
            src_base, dst_base, ..
        } => vec![*src_base, *dst_base],
        Inst::MemcpyReg {
            src_base,
            dst_base,
            len,
            ..
        } => vec![*src_base, *dst_base, *len],
        Inst::MemsetZero { base, .. } => vec![*base],
        Inst::SwapMove {
            src_base, dst_base, ..
        }
        | Inst::SwapRun {
            src_base, dst_base, ..
        } => {
            vec![*src_base, *dst_base]
        }
        Inst::MovImm { .. } | Inst::Jmp { .. } | Inst::Halt => vec![],
    }
}

/// Register written by an instruction, if any.
fn writes(inst: &Inst) -> Option<Reg> {
    match inst {
        Inst::Ld { r, .. }
        | Inst::Bswap { r, .. }
        | Inst::SExt { r, .. }
        | Inst::MovImm { r, .. }
        | Inst::Mov { r, .. }
        | Inst::Add { r, .. }
        | Inst::AddImm { r, .. }
        | Inst::Sub { r, .. }
        | Inst::And { r, .. }
        | Inst::Or { r, .. }
        | Inst::Slt { r, .. }
        | Inst::Sltu { r, .. }
        | Inst::FltF64 { r, .. }
        | Inst::SetEqZ { r, .. }
        | Inst::CvtF32F64 { r }
        | Inst::CvtF64F32 { r }
        | Inst::CvtI64F64 { r }
        | Inst::CvtF64I64 { r } => Some(*r),
        _ => None,
    }
}

/// Conservative deadness: scanning forward from `from`, `r` is dead if it is
/// redefined before any read and before any block boundary, or the program
/// provably halts first.
fn reg_dead_after(insts: &[Inst], from: usize, r: Reg, leader_set: &HashSet<u32>) -> bool {
    for (i, inst) in insts.iter().enumerate().skip(from) {
        if leader_set.contains(&(i as u32)) {
            return false; // someone may jump here with r live
        }
        if reads(inst).contains(&r) {
            return false;
        }
        if writes(inst) == Some(r) {
            return true;
        }
        match inst {
            Inst::Halt => return true,
            Inst::Jmp { .. } | Inst::Brnz { .. } | Inst::Brz { .. } => return false,
            _ => {}
        }
    }
    true
}

/// Generic single-pass rewriter: `matcher(i)` may consume a window of
/// instructions and emit a replacement; branch targets are remapped.
fn rewrite(
    insts: &[Inst],
    leader_set: &HashSet<u32>,
    mut matcher: impl FnMut(usize) -> Option<(usize, Inst)>,
) -> Vec<Inst> {
    let mut out: Vec<Inst> = Vec::with_capacity(insts.len());
    // map[i] = index in `out` of the instruction that starts at old index i.
    let mut map = vec![u32::MAX; insts.len() + 1];
    let mut i = 0usize;
    while i < insts.len() {
        map[i] = out.len() as u32;
        if let Some((consumed, replacement)) = matcher(i) {
            debug_assert!(consumed >= 1);
            // The window must not contain a leader other than at its start.
            debug_assert!(
                (i + 1..i + consumed).all(|j| !leader_set.contains(&(j as u32))),
                "fusion window crosses a leader"
            );
            // Swallowed window positions should never be branch targets;
            // map them defensively to the replacement op.
            map[i + 1..i + consumed].fill(out.len() as u32);
            out.push(replacement);
            i += consumed;
        } else {
            out.push(insts[i]);
            i += 1;
        }
    }
    map[insts.len()] = out.len() as u32;
    for inst in &mut out {
        if let Some(t) = inst.branch_target() {
            inst.set_branch_target(map[t as usize]);
        }
    }
    out
}

/// Pass 1: fuse `Ld;Bswap;St` and `Ld;St` windows.
fn fuse_triples(insts: &[Inst], stats: &mut OptStats) -> Vec<Inst> {
    let leader_set = leaders(insts);
    let mut swap_moves = 0usize;
    let mut moves = 0usize;
    let out = rewrite(insts, &leader_set, |i| {
        let window_clear =
            |n: usize| (i + 1..i + n).all(|j| j < insts.len() && !leader_set.contains(&(j as u32)));
        // Ld(Src) ; Bswap(same w, same r) ; St(same w, same r)  ->  SwapMove
        if i + 2 < insts.len() && window_clear(3) {
            if let (
                Inst::Ld {
                    w,
                    r,
                    space: Space::Src,
                    base: sb,
                    disp: sd,
                },
                Inst::Bswap { w: w2, r: r2 },
                Inst::St {
                    w: w3,
                    base: db,
                    disp: dd,
                    r: r3,
                },
            ) = (insts[i], insts[i + 1], insts[i + 2])
            {
                if w == w2
                    && w == w3
                    && r == r2
                    && r == r3
                    && matches!(w, 2 | 4 | 8)
                    && r != sb
                    && r != db
                    && reg_dead_after(insts, i + 3, r, &leader_set)
                {
                    swap_moves += 1;
                    return Some((
                        3,
                        Inst::SwapMove {
                            w,
                            src_base: sb,
                            src_disp: sd,
                            dst_base: db,
                            dst_disp: dd,
                        },
                    ));
                }
            }
        }
        // Ld(Src) ; St(same w, same r)  ->  MemcpyImm(len = w)
        if i + 1 < insts.len() && window_clear(2) {
            if let (
                Inst::Ld {
                    w,
                    r,
                    space: Space::Src,
                    base: sb,
                    disp: sd,
                },
                Inst::St {
                    w: w2,
                    base: db,
                    disp: dd,
                    r: r2,
                },
            ) = (insts[i], insts[i + 1])
            {
                if w == w2
                    && r == r2
                    && r != sb
                    && r != db
                    && reg_dead_after(insts, i + 2, r, &leader_set)
                {
                    moves += 1;
                    return Some((
                        2,
                        Inst::MemcpyImm {
                            src_base: sb,
                            src_disp: sd,
                            dst_base: db,
                            dst_disp: dd,
                            len: w as u32,
                        },
                    ));
                }
            }
        }
        None
    });
    stats.fused_swap_moves = swap_moves;
    stats.fused_moves = moves;
    out
}

/// Pass 2: coalesce contiguous fused moves into block operations.
fn coalesce_runs(insts: &[Inst], stats: &mut OptStats) -> Vec<Inst> {
    let leader_set = leaders(insts);
    let mut runs = 0usize;
    let out = rewrite(insts, &leader_set, |i| match insts[i] {
        Inst::SwapMove {
            w,
            src_base,
            src_disp,
            dst_base,
            dst_disp,
        } => {
            let mut count = 1u32;
            loop {
                let j = i + count as usize;
                if j >= insts.len() || leader_set.contains(&(j as u32)) {
                    break;
                }
                match insts[j] {
                    Inst::SwapMove {
                        w: w2,
                        src_base: sb2,
                        src_disp: sd2,
                        dst_base: db2,
                        dst_disp: dd2,
                    } if w2 == w
                        && sb2 == src_base
                        && db2 == dst_base
                        && sd2 == src_disp + (count * w as u32) as i32
                        && dd2 == dst_disp + (count * w as u32) as i32 =>
                    {
                        count += 1;
                    }
                    _ => break,
                }
            }
            if count >= 2 {
                runs += 1;
                return Some((
                    count as usize,
                    Inst::SwapRun {
                        w,
                        src_base,
                        src_disp,
                        dst_base,
                        dst_disp,
                        count,
                    },
                ));
            }
            None
        }
        Inst::MemcpyImm {
            src_base,
            src_disp,
            dst_base,
            dst_disp,
            len,
        } => {
            let mut total = len;
            let mut consumed = 1usize;
            loop {
                let j = i + consumed;
                if j >= insts.len() || leader_set.contains(&(j as u32)) {
                    break;
                }
                match insts[j] {
                    Inst::MemcpyImm {
                        src_base: sb2,
                        src_disp: sd2,
                        dst_base: db2,
                        dst_disp: dd2,
                        len: l2,
                    } if sb2 == src_base
                        && db2 == dst_base
                        && sd2 == src_disp + total as i32
                        && dd2 == dst_disp + total as i32 =>
                    {
                        total += l2;
                        consumed += 1;
                    }
                    _ => break,
                }
            }
            if consumed >= 2 {
                runs += 1;
                return Some((
                    consumed,
                    Inst::MemcpyImm {
                        src_base,
                        src_disp,
                        dst_base,
                        dst_disp,
                        len: total,
                    },
                ));
            }
            None
        }
        _ => None,
    });
    stats.runs_coalesced = runs;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::exec::{run, run_reference};
    use crate::inst::abi;

    /// Run `prog` and its optimized form through both engines; all four
    /// destination buffers must agree.
    fn assert_equivalent(
        prog: &Program,
        src: &[u8],
        dst_len: usize,
        init: &[(Reg, u64)],
    ) -> Program {
        let opt = optimize(prog);
        let mut outs: Vec<Vec<u8>> = Vec::new();
        for p in [prog, &opt] {
            let mut d1 = vec![0u8; dst_len];
            run(p, src, &mut d1, init).unwrap();
            outs.push(d1);
            let mut d2 = vec![0u8; dst_len];
            run_reference(p, src, &mut d2, init).unwrap();
            outs.push(d2);
        }
        assert!(
            outs.windows(2).all(|w| w[0] == w[1]),
            "optimized program diverges"
        );
        opt
    }

    fn triple(a: &mut Assembler, w: u8, disp: i32) {
        a.ld(w, abi::SCRATCH0, Space::Src, abi::SRC, disp);
        a.bswap(w, abi::SCRATCH0);
        a.st(w, abi::DST, disp, abi::SCRATCH0);
    }

    #[test]
    fn fuses_single_triple() {
        let mut a = Assembler::new();
        triple(&mut a, 4, 0);
        let p = a.finish().unwrap();
        let opt = assert_equivalent(&p, &[1, 2, 3, 4], 4, &[]);
        assert_eq!(opt.len(), 2); // SwapMove + Halt
        assert!(matches!(opt.insts()[0], Inst::SwapMove { w: 4, .. }));
    }

    #[test]
    fn coalesces_contiguous_triples_into_run() {
        let mut a = Assembler::new();
        for k in 0..6 {
            triple(&mut a, 8, k * 8);
        }
        let p = a.finish().unwrap();
        let src: Vec<u8> = (0..48).collect();
        let opt = assert_equivalent(&p, &src, 48, &[]);
        assert_eq!(opt.len(), 2);
        assert!(matches!(
            opt.insts()[0],
            Inst::SwapRun { w: 8, count: 6, .. }
        ));
    }

    #[test]
    fn coalesces_plain_moves_into_memcpy() {
        let mut a = Assembler::new();
        for k in 0..4 {
            a.ld(4, abi::SCRATCH0, Space::Src, abi::SRC, k * 4);
            a.st(4, abi::DST, k * 4, abi::SCRATCH0);
        }
        let p = a.finish().unwrap();
        let src: Vec<u8> = (0..16).collect();
        let opt = assert_equivalent(&p, &src, 16, &[]);
        assert_eq!(opt.len(), 2);
        assert!(matches!(opt.insts()[0], Inst::MemcpyImm { len: 16, .. }));
    }

    #[test]
    fn mixed_width_runs_do_not_merge() {
        let mut a = Assembler::new();
        triple(&mut a, 4, 0);
        triple(&mut a, 8, 4);
        let p = a.finish().unwrap();
        let src: Vec<u8> = (0..12).collect();
        let opt = assert_equivalent(&p, &src, 12, &[]);
        assert_eq!(opt.len(), 3); // SwapMove(4) + SwapMove(8) + Halt
    }

    #[test]
    fn does_not_fuse_when_register_is_read_later() {
        let mut a = Assembler::new();
        a.ld(4, abi::SCRATCH0, Space::Src, abi::SRC, 0);
        a.bswap(4, abi::SCRATCH0);
        a.st(4, abi::DST, 0, abi::SCRATCH0);
        // Reads the scratch register: the triple must NOT be fused.
        a.st(4, abi::DST, 4, abi::SCRATCH0);
        let p = a.finish().unwrap();
        let opt = assert_equivalent(&p, &[1, 2, 3, 4], 8, &[]);
        assert_eq!(opt.len(), p.len());
    }

    #[test]
    fn fuses_when_register_is_redefined_later() {
        let mut a = Assembler::new();
        triple(&mut a, 4, 0);
        a.mov_imm(abi::SCRATCH0, 0); // redefinition makes the scratch dead
        let p = a.finish().unwrap();
        let opt = assert_equivalent(&p, &[1, 2, 3, 4], 4, &[]);
        assert!(matches!(opt.insts()[0], Inst::SwapMove { .. }));
    }

    #[test]
    fn does_not_fuse_across_branch_targets() {
        let mut a = Assembler::new();
        let top = a.new_label();
        a.mov_imm(Reg(9), 2);
        a.ld(4, abi::SCRATCH0, Space::Src, abi::SRC, 0);
        a.bind(top); // jump target lands between Ld and Bswap
        a.bswap(4, abi::SCRATCH0);
        a.st(4, abi::DST, 0, abi::SCRATCH0);
        a.add_imm(Reg(9), Reg(9), -1);
        a.brnz(Reg(9), top);
        let p = a.finish().unwrap();
        let opt = assert_equivalent(&p, &[1, 2, 3, 4], 4, &[]);
        // Nothing fusable: the window would cross the leader.
        assert_eq!(opt.len(), p.len());
    }

    #[test]
    fn branch_targets_remap_after_fusion() {
        // Loop over 3 elements, with a fusable prologue before the loop.
        let mut a = Assembler::new();
        triple(&mut a, 4, 0); // will fuse: indices shift
        let top = a.new_label();
        let done = a.new_label();
        a.mov_imm(Reg(9), 3);
        a.bind(top);
        a.brz(Reg(9), done);
        a.ld(1, Reg(10), Space::Src, abi::SRC, 4);
        a.st(1, abi::DST, 4, Reg(10));
        a.add_imm(abi::SRC, abi::SRC, 1);
        a.add_imm(abi::DST, abi::DST, 1);
        a.add_imm(Reg(9), Reg(9), -1);
        a.jmp(top);
        a.bind(done);
        a.halt();
        let p = a.finish().unwrap();
        let src: Vec<u8> = vec![1, 2, 3, 4, 10, 11, 12];
        assert_equivalent(&p, &src, 16, &[]);
    }

    #[test]
    fn stats_are_reported() {
        let mut a = Assembler::new();
        for k in 0..3 {
            triple(&mut a, 4, k * 4);
        }
        let p = a.finish().unwrap();
        let (_, stats) = optimize_with_stats(&p);
        assert_eq!(stats.fused_swap_moves, 3);
        assert_eq!(stats.runs_coalesced, 1);
        assert_eq!(stats.before, 10);
        assert_eq!(stats.after, 2);
    }

    #[test]
    fn non_contiguous_moves_stay_separate() {
        let mut a = Assembler::new();
        triple(&mut a, 4, 0);
        triple(&mut a, 4, 12); // gap: not contiguous
        let p = a.finish().unwrap();
        let src: Vec<u8> = (0..16).collect();
        let opt = assert_equivalent(&p, &src, 16, &[]);
        assert_eq!(opt.len(), 3);
        assert!(matches!(opt.insts()[0], Inst::SwapMove { .. }));
        assert!(matches!(opt.insts()[1], Inst::SwapMove { .. }));
    }
}
