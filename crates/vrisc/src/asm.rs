//! The Vcode-style assembler: generate instructions into a buffer, bind
//! labels, seal into an executable [`Program`].
//!
//! Mirrors Vcode's usage pattern: the PBIO conversion code generator calls
//! emission methods (`ld_u`, `bswap`, `st`, `brnz`, ...) as it walks the
//! incoming wire format, then calls [`Assembler::finish`] once. `finish`
//! resolves label fixups and *validates the whole program* (register bounds,
//! widths, bound labels, in-range targets), so the executors never have to —
//! the validate-once / run-fast split idiomatic to HPC Rust.

use std::fmt;

use crate::inst::{Inst, Reg, Space, NUM_REGS};

/// An abstract jump target handed out by [`Assembler::new_label`] and bound
/// with [`Assembler::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(u32);

/// Errors detected while sealing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was used in a branch but never bound.
    UnboundLabel(u32),
    /// A label was bound twice.
    ReboundLabel(u32),
    /// A register index ≥ [`NUM_REGS`].
    BadRegister(u8),
    /// A load/store/extend width outside {1, 2, 4, 8}, or a 1-byte swap.
    BadWidth(u8),
    /// The program has no instructions.
    Empty,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label L{l} used but never bound"),
            AsmError::ReboundLabel(l) => write!(f, "label L{l} bound twice"),
            AsmError::BadRegister(r) => write!(f, "register r{r} out of range"),
            AsmError::BadWidth(w) => write!(f, "invalid access width {w}"),
            AsmError::Empty => write!(f, "empty program"),
        }
    }
}

impl std::error::Error for AsmError {}

/// A sealed, validated instruction sequence ready for execution.
///
/// Programs always end with [`Inst::Halt`] (appended by [`Assembler::finish`]
/// if the generator did not emit one), so the executor's program counter can
/// never run off the end.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    insts: Vec<Inst>,
}

impl Program {
    /// The validated instructions.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions (a proxy for generated-code size, reported by
    /// the DCG statistics in benchmarks).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the program is just a `Halt`.
    pub fn is_empty(&self) -> bool {
        self.insts.len() <= 1
    }

    /// Build a program directly from instructions (used by the optimizer,
    /// which transforms already-validated programs). Validates the result.
    pub fn from_insts(insts: Vec<Inst>) -> Result<Program, AsmError> {
        validate(&insts)?;
        Ok(Program { insts })
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, inst) in self.insts.iter().enumerate() {
            writeln!(f, "{i:4}: {inst:?}")?;
        }
        Ok(())
    }
}

const UNBOUND: u32 = u32::MAX;

/// Incremental program builder with label fixup — the Vcode emission API.
#[derive(Debug, Default)]
pub struct Assembler {
    insts: Vec<Inst>,
    /// Label id -> bound instruction index (UNBOUND until bound).
    labels: Vec<u32>,
    /// (instruction index, label id) pairs needing fixup at finish.
    fixups: Vec<(u32, u32)>,
    errors: Vec<AsmError>,
}

impl Assembler {
    /// Start an empty program.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Allocate a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        let id = self.labels.len() as u32;
        self.labels.push(UNBOUND);
        Label(id)
    }

    /// Bind `label` to the *next* emitted instruction.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0 as usize];
        if *slot != UNBOUND {
            self.errors.push(AsmError::ReboundLabel(label.0));
            return;
        }
        *slot = self.insts.len() as u32;
    }

    fn check_reg(&mut self, r: Reg) -> Reg {
        if (r.0 as usize) >= NUM_REGS {
            self.errors.push(AsmError::BadRegister(r.0));
        }
        r
    }

    fn check_width(&mut self, w: u8) -> u8 {
        if !matches!(w, 1 | 2 | 4 | 8) {
            self.errors.push(AsmError::BadWidth(w));
        }
        w
    }

    fn emit(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// Emit `r <- zext(mem[space][base+disp], w)`.
    pub fn ld(&mut self, w: u8, r: Reg, space: Space, base: Reg, disp: i32) {
        let w = self.check_width(w);
        let r = self.check_reg(r);
        let base = self.check_reg(base);
        self.emit(Inst::Ld {
            w,
            r,
            space,
            base,
            disp,
        });
    }

    /// Emit a store of the low `w` bytes of `r` to `Dst[base+disp]`.
    pub fn st(&mut self, w: u8, base: Reg, disp: i32, r: Reg) {
        let w = self.check_width(w);
        let r = self.check_reg(r);
        let base = self.check_reg(base);
        self.emit(Inst::St { w, base, disp, r });
    }

    /// Emit an in-place byte swap of the low `w` bytes of `r` (w ∈ {2,4,8}).
    pub fn bswap(&mut self, w: u8, r: Reg) {
        if !matches!(w, 2 | 4 | 8) {
            self.errors.push(AsmError::BadWidth(w));
        }
        let r = self.check_reg(r);
        self.emit(Inst::Bswap { w, r });
    }

    /// Emit an in-place sign extension of the low `from` bytes of `r`.
    pub fn sext(&mut self, from: u8, r: Reg) {
        let from = self.check_width(from);
        let r = self.check_reg(r);
        self.emit(Inst::SExt { from, r });
    }

    /// Emit `r <- v`.
    pub fn mov_imm(&mut self, r: Reg, v: u64) {
        let r = self.check_reg(r);
        self.emit(Inst::MovImm { r, v });
    }

    /// Emit `r <- from`.
    pub fn mov(&mut self, r: Reg, from: Reg) {
        let r = self.check_reg(r);
        let from = self.check_reg(from);
        self.emit(Inst::Mov { r, from });
    }

    /// Emit `r <- a + b`.
    pub fn add(&mut self, r: Reg, a: Reg, b: Reg) {
        let r = self.check_reg(r);
        let a = self.check_reg(a);
        let b = self.check_reg(b);
        self.emit(Inst::Add { r, a, b });
    }

    /// Emit `r <- a + v`.
    pub fn add_imm(&mut self, r: Reg, a: Reg, v: i64) {
        let r = self.check_reg(r);
        let a = self.check_reg(a);
        self.emit(Inst::AddImm { r, a, v });
    }

    fn alu3(&mut self, r: Reg, a: Reg, b: Reg, make: impl FnOnce(Reg, Reg, Reg) -> Inst) {
        let r = self.check_reg(r);
        let a = self.check_reg(a);
        let b = self.check_reg(b);
        self.emit(make(r, a, b));
    }

    /// Emit `r <- a - b`.
    pub fn sub(&mut self, r: Reg, a: Reg, b: Reg) {
        self.alu3(r, a, b, |r, a, b| Inst::Sub { r, a, b });
    }

    /// Emit `r <- a & b`.
    pub fn and(&mut self, r: Reg, a: Reg, b: Reg) {
        self.alu3(r, a, b, |r, a, b| Inst::And { r, a, b });
    }

    /// Emit `r <- a | b`.
    pub fn or(&mut self, r: Reg, a: Reg, b: Reg) {
        self.alu3(r, a, b, |r, a, b| Inst::Or { r, a, b });
    }

    /// Emit a signed set-less-than.
    pub fn slt(&mut self, r: Reg, a: Reg, b: Reg) {
        self.alu3(r, a, b, |r, a, b| Inst::Slt { r, a, b });
    }

    /// Emit an unsigned set-less-than.
    pub fn sltu(&mut self, r: Reg, a: Reg, b: Reg) {
        self.alu3(r, a, b, |r, a, b| Inst::Sltu { r, a, b });
    }

    /// Emit an f64 set-less-than (operands are f64 bit patterns).
    pub fn flt_f64(&mut self, r: Reg, a: Reg, b: Reg) {
        self.alu3(r, a, b, |r, a, b| Inst::FltF64 { r, a, b });
    }

    /// Emit `r <- (a == 0) ? 1 : 0`.
    pub fn set_eqz(&mut self, r: Reg, a: Reg) {
        let r = self.check_reg(r);
        let a = self.check_reg(a);
        self.emit(Inst::SetEqZ { r, a });
    }

    /// Emit an f32→f64 widening of the bits in `r`.
    pub fn cvt_f32_f64(&mut self, r: Reg) {
        let r = self.check_reg(r);
        self.emit(Inst::CvtF32F64 { r });
    }

    /// Emit an f64→f32 narrowing of the bits in `r`.
    pub fn cvt_f64_f32(&mut self, r: Reg) {
        let r = self.check_reg(r);
        self.emit(Inst::CvtF64F32 { r });
    }

    /// Emit an i64→f64 conversion of `r`.
    pub fn cvt_i64_f64(&mut self, r: Reg) {
        let r = self.check_reg(r);
        self.emit(Inst::CvtI64F64 { r });
    }

    /// Emit an f64→i64 conversion of `r`.
    pub fn cvt_f64_i64(&mut self, r: Reg) {
        let r = self.check_reg(r);
        self.emit(Inst::CvtF64I64 { r });
    }

    fn branch(&mut self, label: Label, make: impl FnOnce(u32) -> Inst) {
        let idx = self.insts.len() as u32;
        self.fixups.push((idx, label.0));
        self.emit(make(UNBOUND));
    }

    /// Emit an unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) {
        self.branch(label, |t| Inst::Jmp { target: t });
    }

    /// Emit a branch to `label` if `r != 0`.
    pub fn brnz(&mut self, r: Reg, label: Label) {
        let r = self.check_reg(r);
        self.branch(label, |t| Inst::Brnz { r, target: t });
    }

    /// Emit a branch to `label` if `r == 0`.
    pub fn brz(&mut self, r: Reg, label: Label) {
        let r = self.check_reg(r);
        self.branch(label, |t| Inst::Brz { r, target: t });
    }

    /// Emit a fixed-length block copy from `Src` to `Dst`.
    pub fn memcpy_imm(
        &mut self,
        src_base: Reg,
        src_disp: i32,
        dst_base: Reg,
        dst_disp: i32,
        len: u32,
    ) {
        let src_base = self.check_reg(src_base);
        let dst_base = self.check_reg(dst_base);
        self.emit(Inst::MemcpyImm {
            src_base,
            src_disp,
            dst_base,
            dst_disp,
            len,
        });
    }

    /// Emit a runtime-length block copy from `Src` to `Dst`.
    pub fn memcpy_reg(
        &mut self,
        src_base: Reg,
        src_disp: i32,
        dst_base: Reg,
        dst_disp: i32,
        len: Reg,
    ) {
        let src_base = self.check_reg(src_base);
        let dst_base = self.check_reg(dst_base);
        let len = self.check_reg(len);
        self.emit(Inst::MemcpyReg {
            src_base,
            src_disp,
            dst_base,
            dst_disp,
            len,
        });
    }

    /// Emit a zero-fill of `len` bytes in `Dst`.
    pub fn memset_zero(&mut self, base: Reg, disp: i32, len: u32) {
        let base = self.check_reg(base);
        self.emit(Inst::MemsetZero { base, disp, len });
    }

    /// Emit a byte-swapping block copy of `count` scalars of width `w`.
    /// Normally a peephole product, but code generators that statically know
    /// an array is a uniform swap may emit it directly.
    pub fn swap_run(
        &mut self,
        w: u8,
        src_base: Reg,
        src_disp: i32,
        dst_base: Reg,
        dst_disp: i32,
        count: u32,
    ) {
        if !matches!(w, 2 | 4 | 8) {
            self.errors.push(AsmError::BadWidth(w));
        }
        let src_base = self.check_reg(src_base);
        let dst_base = self.check_reg(dst_base);
        self.emit(Inst::SwapRun {
            w,
            src_base,
            src_disp,
            dst_base,
            dst_disp,
            count,
        });
    }

    /// Emit `Halt`.
    pub fn halt(&mut self) {
        self.emit(Inst::Halt);
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Resolve fixups, validate, and seal the program.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        if self.insts.is_empty() {
            return Err(AsmError::Empty);
        }
        if !matches!(self.insts.last(), Some(Inst::Halt)) {
            self.insts.push(Inst::Halt);
        }
        for (inst_idx, label_id) in self.fixups {
            let target = self.labels[label_id as usize];
            if target == UNBOUND {
                return Err(AsmError::UnboundLabel(label_id));
            }
            self.insts[inst_idx as usize].set_branch_target(target);
        }
        validate(&self.insts)?;
        Ok(Program { insts: self.insts })
    }
}

/// Full-program validation shared by the assembler and the optimizer.
fn validate(insts: &[Inst]) -> Result<(), AsmError> {
    if insts.is_empty() {
        return Err(AsmError::Empty);
    }
    let n = insts.len() as u32;
    for inst in insts {
        if let Some(t) = inst.branch_target() {
            if t >= n {
                // A target past the end can only arise from a bug in the
                // optimizer's index remapping; report it as unbound.
                return Err(AsmError::UnboundLabel(t));
            }
        }
        let regs: &[Reg] = match inst {
            Inst::Ld { r, base, .. } => &[*r, *base],
            Inst::St { base, r, .. } => &[*base, *r],
            Inst::Bswap { r, .. }
            | Inst::SExt { r, .. }
            | Inst::MovImm { r, .. }
            | Inst::CvtF32F64 { r }
            | Inst::CvtF64F32 { r }
            | Inst::CvtI64F64 { r }
            | Inst::CvtF64I64 { r }
            | Inst::Brnz { r, .. }
            | Inst::Brz { r, .. } => &[*r],
            Inst::Mov { r, from } => &[*r, *from],
            Inst::Add { r, a, b }
            | Inst::Sub { r, a, b }
            | Inst::And { r, a, b }
            | Inst::Or { r, a, b }
            | Inst::Slt { r, a, b }
            | Inst::Sltu { r, a, b }
            | Inst::FltF64 { r, a, b } => &[*r, *a, *b],
            Inst::AddImm { r, a, .. } | Inst::SetEqZ { r, a } => &[*r, *a],
            Inst::MemcpyImm {
                src_base, dst_base, ..
            } => &[*src_base, *dst_base],
            Inst::MemcpyReg {
                src_base,
                dst_base,
                len,
                ..
            } => &[*src_base, *dst_base, *len],
            Inst::MemsetZero { base, .. } => &[*base],
            Inst::SwapMove {
                src_base, dst_base, ..
            }
            | Inst::SwapRun {
                src_base, dst_base, ..
            } => &[*src_base, *dst_base],
            Inst::Jmp { .. } | Inst::Halt => &[],
        };
        for r in regs {
            if (r.0 as usize) >= NUM_REGS {
                return Err(AsmError::BadRegister(r.0));
            }
        }
        match inst {
            Inst::Ld { w, .. } | Inst::St { w, .. } | Inst::SExt { from: w, .. }
                if !matches!(w, 1 | 2 | 4 | 8) =>
            {
                return Err(AsmError::BadWidth(*w));
            }
            Inst::Bswap { w, .. } | Inst::SwapMove { w, .. } | Inst::SwapRun { w, .. }
                if !matches!(w, 2 | 4 | 8) =>
            {
                return Err(AsmError::BadWidth(*w));
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::abi;

    #[test]
    fn simple_program_builds() {
        let mut a = Assembler::new();
        a.ld(4, abi::SCRATCH0, Space::Src, abi::SRC, 0);
        a.bswap(4, abi::SCRATCH0);
        a.st(4, abi::DST, 0, abi::SCRATCH0);
        let p = a.finish().unwrap();
        // Halt appended automatically.
        assert_eq!(p.len(), 4);
        assert_eq!(p.insts().last(), Some(&Inst::Halt));
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut a = Assembler::new();
        let top = a.new_label();
        let out = a.new_label();
        a.mov_imm(Reg(2), 3);
        a.bind(top);
        a.brz(Reg(2), out); // forward reference
        a.add_imm(Reg(2), Reg(2), -1);
        a.jmp(top); // backward reference
        a.bind(out);
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(
            p.insts()[1],
            Inst::Brz {
                r: Reg(2),
                target: 4
            }
        );
        assert_eq!(p.insts()[3], Inst::Jmp { target: 1 });
    }

    #[test]
    fn unbound_label_rejected() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.jmp(l);
        assert_eq!(a.finish().unwrap_err(), AsmError::UnboundLabel(0));
    }

    #[test]
    fn rebound_label_rejected() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.bind(l);
        a.halt();
        a.bind(l);
        a.halt();
        assert_eq!(a.finish().unwrap_err(), AsmError::ReboundLabel(0));
    }

    #[test]
    fn bad_register_rejected() {
        let mut a = Assembler::new();
        a.mov_imm(Reg(200), 1);
        assert_eq!(a.finish().unwrap_err(), AsmError::BadRegister(200));
    }

    #[test]
    fn bad_width_rejected() {
        let mut a = Assembler::new();
        a.ld(3, Reg(2), Space::Src, abi::SRC, 0);
        assert_eq!(a.finish().unwrap_err(), AsmError::BadWidth(3));

        let mut a = Assembler::new();
        a.bswap(1, Reg(2));
        assert_eq!(a.finish().unwrap_err(), AsmError::BadWidth(1));
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(Assembler::new().finish().unwrap_err(), AsmError::Empty);
    }

    #[test]
    fn from_insts_validates_targets() {
        let bad = vec![Inst::Jmp { target: 10 }, Inst::Halt];
        assert!(Program::from_insts(bad).is_err());
        let ok = vec![Inst::Jmp { target: 1 }, Inst::Halt];
        assert!(Program::from_insts(ok).is_ok());
    }

    #[test]
    fn display_lists_instructions() {
        let mut a = Assembler::new();
        a.halt();
        let p = a.finish().unwrap();
        assert!(p.to_string().contains("Halt"));
    }
}
