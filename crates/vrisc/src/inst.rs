//! The virtual RISC instruction set.
//!
//! Registers are 64-bit and untyped (float conversions reinterpret register
//! bits, as a real RISC would move values between integer and FP register
//! files). Loads zero-extend; sign extension is an explicit instruction so
//! that byte-swapped foreign-endian values can be extended *after* the swap,
//! which is exactly the order generated conversion code needs.
//!
//! Memory is two disjoint spaces:
//! * [`Space::Src`] — the read-only receive buffer (foreign wire data),
//! * [`Space::Dst`] — the writable native record being produced.
//!
//! Loads may address either space; stores always write `Dst`. Addresses are
//! `register + displacement`; there are no absolute addresses, so a program
//! is position-independent with respect to the buffers it is run against.
//!
//! Scalar loads/stores move bytes in **little-endian** register order (the
//! virtual machine's native order). Foreign byte order is handled by
//! explicit [`Inst::Bswap`] instructions, mirroring how Vcode-generated
//! native code byte-swaps on the host.

/// A register index (0..[`NUM_REGS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

/// Number of general-purpose registers.
pub const NUM_REGS: usize = 32;

/// Conventional register assignments used by the PBIO conversion code
/// generator (the optimizer recognizes runs relative to these cursors, and
/// callers initialize them before running a program).
pub mod abi {
    use super::Reg;
    /// Cursor into the source (wire) buffer.
    pub const SRC: Reg = Reg(0);
    /// Cursor into the destination (native) buffer.
    pub const DST: Reg = Reg(1);
    /// First scratch register available to generated code.
    pub const SCRATCH0: Reg = Reg(8);
}

/// Which memory space an access addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// The read-only receive buffer.
    Src,
    /// The writable output record.
    Dst,
}

/// An unresolved branch target (see [`crate::asm::Label`]); stored as raw
/// index once a program is sealed.
pub type Target = u32;

/// One virtual RISC instruction.
///
/// Widths (`w`, `from`) are always 1, 2, 4 or 8 bytes; the assembler rejects
/// anything else at generation time so the executor never re-validates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Inst {
    /// `r <- zext(mem[space][base + disp], w)`.
    Ld {
        /// Access width in bytes.
        w: u8,
        /// Destination register.
        r: Reg,
        /// Memory space to read.
        space: Space,
        /// Base address register.
        base: Reg,
        /// Constant displacement added to the base.
        disp: i32,
    },
    /// `mem[Dst][base + disp] <- low w bytes of r`.
    St {
        /// Access width in bytes.
        w: u8,
        /// Base address register.
        base: Reg,
        /// Constant displacement added to the base.
        disp: i32,
        /// Source register.
        r: Reg,
    },
    /// Byte-swap the low `w` bytes of `r`, zero-extending the result.
    Bswap {
        /// Width in bytes (2, 4 or 8; 1 is a no-op the assembler rejects).
        w: u8,
        /// Register to swap in place.
        r: Reg,
    },
    /// Sign-extend the low `from` bytes of `r` to 64 bits.
    SExt {
        /// Width of the value currently in the register.
        from: u8,
        /// Register to extend in place.
        r: Reg,
    },
    /// `r <- imm`.
    MovImm {
        /// Destination register.
        r: Reg,
        /// Immediate value.
        v: u64,
    },
    /// `r <- from`.
    Mov {
        /// Destination register.
        r: Reg,
        /// Source register.
        from: Reg,
    },
    /// `r <- a + b` (wrapping).
    Add {
        /// Destination register.
        r: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `r <- a + v` (wrapping).
    AddImm {
        /// Destination register.
        r: Reg,
        /// Operand register.
        a: Reg,
        /// Signed immediate.
        v: i64,
    },
    /// `r <- a - b` (wrapping).
    Sub {
        /// Destination register.
        r: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `r <- a & b`.
    And {
        /// Destination register.
        r: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `r <- a | b`.
    Or {
        /// Destination register.
        r: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `r <- (a as i64) < (b as i64) ? 1 : 0` (set-less-than, signed).
    Slt {
        /// Destination register.
        r: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `r <- a < b ? 1 : 0` (unsigned).
    Sltu {
        /// Destination register.
        r: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `r <- f64(a) < f64(b) ? 1 : 0` (IEEE semantics: false on NaN).
    FltF64 {
        /// Destination register.
        r: Reg,
        /// Left operand (f64 bits).
        a: Reg,
        /// Right operand (f64 bits).
        b: Reg,
    },
    /// `r <- (a == 0) ? 1 : 0` (RISC-V `seqz`).
    SetEqZ {
        /// Destination register.
        r: Reg,
        /// Operand.
        a: Reg,
    },
    /// Reinterpret the low 32 bits of `r` as an `f32` and widen: `r <-
    /// bits(f64(f32_bits(r)))`.
    CvtF32F64 {
        /// Register converted in place.
        r: Reg,
    },
    /// Narrow the f64 bit pattern in `r` to an f32 bit pattern (low 32 bits).
    CvtF64F32 {
        /// Register converted in place.
        r: Reg,
    },
    /// `r <- bits(f64(r as i64))` — integer to double.
    CvtI64F64 {
        /// Register converted in place.
        r: Reg,
    },
    /// `r <- f64_bits(r) as i64` (saturating toward zero, like Rust `as`).
    CvtF64I64 {
        /// Register converted in place.
        r: Reg,
    },
    /// Unconditional jump.
    Jmp {
        /// Instruction index to jump to.
        target: Target,
    },
    /// Branch if `r != 0`.
    Brnz {
        /// Condition register.
        r: Reg,
        /// Instruction index to jump to.
        target: Target,
    },
    /// Branch if `r == 0`.
    Brz {
        /// Condition register.
        r: Reg,
        /// Instruction index to jump to.
        target: Target,
    },
    /// Copy `len` bytes `Src[src_base+src_disp ..] -> Dst[dst_base+dst_disp ..]`.
    MemcpyImm {
        /// Source cursor register.
        src_base: Reg,
        /// Source displacement.
        src_disp: i32,
        /// Destination cursor register.
        dst_base: Reg,
        /// Destination displacement.
        dst_disp: i32,
        /// Number of bytes to copy.
        len: u32,
    },
    /// Copy `len_reg` bytes (runtime length) between the cursors.
    MemcpyReg {
        /// Source cursor register.
        src_base: Reg,
        /// Source displacement.
        src_disp: i32,
        /// Destination cursor register.
        dst_base: Reg,
        /// Destination displacement.
        dst_disp: i32,
        /// Register carrying the byte count.
        len: Reg,
    },
    /// Zero `len` bytes at `Dst[base+disp ..]` (used to clear padding).
    MemsetZero {
        /// Destination cursor register.
        base: Reg,
        /// Destination displacement.
        disp: i32,
        /// Number of bytes to zero.
        len: u32,
    },
    /// Fused by the optimizer: load `w` bytes at `Src[src_base+src_disp]`,
    /// byte-swap, store at `Dst[dst_base+dst_disp]`.
    SwapMove {
        /// Scalar width (2, 4 or 8).
        w: u8,
        /// Source cursor register.
        src_base: Reg,
        /// Source displacement.
        src_disp: i32,
        /// Destination cursor register.
        dst_base: Reg,
        /// Destination displacement.
        dst_disp: i32,
    },
    /// Fused by the optimizer: `count` consecutive [`Inst::SwapMove`]s of the
    /// same width with contiguous displacements — a byte-swapping block copy.
    SwapRun {
        /// Scalar width (2, 4 or 8).
        w: u8,
        /// Source cursor register.
        src_base: Reg,
        /// Source displacement of the first scalar.
        src_disp: i32,
        /// Destination cursor register.
        dst_base: Reg,
        /// Destination displacement of the first scalar.
        dst_disp: i32,
        /// Number of scalars.
        count: u32,
    },
    /// Stop execution successfully.
    Halt,
}

impl Inst {
    /// True for control-transfer instructions.
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Inst::Jmp { .. } | Inst::Brnz { .. } | Inst::Brz { .. }
        )
    }

    /// Branch target, if any.
    pub fn branch_target(&self) -> Option<Target> {
        match self {
            Inst::Jmp { target } | Inst::Brnz { target, .. } | Inst::Brz { target, .. } => {
                Some(*target)
            }
            _ => None,
        }
    }

    /// Rewrite the branch target (no-op for non-branches).
    pub fn set_branch_target(&mut self, new: Target) {
        match self {
            Inst::Jmp { target } | Inst::Brnz { target, .. } | Inst::Brz { target, .. } => {
                *target = new
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_helpers() {
        let mut j = Inst::Jmp { target: 7 };
        assert!(j.is_branch());
        assert_eq!(j.branch_target(), Some(7));
        j.set_branch_target(9);
        assert_eq!(j.branch_target(), Some(9));

        let mut ld = Inst::Ld {
            w: 4,
            r: Reg(2),
            space: Space::Src,
            base: abi::SRC,
            disp: 0,
        };
        assert!(!ld.is_branch());
        assert_eq!(ld.branch_target(), None);
        ld.set_branch_target(3); // no-op
        assert_eq!(ld.branch_target(), None);
    }

    #[test]
    fn abi_registers_are_distinct() {
        assert_ne!(abi::SRC, abi::DST);
        // Constant by construction, but guards against careless edits.
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(abi::SCRATCH0.0 > abi::DST.0);
            assert!((abi::SCRATCH0.0 as usize) < NUM_REGS);
        }
    }
}
