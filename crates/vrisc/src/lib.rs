//! # pbio-vrisc — a Vcode-analogue dynamic code generation substrate
//!
//! The paper's PBIO removes receiver-side interpretation overhead by using
//! **Vcode** (Engler, PLDI '96) to generate native machine code for each
//! incoming wire format at run time: "Vcode essentially provides an API for a
//! virtual RISC instruction set … native machine instructions are generated
//! directly into a memory buffer and can be executed without reference to an
//! external compiler or linker" (§4.3).
//!
//! Rust has no idiomatic runtime native-code generation, so this crate
//! reproduces the *architecture* of Vcode rather than its mechanism:
//!
//! * [`inst::Inst`] — a virtual RISC instruction set sized like Vcode's
//!   (loads/stores with displacement, byte-swaps, sign-extension, float
//!   conversions, arithmetic, compare-and-branch, and block-copy intrinsics).
//! * [`asm::Assembler`] — the Vcode-style emission API: conversion code is
//!   *generated* instruction by instruction into a buffer, with labels and
//!   fixups, then sealed into an executable [`asm::Program`].
//! * [`opt`] — a peephole pass mirroring the paper's "runtime binary code
//!   optimization methods" (§5): fuses load/swap/store triples and coalesces
//!   adjacent moves into block operations, which is what lets generated
//!   conversions run "near the level of a copy operation" (§4.3).
//! * [`exec`] — the execution engine: a sealed program is *decoded once* into
//!   a dense op array and then run by a tight dispatch loop with no
//!   per-record descriptor walking — the analogue of jumping into generated
//!   native code. A deliberately naive reference executor is kept alongside
//!   for differential testing.
//!
//! The machine model is deliberately narrow, matching its one job (data
//! format conversion): two memory spaces — a read-only **source** buffer
//! (the receive buffer) and a writable **destination** buffer (the native
//! record) — 32 general registers of 64 bits, and no heap.

#![warn(missing_docs)]

pub mod analysis;
pub mod asm;
pub mod exec;
pub mod inst;
pub mod opt;

pub use analysis::{analyze, Extents};
pub use asm::{Assembler, Label, Program};
pub use exec::{run, run_reference, run_straightline, ExecError, Stats};
pub use inst::{Inst, Reg, Space};
