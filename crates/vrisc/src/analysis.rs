//! Static bounds analysis for straight-line programs.
//!
//! The conversion routines PBIO generates for fixed-layout records are
//! *straight-line*: no branches, and every memory access is
//! `cursor + constant` with cursors that are never modified. For such
//! programs the exact memory footprint is known at generation time, so the
//! per-access bounds checks in [`crate::exec::run`] are provably redundant
//! once the buffer lengths have been checked **once** against the analyzed
//! extents.
//!
//! [`analyze`] computes those extents (conservatively refusing anything it
//! cannot prove); [`crate::exec::run_straightline`] uses them to execute
//! with a single up-front check — the validate-once / run-fast split that
//! high-performance Rust favors, applied to generated code.

use crate::asm::Program;
use crate::inst::{Inst, Reg, Space};

/// The proven memory footprint of a straight-line program executed with all
/// registers initialized to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extents {
    /// Bytes of source buffer the program may read (`src.len()` must be ≥).
    pub src_needed: usize,
    /// Bytes of destination buffer the program may access.
    pub dst_needed: usize,
    /// Number of instructions (all of which execute exactly once).
    pub inst_count: usize,
}

/// Try to prove a program straight-line and compute its extents. Returns
/// `None` when the program:
///
/// * contains any branch (loops execute data-dependent counts),
/// * uses a runtime-length copy ([`Inst::MemcpyReg`]),
/// * addresses memory through a register that any instruction writes
///   (cursor arithmetic makes displacements non-constant), or
/// * uses a negative displacement (would underflow the zero-initialized
///   cursor).
pub fn analyze(prog: &Program) -> Option<Extents> {
    let insts = prog.insts();

    // Pass 1: collect registers written anywhere.
    let mut written = [false; crate::inst::NUM_REGS];
    for inst in insts {
        match inst {
            Inst::Jmp { .. } | Inst::Brnz { .. } | Inst::Brz { .. } | Inst::MemcpyReg { .. } => {
                return None
            }
            Inst::Ld { r, .. }
            | Inst::Bswap { r, .. }
            | Inst::SExt { r, .. }
            | Inst::MovImm { r, .. }
            | Inst::Mov { r, .. }
            | Inst::Add { r, .. }
            | Inst::AddImm { r, .. }
            | Inst::Sub { r, .. }
            | Inst::And { r, .. }
            | Inst::Or { r, .. }
            | Inst::Slt { r, .. }
            | Inst::Sltu { r, .. }
            | Inst::FltF64 { r, .. }
            | Inst::SetEqZ { r, .. }
            | Inst::CvtF32F64 { r }
            | Inst::CvtF64F32 { r }
            | Inst::CvtI64F64 { r }
            | Inst::CvtF64I64 { r } => written[r.0 as usize] = true,
            _ => {}
        }
    }

    // Pass 2: every base register must be constant-zero (never written) and
    // every displacement non-negative; accumulate extents.
    let mut src_needed = 0usize;
    let mut dst_needed = 0usize;
    let base_ok = |written: &[bool; crate::inst::NUM_REGS], base: Reg| !written[base.0 as usize];
    let touch = |needed: &mut usize, disp: i32, len: usize| -> Option<()> {
        if disp < 0 {
            return None;
        }
        *needed = (*needed).max(disp as usize + len);
        Some(())
    };
    for inst in insts {
        match *inst {
            Inst::Ld {
                w,
                space,
                base,
                disp,
                ..
            } => {
                if !base_ok(&written, base) {
                    return None;
                }
                let needed = match space {
                    Space::Src => &mut src_needed,
                    Space::Dst => &mut dst_needed,
                };
                touch(needed, disp, w as usize)?;
            }
            Inst::St { w, base, disp, .. } => {
                if !base_ok(&written, base) {
                    return None;
                }
                touch(&mut dst_needed, disp, w as usize)?;
            }
            Inst::MemcpyImm {
                src_base,
                src_disp,
                dst_base,
                dst_disp,
                len,
            } => {
                if !base_ok(&written, src_base) || !base_ok(&written, dst_base) {
                    return None;
                }
                touch(&mut src_needed, src_disp, len as usize)?;
                touch(&mut dst_needed, dst_disp, len as usize)?;
            }
            Inst::MemsetZero { base, disp, len } => {
                if !base_ok(&written, base) {
                    return None;
                }
                touch(&mut dst_needed, disp, len as usize)?;
            }
            Inst::SwapMove {
                w,
                src_base,
                src_disp,
                dst_base,
                dst_disp,
            } => {
                if !base_ok(&written, src_base) || !base_ok(&written, dst_base) {
                    return None;
                }
                touch(&mut src_needed, src_disp, w as usize)?;
                touch(&mut dst_needed, dst_disp, w as usize)?;
            }
            Inst::SwapRun {
                w,
                src_base,
                src_disp,
                dst_base,
                dst_disp,
                count,
            } => {
                if !base_ok(&written, src_base) || !base_ok(&written, dst_base) {
                    return None;
                }
                let total = w as usize * count as usize;
                touch(&mut src_needed, src_disp, total)?;
                touch(&mut dst_needed, dst_disp, total)?;
            }
            _ => {}
        }
    }
    Some(Extents {
        src_needed,
        dst_needed,
        inst_count: insts.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::inst::abi;

    #[test]
    fn straight_line_program_analyzes() {
        let mut a = Assembler::new();
        a.ld(4, Reg(8), Space::Src, abi::SRC, 12);
        a.bswap(4, Reg(8));
        a.st(4, abi::DST, 20, Reg(8));
        a.memcpy_imm(abi::SRC, 0, abi::DST, 0, 8);
        a.memset_zero(abi::DST, 30, 2);
        let p = a.finish().unwrap();
        let e = analyze(&p).unwrap();
        assert_eq!(e.src_needed, 16); // 12 + 4
        assert_eq!(e.dst_needed, 32); // 30 + 2
        assert_eq!(e.inst_count, p.len());
    }

    #[test]
    fn branches_are_rejected() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.mov_imm(Reg(8), 1);
        a.bind(l);
        a.add_imm(Reg(8), Reg(8), -1);
        a.brnz(Reg(8), l);
        let p = a.finish().unwrap();
        assert_eq!(analyze(&p), None);
    }

    #[test]
    fn written_base_registers_are_rejected() {
        let mut a = Assembler::new();
        a.add_imm(abi::SRC, abi::SRC, 4); // cursor arithmetic
        a.ld(4, Reg(8), Space::Src, abi::SRC, 0);
        a.st(4, abi::DST, 0, Reg(8));
        let p = a.finish().unwrap();
        assert_eq!(analyze(&p), None);
    }

    #[test]
    fn negative_displacements_are_rejected() {
        let mut a = Assembler::new();
        a.memcpy_imm(abi::SRC, -4, abi::DST, 0, 4);
        let p = a.finish().unwrap();
        assert_eq!(analyze(&p), None);
    }

    #[test]
    fn memcpy_reg_is_rejected() {
        let mut a = Assembler::new();
        a.mov_imm(Reg(8), 4);
        a.memcpy_reg(abi::SRC, 0, abi::DST, 0, Reg(8));
        let p = a.finish().unwrap();
        assert_eq!(analyze(&p), None);
    }

    #[test]
    fn swap_run_extents() {
        let mut a = Assembler::new();
        a.swap_run(8, abi::SRC, 16, abi::DST, 8, 10);
        let p = a.finish().unwrap();
        let e = analyze(&p).unwrap();
        assert_eq!(e.src_needed, 96);
        assert_eq!(e.dst_needed, 88);
    }
}
